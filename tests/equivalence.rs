//! Cross-crate integration tests: every engine (ForkGraph and the three
//! baseline GPS reimplementations) must produce identical (or, for PPR,
//! ε-close) results on the same FPP batches.

use std::sync::Arc;

use forkgraph::baselines::fpp::{ExecutionScheme, FppDriver, QueryKind};
use forkgraph::baselines::{GeminiEngine, GraphItEngine, LigraEngine};
use forkgraph::prelude::*;
use forkgraph::seq::ppr::PprConfig;

fn weighted_social_graph() -> CsrGraph {
    forkgraph::graph::datasets::WK.scaled(0.15).with_random_weights(10, 3)
}

fn road_graph() -> CsrGraph {
    forkgraph::graph::datasets::CA.generate_weighted(0.05)
}

fn partitioned(graph: &CsrGraph, parts: usize) -> PartitionedGraph {
    PartitionedGraph::build(
        graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
    )
}

#[test]
fn sssp_results_agree_across_all_engines() {
    for graph in [weighted_social_graph(), road_graph()] {
        let shared = Arc::new(graph.clone());
        let sources: Vec<VertexId> =
            (0..6u32).map(|i| (i * 211) % graph.num_vertices() as u32).collect();
        let oracle: Vec<Vec<_>> = sources.iter().map(|&s| dijkstra(&graph, s).dist).collect();

        // ForkGraph.
        let pg = partitioned(&graph, 8);
        let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_sssp(&sources);
        assert_eq!(fork.per_query, oracle, "ForkGraph");

        // Baselines under inter-query parallelism.
        macro_rules! check_engine {
            ($engine:expr, $name:literal) => {
                let driver = FppDriver::new($engine, Arc::clone(&shared));
                let result = driver.run(&QueryKind::Sssp, &sources, ExecutionScheme::InterQuery);
                for (out, expected) in result.outputs.iter().zip(oracle.iter()) {
                    assert_eq!(out.as_sssp().unwrap(), expected.as_slice(), $name);
                }
            };
        }
        check_engine!(LigraEngine::new(), "Ligra");
        check_engine!(GeminiEngine::new(), "Gemini");
        check_engine!(GraphItEngine::new(), "GraphIt");
    }
}

#[test]
fn bfs_results_agree_across_all_engines() {
    let graph = forkgraph::graph::datasets::LJ.scaled(0.1);
    let shared = Arc::new(graph.clone());
    let sources: Vec<VertexId> = vec![0, 17, 99, 1234 % graph.num_vertices() as u32];
    let oracle: Vec<Vec<u32>> =
        sources.iter().map(|&s| forkgraph::seq::bfs::bfs(&graph, s).level).collect();

    let pg = partitioned(&graph, 6);
    let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_bfs(&sources);
    assert_eq!(fork.per_query, oracle);

    for scheme in [ExecutionScheme::InterQuery, ExecutionScheme::IntraQuery] {
        let driver = FppDriver::new(LigraEngine::new(), Arc::clone(&shared));
        let result = driver.run(&QueryKind::Bfs, &sources, scheme);
        for (out, expected) in result.outputs.iter().zip(oracle.iter()) {
            assert_eq!(out.as_bfs().unwrap(), expected.as_slice());
        }
    }
}

#[test]
fn ppr_results_are_epsilon_close_across_engines() {
    let graph = forkgraph::graph::datasets::OR.scaled(0.1);
    let shared = Arc::new(graph.clone());
    let seeds: Vec<VertexId> = vec![1, 64, 333 % graph.num_vertices() as u32];
    let config = PprConfig { epsilon: 1e-5, ..Default::default() };
    let reference: Vec<Vec<f64>> = seeds
        .iter()
        .map(|&s| forkgraph::seq::ppr::ppr_push(&graph, s, &config).dense(graph.num_vertices()))
        .collect();

    let check_close = |dense: &[f64], expected: &[f64], label: &str| {
        let l1: f64 = dense.iter().zip(expected.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.05, "{label}: l1 distance {l1}");
    };

    let pg = partitioned(&graph, 6);
    let fork = ForkGraphEngine::new(
        &pg,
        EngineConfig::default()
            .with_yield_policy(forkgraph::core::YieldPolicy::EdgeBudgetAuto { factor: 100.0 }),
    )
    .run_ppr(&seeds, &config);
    for (state, expected) in fork.per_query.iter().zip(reference.iter()) {
        check_close(&state.estimate, expected, "ForkGraph");
    }

    let driver = FppDriver::new(GraphItEngine::new(), Arc::clone(&shared));
    let result = driver.run(&QueryKind::Ppr(config), &seeds, ExecutionScheme::InterQuery);
    for (out, expected) in result.outputs.iter().zip(reference.iter()) {
        let mut dense = vec![0.0; graph.num_vertices()];
        for &(v, p) in out.as_ppr().unwrap() {
            dense[v as usize] = p;
        }
        check_close(&dense, expected, "GraphIt");
    }
}

#[test]
fn forkgraph_is_cache_efficient_compared_to_inter_query_baselines() {
    // The core claim (Finding 2 / Figure 10a): with the same simulated LLC,
    // ForkGraph's partition-at-a-time processing is more cache efficient than a
    // baseline running the batch with uncoordinated inter-query parallelism.
    // On this 2-core container only two baseline queries are in flight at a
    // time (the paper's machine keeps 10), so absolute miss counts are muted;
    // the reproducible quantity at this scale is the miss *ratio*: the
    // fraction of accesses that fall out of the shared LLC while traversing a
    // graph that does not fit it.
    let graph = forkgraph::graph::datasets::LJ.scaled(0.25);
    let llc = CacheConfig { capacity_bytes: 128 * 1024, line_bytes: 64, associativity: 16 };
    let sources: Vec<VertexId> =
        (0..24u32).map(|i| (i * 131) % graph.num_vertices() as u32).collect();

    let driver = FppDriver::new(LigraEngine::new(), Arc::new(graph.clone())).with_cache(llc);
    let baseline = driver.run(&QueryKind::Bfs, &sources, ExecutionScheme::InterQuery);
    let baseline_cache = baseline.measurement.cache.unwrap();

    let pg = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(llc.capacity_bytes));
    let fork = ForkGraphEngine::new(&pg, EngineConfig::default().with_cache(llc)).run_bfs(&sources);
    let fork_cache = fork.measurement.cache.unwrap();

    assert!(
        fork_cache.miss_ratio() < baseline_cache.miss_ratio() * 0.7,
        "ForkGraph should have a substantially lower LLC miss ratio: {:.3} vs {:.3}",
        fork_cache.miss_ratio(),
        baseline_cache.miss_ratio()
    );
    // And the results still agree.
    let oracle = forkgraph::seq::bfs::bfs(&graph, sources[0]).level;
    assert_eq!(fork.per_query[0], oracle);
    assert_eq!(baseline.outputs[0].as_bfs().unwrap(), oracle.as_slice());
}

#[test]
fn forkgraph_work_stays_within_constant_factor_of_sequential() {
    // Theorem A.3 / Finding 2: work within a (small) constant factor of the
    // fastest sequential algorithm; the paper measures 5.2-16.7x for BC/LL.
    let graph = road_graph();
    let pg = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(96 * 1024));
    let sources: Vec<VertexId> =
        (0..8u32).map(|i| (i * 401) % graph.num_vertices() as u32).collect();
    let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_sssp(&sources);
    let sequential: u64 = sources.iter().map(|&s| dijkstra(&graph, s).edges_processed).sum();
    let ratio = fork.work().edges_processed as f64 / sequential as f64;
    assert!(ratio < 30.0, "work ratio {ratio} exceeds the constant-factor bound");
}

#[test]
fn ablation_levels_preserve_correctness_and_reduce_work_cumulatively() {
    let graph = road_graph();
    let pg = partitioned(&graph, 8);
    let sources: Vec<VertexId> =
        (0..5u32).map(|i| (i * 643) % graph.num_vertices() as u32).collect();
    let oracle: Vec<Vec<_>> = sources.iter().map(|&s| dijkstra(&graph, s).dist).collect();
    let mut edges = Vec::new();
    for level in forkgraph::core::AblationLevel::all() {
        let result = ForkGraphEngine::new(&pg, forkgraph::core::EngineConfig::for_ablation(level))
            .run_sssp(&sources);
        assert_eq!(result.per_query, oracle, "{level:?}");
        edges.push(result.work().edges_processed);
    }
    // The fully optimised configuration must not do more work than the
    // buffer-only configuration.
    assert!(edges[3] <= edges[0], "full {} vs buffer-only {}", edges[3], edges[0]);
}

#[test]
fn applications_run_end_to_end_on_forkgraph() {
    use forkgraph::prelude::{BetweennessCentrality, LandmarkLabeling, NetworkCommunityProfile};
    let graph = forkgraph::graph::datasets::WK.scaled(0.1).with_random_weights(10, 9);
    let pg = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(128 * 1024));

    let bc = BetweennessCentrality::new(8, 1).run_forkgraph(&pg, EngineConfig::default());
    assert_eq!(bc.centrality.len(), graph.num_vertices());
    assert!(bc.centrality.iter().any(|&c| c > 0.0));

    let ll = LandmarkLabeling::new(8, 2).run_forkgraph(&pg, EngineConfig::default());
    assert_eq!(ll.index.distances.len(), 8);

    let ncp_app = NetworkCommunityProfile::new(0.002, 3);
    let ncp = ncp_app.run_forkgraph(&pg, ncp_app.engine_config());
    assert!(!ncp.profile.is_empty());
    assert!(ncp.best_conductance() <= 1.0);
}
