//! Property-based tests over randomly generated graphs and FPP batches.
//!
//! Hand-rolled randomized property harness: each property runs `CASES`
//! deterministic trials over seeded random inputs (the build environment has
//! no proptest, and the properties here don't need shrinking — failures print
//! the offending seed, which reproduces the trial exactly).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use forkgraph::prelude::*;
use forkgraph::seq::bellman_ford::bellman_ford;

const CASES: u64 = 24;

/// A random weighted graph over `2..60` vertices with up to 300 edges.
fn arb_graph(rng: &mut SmallRng) -> CsrGraph {
    let n = rng.gen_range(2usize..60);
    let num_edges = rng.gen_range(1usize..300);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        let w = rng.gen_range(1u32..10);
        b.add_edge(u, v, w);
    }
    b.build()
}

#[test]
fn csr_round_trips_through_edge_list_io() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA11CE + case);
        let graph = arb_graph(&mut rng);
        let mut bytes = Vec::new();
        forkgraph::graph::io::write_edge_list(&graph, &mut bytes).unwrap();
        let back = forkgraph::graph::io::read_edge_list(bytes.as_slice()).unwrap();
        // Vertex count may shrink if trailing vertices are isolated; edges must match.
        let a: Vec<_> = graph.edges().collect();
        let b: Vec<_> = back.edges().collect();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn partition_plans_cover_every_vertex_exactly_once() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB0B + case);
        let graph = arb_graph(&mut rng);
        let k = rng.gen_range(1usize..9);
        let method = PartitionMethod::all()[rng.gen_range(0usize..5)];
        let plan = forkgraph::graph::partition::PartitionPlan::compute(
            &graph,
            &PartitionConfig::with_partitions(method, k),
        );
        assert!(plan.validate(&graph), "case {case} method {method:?}");
        assert_eq!(
            plan.partition_sizes().iter().sum::<usize>(),
            graph.num_vertices(),
            "case {case} method {method:?}"
        );
    }
}

#[test]
fn forkgraph_sssp_equals_dijkstra_and_bellman_ford() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE + case);
        let graph = arb_graph(&mut rng);
        let k = rng.gen_range(1usize..6);
        let source = rng.gen_range(0u32..graph.num_vertices() as u32);
        let pg = PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, k),
        );
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let fork = engine.run_sssp(&[source]);
        let oracle = dijkstra(&graph, source).dist;
        let (bf, _) = bellman_ford(&graph, source);
        assert_eq!(&fork.per_query[0], &oracle, "case {case}");
        assert_eq!(&oracle, &bf, "case {case}");
    }
}

#[test]
fn forkgraph_bfs_levels_match_sequential_bfs() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD00D + case);
        let graph = arb_graph(&mut rng);
        let k = rng.gen_range(1usize..6);
        let source = rng.gen_range(0u32..graph.num_vertices() as u32);
        let pg = PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::BfsGrow, k),
        );
        let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_bfs(&[source]);
        assert_eq!(
            &fork.per_query[0],
            &forkgraph::seq::bfs::bfs(&graph, source).level,
            "case {case}"
        );
    }
}

#[test]
fn ppr_mass_is_conserved_under_partitioned_execution() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE44 + case);
        let graph = arb_graph(&mut rng);
        let k = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u32..graph.num_vertices() as u32);
        let pg = PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, k),
        );
        let config = forkgraph::seq::ppr::PprConfig { epsilon: 1e-4, ..Default::default() };
        let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_ppr(&[seed], &config);
        let mass = fork.per_query[0].total_mass();
        assert!((mass - 1.0).abs() < 1e-6, "case {case}: mass {mass}");
    }
}

#[test]
fn cache_simulator_misses_never_exceed_accesses() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF00 + case);
        let len = rng.gen_range(1usize..500);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..100_000)).collect();
        let mut sim = forkgraph::cachesim::CacheSim::new(CacheConfig::tiny(16 * 1024));
        for a in &addrs {
            sim.access(*a, forkgraph::cachesim::AccessKind::Read);
        }
        let stats = sim.stats();
        assert_eq!(stats.accesses, addrs.len() as u64, "case {case}");
        assert!(stats.misses <= stats.accesses, "case {case}");
        assert_eq!(stats.hits + stats.misses, stats.accesses, "case {case}");
        // Distinct lines touched lower-bounds the misses.
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(stats.misses >= lines.len() as u64, "case {case}");
    }
}

#[test]
fn consolidation_preserves_the_operation_multiset() {
    use forkgraph::core::buffer::ConsolidationMethod;
    use forkgraph::core::{Operation, PartitionBuffer};
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xAB5 + case);
        let len = rng.gen_range(0usize..300);
        let ops: Vec<(u32, u32, u64)> = (0..len)
            .map(|_| (rng.gen_range(0u32..16), rng.gen_range(0u32..100), rng.gen_range(0u64..1000)))
            .collect();
        let buckets = rng.gen_range(1usize..16);
        let mut buffer = PartitionBuffer::new(buckets);
        for &(q, v, p) in &ops {
            buffer.push(Operation::new(q, v, p, p));
        }
        assert_eq!(buffer.len(), ops.len(), "case {case}");
        let groups = buffer.drain_consolidated(ConsolidationMethod::Sort);
        let mut drained: Vec<(u32, u32, u64)> = groups
            .iter()
            .flat_map(|(q, list)| list.iter().map(move |op| (*q, op.vertex, op.priority)))
            .collect();
        let mut expected = ops.clone();
        drained.sort_unstable();
        expected.sort_unstable();
        assert_eq!(drained, expected, "case {case}");
    }
}
