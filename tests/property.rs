//! Property-based tests over randomly generated graphs and FPP batches.

use proptest::prelude::*;

use forkgraph::prelude::*;
use forkgraph::seq::bellman_ford::bellman_ford;

/// Strategy: a random weighted edge list over `n <= 60` vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60, proptest::collection::vec((0u32..60, 0u32..60, 1u32..10), 1..300)).prop_map(
        |(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_round_trips_through_edge_list_io(graph in arb_graph()) {
        let mut bytes = Vec::new();
        forkgraph::graph::io::write_edge_list(&graph, &mut bytes).unwrap();
        let back = forkgraph::graph::io::read_edge_list(bytes.as_slice()).unwrap();
        // Vertex count may shrink if trailing vertices are isolated; edges must match.
        let a: Vec<_> = graph.edges().collect();
        let b: Vec<_> = back.edges().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partition_plans_cover_every_vertex_exactly_once(
        graph in arb_graph(),
        k in 1usize..9,
        method_idx in 0usize..5,
    ) {
        let method = PartitionMethod::all()[method_idx];
        let plan = forkgraph::graph::partition::PartitionPlan::compute(
            &graph,
            &PartitionConfig::with_partitions(method, k),
        );
        prop_assert!(plan.validate(&graph));
        prop_assert_eq!(plan.partition_sizes().iter().sum::<usize>(), graph.num_vertices());
    }

    #[test]
    fn forkgraph_sssp_equals_dijkstra_and_bellman_ford(
        graph in arb_graph(),
        k in 1usize..6,
        source in 0u32..60,
    ) {
        let source = source % graph.num_vertices() as u32;
        let pg = PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, k),
        );
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let fork = engine.run_sssp(&[source]);
        let oracle = dijkstra(&graph, source).dist;
        let (bf, _) = bellman_ford(&graph, source);
        prop_assert_eq!(&fork.per_query[0], &oracle);
        prop_assert_eq!(&oracle, &bf);
    }

    #[test]
    fn forkgraph_bfs_levels_match_sequential_bfs(
        graph in arb_graph(),
        k in 1usize..6,
        source in 0u32..60,
    ) {
        let source = source % graph.num_vertices() as u32;
        let pg = PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::BfsGrow, k),
        );
        let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_bfs(&[source]);
        prop_assert_eq!(&fork.per_query[0], &forkgraph::seq::bfs::bfs(&graph, source).level);
    }

    #[test]
    fn ppr_mass_is_conserved_under_partitioned_execution(
        graph in arb_graph(),
        k in 1usize..5,
        seed in 0u32..60,
    ) {
        let seed = seed % graph.num_vertices() as u32;
        let pg = PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, k),
        );
        let config = forkgraph::seq::ppr::PprConfig { epsilon: 1e-4, ..Default::default() };
        let fork = ForkGraphEngine::new(&pg, EngineConfig::default()).run_ppr(&[seed], &config);
        let mass = fork.per_query[0].total_mass();
        prop_assert!((mass - 1.0).abs() < 1e-6, "mass {}", mass);
    }

    #[test]
    fn cache_simulator_misses_never_exceed_accesses(
        addrs in proptest::collection::vec(0u64..100_000, 1..500),
    ) {
        let mut sim = forkgraph::cachesim::CacheSim::new(CacheConfig::tiny(16 * 1024));
        for a in &addrs {
            sim.access(*a, forkgraph::cachesim::AccessKind::Read);
        }
        let stats = sim.stats();
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert!(stats.misses <= stats.accesses);
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        // Distinct lines touched lower-bounds the misses.
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(stats.misses >= lines.len() as u64);
    }

    #[test]
    fn consolidation_preserves_the_operation_multiset(
        ops in proptest::collection::vec((0u32..16, 0u32..100, 0u64..1000), 0..300),
        buckets in 1usize..16,
    ) {
        use forkgraph::core::buffer::ConsolidationMethod;
        use forkgraph::core::{Operation, PartitionBuffer};
        let mut buffer = PartitionBuffer::new(buckets);
        for &(q, v, p) in &ops {
            buffer.push(Operation::new(q, v, p, p));
        }
        prop_assert_eq!(buffer.len(), ops.len());
        let groups = buffer.drain_consolidated(ConsolidationMethod::Sort);
        let mut drained: Vec<(u32, u32, u64)> = groups
            .iter()
            .flat_map(|(q, list)| list.iter().map(move |op| (*q, op.vertex, op.priority)))
            .collect();
        let mut expected = ops.clone();
        drained.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }
}
