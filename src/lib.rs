//! # forkgraph
//!
//! Facade crate for the ForkGraph-rs workspace: a Rust reproduction of
//! *"Cache-Efficient Fork-Processing Patterns on Large Graphs"* (SIGMOD 2021).
//!
//! A **fork-processing pattern** (FPP) launches many independent, homogeneous
//! graph queries (PPR, SSSP, BFS, …) from different source vertices on the same
//! in-memory graph. ForkGraph processes such batches cache-efficiently by
//! partitioning the graph into LLC-sized partitions, buffering each query's
//! operations per partition, and draining the buffers partition-at-a-time with
//! work-efficient sequential kernels.
//!
//! ## Quick start
//!
//! ```
//! use forkgraph::prelude::*;
//!
//! // Build a small synthetic social-network-like graph.
//! let graph = fg_graph::gen::rmat(10, 8, 42).into_weighted(7);
//! // Partition it into (simulated) LLC-sized partitions.
//! let partitioned = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(64 * 1024));
//! // Run a batch of SSSP queries with the ForkGraph engine.
//! let sources: Vec<u32> = (0..8).collect();
//! let engine = ForkGraphEngine::new(&partitioned, EngineConfig::default());
//! let result = engine.run_sssp(&sources);
//! assert_eq!(result.per_query.len(), sources.len());
//! ```
//!
//! See the `examples/` directory for larger end-to-end applications
//! (betweenness centrality, network community profiles, landmark labeling).

pub use fg_apps as apps;
pub use fg_baselines as baselines;
pub use fg_cachesim as cachesim;
pub use fg_graph as graph;
pub use fg_metrics as metrics;
pub use fg_seq as seq;
pub use fg_server as server;
pub use fg_service as service;
pub use fg_trace as trace;
pub use forkgraph_core as core;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use fg_apps::{
        bc::BetweennessCentrality, ll::LandmarkLabeling, ncp::NetworkCommunityProfile,
    };
    pub use fg_baselines::fpp::{ExecutionScheme, FppDriver};
    pub use fg_cachesim::{CacheConfig, CacheSim};
    pub use fg_graph::partition::{PartitionConfig, PartitionMethod};
    pub use fg_graph::partitioned::PartitionedGraph;
    pub use fg_graph::{CsrGraph, GraphBuilder, VertexId, Weight};
    pub use fg_metrics::WorkCounters;
    pub use fg_seq::dijkstra::dijkstra;
    pub use fg_server::{
        ForkGraphServer, Request, Response, ServerConfig, WireClient, WirePayload,
    };
    pub use fg_service::{
        ForkGraphService, InstantiatedKernel, KernelRegistry, Query, QueryParams, QueryResult,
        QuerySpec, ServiceConfig, ServiceError, Ticket,
    };
    pub use fg_trace::{EventKind, RunProfile, TraceSink};
    pub use forkgraph_core::dynkernel::{erase, DynKernel};
    pub use forkgraph_core::engine::{EngineConfig, ExecutorMode, ForkGraphEngine};
    pub use forkgraph_core::pool::WorkerPool;
    pub use forkgraph_core::sched::SchedulingPolicy;
    pub use forkgraph_core::yield_policy::YieldPolicy;
}
