//! Fork-processing-pattern driver for the baseline engines.
//!
//! Runs a batch of homogeneous queries (Algorithm 1 of the paper) under the
//! threading schemes compared in Table 1 / Figure 1:
//!
//! * [`ExecutionScheme::SingleThreaded`] — one query at a time, one thread,
//! * [`ExecutionScheme::InterQuery`] — `t = 1`: every query on its own thread,
//!   all queries concurrently (best-performing but cache-thrashing scheme),
//! * [`ExecutionScheme::IntraQuery`] — `t = #cores`: queries one at a time,
//!   each parallelised internally,
//! * [`ExecutionScheme::Hybrid`] — `t` threads per query, `#cores / t` queries
//!   in flight.

use std::sync::Arc;
use std::time::Duration;

use rayon::prelude::*;

use fg_cachesim::{CacheConfig, GraphAccessTracer};
use fg_graph::{CsrGraph, Dist, VertexId};
use fg_metrics::{CacheNumbers, Measurement, MemoryEstimate, Stopwatch, WorkCounters};
use fg_seq::ppr::PprConfig;

use crate::engine::{GpsEngine, QueryContext};

/// Threading scheme for a batch of FPP queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionScheme {
    /// One query at a time on a single thread (the profiling baseline of
    /// Table 1).
    SingleThreaded,
    /// `t = 1`: one thread per query, all queries in flight simultaneously.
    InterQuery,
    /// `t = #cores`: one query at a time, parallelised internally.
    IntraQuery,
    /// `t = threads_per_query`: `#cores / t` queries in flight, each using
    /// intra-query parallelism.
    Hybrid {
        /// Number of threads dedicated to each query.
        threads_per_query: usize,
    },
}

impl ExecutionScheme {
    /// Short label used in measurement names, matching the paper's notation.
    pub fn label(&self) -> String {
        match self {
            ExecutionScheme::SingleThreaded => "single-threaded".to_string(),
            ExecutionScheme::InterQuery => "t=1".to_string(),
            ExecutionScheme::IntraQuery => format!("t={}", rayon::current_num_threads()),
            ExecutionScheme::Hybrid { threads_per_query } => format!("t={threads_per_query}"),
        }
    }
}

/// The kind of query launched from every source vertex.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind {
    /// Single-source shortest paths (weighted).
    Sssp,
    /// Breadth-first search (unweighted).
    Bfs,
    /// Personalized PageRank with the given configuration.
    Ppr(PprConfig),
}

/// Output of one query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Distances per vertex.
    Sssp(Vec<Dist>),
    /// BFS levels per vertex.
    Bfs(Vec<u32>),
    /// Sparse PPR estimates.
    Ppr(Vec<(VertexId, f64)>),
}

impl QueryOutput {
    /// Distances, if this is an SSSP output.
    pub fn as_sssp(&self) -> Option<&[Dist]> {
        match self {
            QueryOutput::Sssp(d) => Some(d),
            _ => None,
        }
    }

    /// Levels, if this is a BFS output.
    pub fn as_bfs(&self) -> Option<&[u32]> {
        match self {
            QueryOutput::Bfs(l) => Some(l),
            _ => None,
        }
    }

    /// PPR estimates, if this is a PPR output.
    pub fn as_ppr(&self) -> Option<&[(VertexId, f64)]> {
        match self {
            QueryOutput::Ppr(p) => Some(p),
            _ => None,
        }
    }

    /// Approximate heap size of this output in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            QueryOutput::Sssp(d) => d.len() * 8,
            QueryOutput::Bfs(l) => l.len() * 4,
            QueryOutput::Ppr(p) => p.len() * 16,
        }
    }
}

/// Result of running an FPP batch.
#[derive(Clone, Debug)]
pub struct FppResult {
    /// Per-query outputs, in source order.
    pub outputs: Vec<QueryOutput>,
    /// Timing, work, cache, and memory measurement of the whole batch.
    pub measurement: Measurement,
}

/// Drives a batch of FPP queries through a baseline engine.
pub struct FppDriver<E: GpsEngine> {
    engine: E,
    graph: Arc<CsrGraph>,
    cache_config: Option<CacheConfig>,
}

impl<E: GpsEngine> FppDriver<E> {
    /// Create a driver for `engine` on `graph`.
    pub fn new(engine: E, graph: Arc<CsrGraph>) -> Self {
        FppDriver { engine, graph, cache_config: None }
    }

    /// Enable LLC simulation with the given cache geometry.
    pub fn with_cache(mut self, config: CacheConfig) -> Self {
        self.cache_config = Some(config);
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Run `sources.len()` queries of the given kind under `scheme`.
    pub fn run(
        &self,
        kind: &QueryKind,
        sources: &[VertexId],
        scheme: ExecutionScheme,
    ) -> FppResult {
        let tracer = match self.cache_config {
            Some(config) => GraphAccessTracer::new(config),
            None => GraphAccessTracer::disabled(),
        };
        let counters = WorkCounters::new();
        let watch = Stopwatch::start();

        let run_one = |(query_id, &source): (usize, &VertexId), parallel: bool| -> QueryOutput {
            let ctx = QueryContext { query_id, parallel, tracer: &tracer, counters: &counters };
            let out = match kind {
                QueryKind::Sssp => QueryOutput::Sssp(self.engine.sssp(&self.graph, source, &ctx)),
                QueryKind::Bfs => QueryOutput::Bfs(self.engine.bfs(&self.graph, source, &ctx)),
                QueryKind::Ppr(config) => {
                    QueryOutput::Ppr(self.engine.ppr(&self.graph, source, config, &ctx))
                }
            };
            counters.add_queries_completed(1);
            out
        };

        let outputs: Vec<QueryOutput> = match scheme {
            ExecutionScheme::SingleThreaded => {
                sources.iter().enumerate().map(|item| run_one(item, false)).collect()
            }
            ExecutionScheme::InterQuery => {
                sources.par_iter().enumerate().map(|item| run_one(item, false)).collect()
            }
            ExecutionScheme::IntraQuery => {
                sources.iter().enumerate().map(|item| run_one(item, true)).collect()
            }
            ExecutionScheme::Hybrid { threads_per_query } => {
                let t = threads_per_query.max(1);
                let concurrent = (rayon::current_num_threads() / t).max(1);
                let mut outputs: Vec<Option<QueryOutput>> = vec![None; sources.len()];
                let indexed: Vec<(usize, &VertexId)> = sources.iter().enumerate().collect();
                for wave in indexed.chunks(concurrent) {
                    let wave_outputs: Vec<(usize, QueryOutput)> =
                        wave.par_iter().map(|&(i, s)| (i, run_one((i, s), t > 1))).collect();
                    for (i, o) in wave_outputs {
                        outputs[i] = Some(o);
                    }
                }
                outputs.into_iter().map(|o| o.expect("every query produced an output")).collect()
            }
        };

        let wall_time: Duration = watch.elapsed();
        let cache_stats = tracer.stats();
        let output_bytes: usize = outputs.iter().map(|o| o.size_bytes()).sum();
        let measurement = Measurement {
            label: format!("{} ({})", self.engine.name(), scheme.label()),
            wall_time,
            work: counters.snapshot(),
            cache: self.cache_config.map(|_| CacheNumbers {
                accesses: cache_stats.accesses,
                loads: cache_stats.loads,
                misses: cache_stats.misses,
            }),
            memory: Some(MemoryEstimate {
                graph_bytes: self.graph.total_size_bytes() as u64,
                query_state_bytes: output_bytes as u64,
                auxiliary_bytes: (self.graph.num_vertices() * 8) as u64,
            }),
            storage: None,
        };
        FppResult { outputs, measurement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ligra::LigraEngine;
    use fg_graph::gen;

    fn graph() -> Arc<CsrGraph> {
        Arc::new(gen::rmat(8, 6, 1).with_random_weights(6, 1))
    }

    #[test]
    fn all_schemes_produce_identical_sssp_results() {
        let g = graph();
        let sources: Vec<VertexId> = vec![0, 3, 9, 17];
        let driver = FppDriver::new(LigraEngine::new(), Arc::clone(&g));
        let reference: Vec<Vec<Dist>> =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).dist).collect();
        for scheme in [
            ExecutionScheme::SingleThreaded,
            ExecutionScheme::InterQuery,
            ExecutionScheme::IntraQuery,
            ExecutionScheme::Hybrid { threads_per_query: 2 },
        ] {
            let result = driver.run(&QueryKind::Sssp, &sources, scheme);
            assert_eq!(result.outputs.len(), sources.len());
            for (out, expected) in result.outputs.iter().zip(reference.iter()) {
                assert_eq!(out.as_sssp().unwrap(), expected.as_slice(), "{scheme:?}");
            }
            assert_eq!(result.measurement.work.queries_completed, sources.len() as u64);
        }
    }

    #[test]
    fn bfs_and_ppr_kinds_dispatch_correctly() {
        let g = graph();
        let driver = FppDriver::new(LigraEngine::new(), Arc::clone(&g));
        let bfs = driver.run(&QueryKind::Bfs, &[0, 1], ExecutionScheme::InterQuery);
        assert!(bfs.outputs[0].as_bfs().is_some());
        assert!(bfs.outputs[0].as_sssp().is_none());
        let ppr = driver.run(
            &QueryKind::Ppr(PprConfig { epsilon: 1e-4, ..Default::default() }),
            &[0, 1],
            ExecutionScheme::InterQuery,
        );
        assert!(ppr.outputs[1].as_ppr().is_some());
        assert!(ppr.outputs[1].size_bytes() > 0);
    }

    #[test]
    fn cache_instrumentation_reports_misses() {
        let g = graph();
        let driver = FppDriver::new(LigraEngine::new(), Arc::clone(&g))
            .with_cache(CacheConfig::tiny(32 * 1024));
        let result = driver.run(&QueryKind::Bfs, &[0, 5, 9], ExecutionScheme::InterQuery);
        let cache = result.measurement.cache.unwrap();
        assert!(cache.accesses > 0);
        assert!(cache.misses > 0);
        assert!(cache.miss_ratio() > 0.0);
        assert!(result.measurement.memory.unwrap().total_bytes() > 0);
    }

    #[test]
    fn inter_query_misses_at_least_as_many_as_single_query_working_set() {
        // With a small shared cache, running many queries concurrently must not
        // produce fewer misses than a single query.
        let g = graph();
        let cache = CacheConfig::tiny(64 * 1024);
        let driver = FppDriver::new(LigraEngine::new(), Arc::clone(&g)).with_cache(cache);
        let one = driver.run(&QueryKind::Bfs, &[0], ExecutionScheme::InterQuery);
        let many =
            driver.run(&QueryKind::Bfs, &(0..8).collect::<Vec<_>>(), ExecutionScheme::InterQuery);
        assert!(
            many.measurement.cache.unwrap().misses > one.measurement.cache.unwrap().misses,
            "more concurrent queries should touch more lines"
        );
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(ExecutionScheme::SingleThreaded.label(), "single-threaded");
        assert_eq!(ExecutionScheme::InterQuery.label(), "t=1");
        assert_eq!(ExecutionScheme::Hybrid { threads_per_query: 4 }.label(), "t=4");
    }
}
