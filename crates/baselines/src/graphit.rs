//! GraphIt-like engine: Ligra-style direction-optimising processing whose dense
//! (pull) phases are blocked into LLC-sized destination segments (Zhang et al.,
//! OOPSLA 2018; "making caches work for graph analytics").
//!
//! The segmentation limits the random accesses of a dense round to a
//! cache-resident slice of the vertex state, which is why GraphIt is the
//! strongest baseline under intra-query parallelism in the paper — and also why
//! it degrades the most under uncoordinated inter-query parallelism (Table 1).

use fg_graph::{CsrGraph, Dist, VertexId};
use fg_seq::ppr::PprConfig;

use crate::engine::{GpsEngine, QueryContext};
use crate::kernels::{frontier_bfs, frontier_ppr, frontier_sssp, IterationStrategy};

/// The GraphIt execution model.
#[derive(Clone, Copy, Debug)]
pub struct GraphItEngine {
    /// Direction-switch threshold (as in Ligra).
    pub direction_divisor: usize,
    /// Number of destination vertices per cache segment in dense rounds.
    pub segment_vertices: usize,
}

impl Default for GraphItEngine {
    fn default() -> Self {
        // 64-byte lines / 8-byte state → 8 vertices per line; a 2 MiB segment
        // of vertex state covers 256 Ki vertices. Scaled down with the scaled
        // LLC used across the workspace.
        GraphItEngine { direction_divisor: 20, segment_vertices: 32 * 1024 }
    }
}

impl GraphItEngine {
    /// Create the engine with default segmentation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the engine with a segment sized for `llc_bytes` of vertex state.
    pub fn with_llc_bytes(llc_bytes: usize) -> Self {
        GraphItEngine { direction_divisor: 20, segment_vertices: (llc_bytes / 8).max(1024) }
    }

    fn strategy(&self) -> IterationStrategy {
        IterationStrategy::DirectionOptimizing {
            divisor: self.direction_divisor,
            pull_segment: Some(self.segment_vertices),
        }
    }
}

impl GpsEngine for GraphItEngine {
    fn name(&self) -> &'static str {
        "GraphIt"
    }

    fn sssp(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<Dist> {
        frontier_sssp(graph, source, ctx, self.strategy())
    }

    fn bfs(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<u32> {
        frontier_bfs(graph, source, ctx, self.strategy())
    }

    fn ppr(
        &self,
        graph: &CsrGraph,
        seed: VertexId,
        config: &PprConfig,
        ctx: &QueryContext<'_>,
    ) -> Vec<(VertexId, f64)> {
        frontier_ppr(graph, seed, config, ctx, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cachesim::GraphAccessTracer;
    use fg_graph::gen;
    use fg_metrics::WorkCounters;

    #[test]
    fn graphit_results_match_sequential_oracles() {
        let g = gen::rmat(9, 8, 6).with_random_weights(6, 6);
        let engine = GraphItEngine::new();
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let ctx =
            QueryContext { query_id: 0, parallel: true, tracer: &tracer, counters: &counters };
        assert_eq!(engine.sssp(&g, 9, &ctx), fg_seq::dijkstra::dijkstra(&g, 9).dist);
        assert_eq!(engine.bfs(&g, 9, &ctx), fg_seq::bfs::bfs(&g, 9).level);
        assert_eq!(engine.name(), "GraphIt");
    }

    #[test]
    fn tiny_segments_still_produce_correct_results() {
        let g = gen::grid2d(12, 12, 0.1, 3).with_random_weights(5, 3);
        let engine = GraphItEngine { direction_divisor: 2, segment_vertices: 16 };
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let ctx =
            QueryContext { query_id: 0, parallel: false, tracer: &tracer, counters: &counters };
        assert_eq!(engine.sssp(&g, 0, &ctx), fg_seq::dijkstra::dijkstra(&g, 0).dist);
    }

    #[test]
    fn llc_sizing_helper() {
        let e = GraphItEngine::with_llc_bytes(1 << 20);
        assert_eq!(e.segment_vertices, (1 << 20) / 8);
    }
}
