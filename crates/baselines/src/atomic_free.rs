//! Atomic-free, topology-driven SSSP (Appendix E sanity check).
//!
//! Multiple threads update distances without synchronisation; lost updates are
//! recovered in later rounds thanks to the monotonicity of shortest-path
//! relaxation (Nasre et al., "Atomic-free irregular computations on GPUs").
//! The paper implements this on top of Ligra's Bellman–Ford as a sanity check
//! and finds it a few times *slower* than the atomic-based version on
//! multi-cores because of redundant updates; this module reproduces that
//! comparison.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};
use fg_metrics::WorkCounters;

/// Topology-driven, atomic-free Bellman–Ford.
///
/// Every round scans *all* vertices and relaxes their out-edges using plain
/// (racy but monotone) writes through a relaxed-ordering view of the distance
/// array; the algorithm iterates until a round changes nothing. Returns the
/// distance vector.
pub fn atomic_free_sssp(
    graph: &CsrGraph,
    source: VertexId,
    parallel: bool,
    counters: &WorkCounters,
) -> Vec<Dist> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // The distances are stored in atomics but accessed with plain
    // load/store (no compare-and-swap, no fetch_min): concurrent writers may
    // overwrite each other, which is exactly the lost-update behaviour the
    // topology-driven algorithm tolerates.
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF_DIST)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);

    loop {
        counters.add_iteration();
        let relax_vertex = |u: VertexId| -> bool {
            let du = dist[u as usize].load(Ordering::Relaxed);
            if du == INF_DIST {
                return false;
            }
            let mut changed = false;
            counters.add_edges(graph.out_degree(u) as u64);
            for (v, w) in graph.out_edges(u) {
                let nd = du + w as Dist;
                if nd < dist[v as usize].load(Ordering::Relaxed) {
                    // Plain store: may lose races, fixed in a later round.
                    dist[v as usize].store(nd, Ordering::Relaxed);
                    changed = true;
                }
            }
            changed
        };
        let changed = if parallel {
            (0..n as VertexId).into_par_iter().map(relax_vertex).reduce(|| false, |a, b| a | b)
        } else {
            (0..n as VertexId).map(relax_vertex).fold(false, |a, b| a | b)
        };
        if !changed {
            break;
        }
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;
    use fg_seq::dijkstra::dijkstra;

    #[test]
    fn atomic_free_matches_dijkstra_sequentially_and_in_parallel() {
        let g = gen::erdos_renyi(250, 2000, 9).with_random_weights(8, 9);
        let oracle = dijkstra(&g, 0).dist;
        for parallel in [false, true] {
            let counters = WorkCounters::new();
            let d = atomic_free_sssp(&g, 0, parallel, &counters);
            assert_eq!(d, oracle, "parallel={parallel}");
        }
    }

    #[test]
    fn atomic_free_processes_more_edges_than_dijkstra() {
        let g = gen::grid2d(22, 22, 0.0, 2).with_random_weights(6, 2);
        let counters = WorkCounters::new();
        let _ = atomic_free_sssp(&g, 0, false, &counters);
        let d = dijkstra(&g, 0);
        assert!(
            counters.snapshot().edges_processed > 2 * d.edges_processed,
            "atomic-free {} vs dijkstra {}",
            counters.snapshot().edges_processed,
            d.edges_processed
        );
    }

    #[test]
    fn unreachable_vertices_remain_infinite() {
        let mut b = fg_graph::GraphBuilder::new(6);
        b.add_edge(0, 1, 3);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let counters = WorkCounters::new();
        let d = atomic_free_sssp(&g, 0, true, &counters);
        assert_eq!(d[1], 3);
        assert_eq!(d[4], INF_DIST);
    }
}
