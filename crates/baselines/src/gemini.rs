//! Gemini-like engine: dense, bulk-synchronous rounds with a global barrier per
//! iteration (Zhu et al., OSDI 2016, evaluated in the paper with message
//! passing disabled).
//!
//! Gemini's shared-memory path materialises a dense round for every iteration,
//! which on high-diameter graphs (road networks) translates into `O(diameter)`
//! passes over the full edge set — the behaviour behind the paper's observation
//! that ForkGraph achieves three orders of magnitude speedups over Gemini on
//! road graphs.

use fg_graph::{CsrGraph, Dist, VertexId};
use fg_seq::ppr::PprConfig;

use crate::engine::{GpsEngine, QueryContext};
use crate::kernels::{frontier_bfs, frontier_ppr, frontier_sssp, IterationStrategy};

/// The Gemini execution model.
#[derive(Clone, Copy, Debug, Default)]
pub struct GeminiEngine;

impl GeminiEngine {
    /// Create the engine.
    pub fn new() -> Self {
        GeminiEngine
    }
}

impl GpsEngine for GeminiEngine {
    fn name(&self) -> &'static str {
        "Gemini"
    }

    fn sssp(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<Dist> {
        frontier_sssp(graph, source, ctx, IterationStrategy::DenseAlways)
    }

    fn bfs(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<u32> {
        frontier_bfs(graph, source, ctx, IterationStrategy::DenseAlways)
    }

    fn ppr(
        &self,
        graph: &CsrGraph,
        seed: VertexId,
        config: &PprConfig,
        ctx: &QueryContext<'_>,
    ) -> Vec<(VertexId, f64)> {
        frontier_ppr(graph, seed, config, ctx, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cachesim::GraphAccessTracer;
    use fg_graph::gen;
    use fg_metrics::WorkCounters;

    #[test]
    fn gemini_results_match_sequential_oracles() {
        let g = gen::erdos_renyi(200, 1500, 4).with_random_weights(6, 4);
        let engine = GeminiEngine::new();
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let ctx =
            QueryContext { query_id: 0, parallel: false, tracer: &tracer, counters: &counters };
        assert_eq!(engine.sssp(&g, 2, &ctx), fg_seq::dijkstra::dijkstra(&g, 2).dist);
        assert_eq!(engine.bfs(&g, 2, &ctx), fg_seq::bfs::bfs(&g, 2).level);
        assert_eq!(engine.name(), "Gemini");
    }

    #[test]
    fn gemini_does_more_work_than_ligra_on_road_graphs() {
        let g = gen::grid2d(20, 20, 0.0, 1).with_random_weights(5, 1);
        let tracer = GraphAccessTracer::disabled();
        let gem = WorkCounters::new();
        let lig = WorkCounters::new();
        let gem_ctx =
            QueryContext { query_id: 0, parallel: false, tracer: &tracer, counters: &gem };
        let lig_ctx =
            QueryContext { query_id: 0, parallel: false, tracer: &tracer, counters: &lig };
        GeminiEngine::new().sssp(&g, 0, &gem_ctx);
        crate::ligra::LigraEngine::new().sssp(&g, 0, &lig_ctx);
        assert!(gem.snapshot().edges_processed > lig.snapshot().edges_processed);
        assert!(gem.snapshot().iterations >= lig.snapshot().iterations);
    }
}
