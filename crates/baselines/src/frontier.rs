//! Vertex subsets (frontiers) in the style of Ligra.
//!
//! A frontier is either *sparse* (an explicit vertex list) or *dense* (a
//! boolean per vertex). Ligra's direction optimisation switches between push
//! (iterate the sparse frontier's out-edges) and pull (iterate all vertices'
//! in-edges) based on the frontier's total degree.

use fg_graph::{CsrGraph, VertexId};

/// A subset of the vertices, stored sparsely or densely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VertexSubset {
    /// Explicit vertex list (not necessarily sorted, no duplicates).
    Sparse(Vec<VertexId>),
    /// One flag per vertex.
    Dense(Vec<bool>),
}

impl VertexSubset {
    /// An empty sparse subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// A subset containing a single vertex.
    pub fn single(v: VertexId) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// Build from a vertex list (deduplicated).
    pub fn from_vertices(mut vs: Vec<VertexId>) -> Self {
        vs.sort_unstable();
        vs.dedup();
        VertexSubset::Sparse(vs)
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense(b) => b.iter().filter(|&&x| x).count(),
        }
    }

    /// True if no vertex is a member.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse(v) => v.is_empty(),
            VertexSubset::Dense(b) => !b.iter().any(|&x| x),
        }
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse(vs) => vs.contains(&v),
            VertexSubset::Dense(b) => b.get(v as usize).copied().unwrap_or(false),
        }
    }

    /// The member vertices as a vector (sorted for dense subsets).
    pub fn to_vec(&self) -> Vec<VertexId> {
        match self {
            VertexSubset::Sparse(v) => v.clone(),
            VertexSubset::Dense(b) => {
                b.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i as VertexId).collect()
            }
        }
    }

    /// Convert to dense representation for a graph of `n` vertices.
    pub fn to_dense(&self, n: usize) -> Vec<bool> {
        match self {
            VertexSubset::Sparse(vs) => {
                let mut b = vec![false; n];
                for &v in vs {
                    b[v as usize] = true;
                }
                b
            }
            VertexSubset::Dense(b) => {
                let mut b = b.clone();
                b.resize(n, false);
                b
            }
        }
    }

    /// Sum of out-degrees of the member vertices.
    pub fn total_out_degree(&self, graph: &CsrGraph) -> usize {
        self.to_vec().iter().map(|&v| graph.out_degree(v)).sum()
    }

    /// Ligra's direction heuristic: pull (dense, bottom-up) when the frontier
    /// plus its out-edges exceed `|E| / threshold_divisor`.
    pub fn should_pull(&self, graph: &CsrGraph, threshold_divisor: usize) -> bool {
        let work = self.len() + self.total_out_degree(graph);
        work > graph.num_edges() / threshold_divisor.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    #[test]
    fn construction_and_membership() {
        let s = VertexSubset::from_vertices(vec![3, 1, 3, 2]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(1));
        assert!(!s.contains(0));
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
        assert!(VertexSubset::empty().is_empty());
        assert_eq!(VertexSubset::single(7).to_vec(), vec![7]);
    }

    #[test]
    fn dense_round_trip() {
        let s = VertexSubset::from_vertices(vec![0, 4]);
        let d = VertexSubset::Dense(s.to_dense(6));
        assert_eq!(d.len(), 2);
        assert_eq!(d.to_vec(), vec![0, 4]);
        assert!(d.contains(4));
        assert!(!d.contains(5));
    }

    #[test]
    fn degree_sum_and_direction_heuristic() {
        let g = gen::complete(10); // every vertex has degree 9, |E| = 90
        let small = VertexSubset::single(0);
        assert_eq!(small.total_out_degree(&g), 9);
        assert!(!small.should_pull(&g, 5)); // 1 + 9 = 10 <= 90/5 = 18
        let large = VertexSubset::from_vertices((0..5).collect());
        assert!(large.should_pull(&g, 5)); // 5 + 45 = 50 > 18
    }

    #[test]
    fn empty_dense_subset() {
        let d = VertexSubset::Dense(vec![false; 8]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.to_vec().is_empty());
    }
}
