//! Ligra-like engine: frontier-based edgeMap/vertexMap processing with
//! push/pull direction switching (Shun & Blelloch, PPoPP 2013).

use fg_graph::{CsrGraph, Dist, VertexId};
use fg_seq::ppr::PprConfig;

use crate::engine::{GpsEngine, QueryContext};
use crate::kernels::{frontier_bfs, frontier_ppr, frontier_sssp, IterationStrategy};

/// The Ligra execution model.
#[derive(Clone, Copy, Debug)]
pub struct LigraEngine {
    /// Direction-switch threshold: pull when the frontier work exceeds
    /// `|E| / divisor`. Ligra's default is 20.
    pub direction_divisor: usize,
}

impl Default for LigraEngine {
    fn default() -> Self {
        LigraEngine { direction_divisor: 20 }
    }
}

impl LigraEngine {
    /// Create the engine with Ligra's default direction threshold.
    pub fn new() -> Self {
        Self::default()
    }

    fn strategy(&self) -> IterationStrategy {
        IterationStrategy::DirectionOptimizing {
            divisor: self.direction_divisor,
            pull_segment: None,
        }
    }
}

impl GpsEngine for LigraEngine {
    fn name(&self) -> &'static str {
        "Ligra"
    }

    fn sssp(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<Dist> {
        frontier_sssp(graph, source, ctx, self.strategy())
    }

    fn bfs(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<u32> {
        frontier_bfs(graph, source, ctx, self.strategy())
    }

    fn ppr(
        &self,
        graph: &CsrGraph,
        seed: VertexId,
        config: &PprConfig,
        ctx: &QueryContext<'_>,
    ) -> Vec<(VertexId, f64)> {
        frontier_ppr(graph, seed, config, ctx, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cachesim::GraphAccessTracer;
    use fg_graph::gen;
    use fg_metrics::WorkCounters;

    #[test]
    fn ligra_sssp_and_bfs_match_sequential_oracles() {
        let g = gen::rmat(9, 6, 1).with_random_weights(7, 1);
        let engine = LigraEngine::new();
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let ctx =
            QueryContext { query_id: 0, parallel: true, tracer: &tracer, counters: &counters };
        assert_eq!(engine.sssp(&g, 0, &ctx), fg_seq::dijkstra::dijkstra(&g, 0).dist);
        assert_eq!(engine.bfs(&g, 0, &ctx), fg_seq::bfs::bfs(&g, 0).level);
        assert_eq!(engine.name(), "Ligra");
    }

    #[test]
    fn direction_divisor_affects_iteration_strategy_not_results() {
        let g = gen::grid2d(15, 15, 0.05, 2).with_random_weights(5, 2);
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let ctx =
            QueryContext { query_id: 0, parallel: false, tracer: &tracer, counters: &counters };
        let push_heavy = LigraEngine { direction_divisor: 1_000_000 }.sssp(&g, 0, &ctx);
        let pull_heavy = LigraEngine { direction_divisor: 1 }.sssp(&g, 0, &ctx);
        assert_eq!(push_heavy, pull_heavy);
    }
}
