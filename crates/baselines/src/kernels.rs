//! Shared frontier kernels parameterised by each baseline system's execution
//! strategy.
//!
//! The three baseline engines differ in *how* they drive an iteration — Ligra
//! switches between sparse push and dense pull, Gemini always runs dense
//! bulk-synchronous rounds, GraphIt additionally blocks the dense phase into
//! cache-sized destination segments — but the per-edge relaxation logic is the
//! same. Keeping the kernels here keeps the engines honest: they genuinely
//! share the relaxation code and only differ in their scheduling strategy,
//! which is what the paper's comparison is about.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use rayon::prelude::*;

use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};
use fg_seq::ppr::PprConfig;

use crate::engine::QueryContext;

/// How an engine drives frontier iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IterationStrategy {
    /// Ligra/GraphIt: sparse push until the frontier grows past
    /// `|E| / divisor`, then dense pull. `pull_segment` optionally blocks the
    /// dense phase into destination segments of that many vertices (GraphIt's
    /// cache optimisation).
    DirectionOptimizing { divisor: usize, pull_segment: Option<usize> },
    /// Gemini: every iteration is a dense bulk-synchronous round.
    DenseAlways,
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

/// Frontier-based (Bellman-Ford style) SSSP used by all three baseline
/// engines. Parallel iterations use atomic `fetch_min` relaxations, exactly the
/// "parallel algorithms perform more work than their sequential counterparts"
/// behaviour the paper contrasts with ForkGraph's sequential kernels.
pub fn frontier_sssp(
    graph: &CsrGraph,
    source: VertexId,
    ctx: &QueryContext<'_>,
    strategy: IterationStrategy,
) -> Vec<Dist> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF_DIST)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier: Vec<VertexId> = vec![source];

    while !frontier.is_empty() {
        ctx.counters.add_iteration();
        let dense = match strategy {
            IterationStrategy::DenseAlways => true,
            IterationStrategy::DirectionOptimizing { divisor, .. } => {
                let work: usize =
                    frontier.len() + frontier.iter().map(|&v| graph.out_degree(v)).sum::<usize>();
                work > graph.num_edges() / divisor.max(1)
            }
        };
        frontier = if dense {
            let segment = match strategy {
                IterationStrategy::DirectionOptimizing { pull_segment, .. } => pull_segment,
                IterationStrategy::DenseAlways => None,
            };
            dense_sssp_round(graph, &dist, &frontier, ctx, segment)
        } else {
            push_sssp_round(graph, &dist, &frontier, ctx)
        };
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

fn push_sssp_round(
    graph: &CsrGraph,
    dist: &[AtomicU64],
    frontier: &[VertexId],
    ctx: &QueryContext<'_>,
) -> Vec<VertexId> {
    let in_next: Vec<AtomicBool> =
        (0..graph.num_vertices()).map(|_| AtomicBool::new(false)).collect();
    let relax = |u: VertexId| -> Vec<VertexId> {
        let mut discovered = Vec::new();
        let du = dist[u as usize].load(Ordering::Relaxed);
        if du == INF_DIST {
            return discovered;
        }
        ctx.record_scan(graph, u);
        ctx.record_state_touch(u, graph.out_neighbors(u));
        for (v, w) in graph.out_edges(u) {
            let nd = du + w as Dist;
            let prev = dist[v as usize].fetch_min(nd, Ordering::Relaxed);
            if nd < prev && !in_next[v as usize].swap(true, Ordering::Relaxed) {
                discovered.push(v);
            }
        }
        discovered
    };
    if ctx.parallel {
        frontier.par_iter().map(|&u| relax(u)).reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
    } else {
        let mut next = Vec::new();
        for &u in frontier {
            next.append(&mut relax(u));
        }
        next
    }
}

fn dense_sssp_round(
    graph: &CsrGraph,
    dist: &[AtomicU64],
    frontier: &[VertexId],
    ctx: &QueryContext<'_>,
    segment: Option<usize>,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut in_frontier = vec![false; n];
    for &v in frontier {
        in_frontier[v as usize] = true;
    }
    let pull = |v: VertexId| -> Option<VertexId> {
        let mut best = dist[v as usize].load(Ordering::Relaxed);
        let mut improved = false;
        let in_deg = graph.in_degree(v);
        ctx.counters.add_edges(in_deg as u64);
        if ctx.tracer.is_enabled() {
            ctx.tracer.adjacency_scan(graph.adjacency_offset(v), in_deg);
            let ids: Vec<u64> = graph.in_neighbors(v).iter().map(|&u| u as u64).collect();
            ctx.tracer.state_read_batch(ctx.query_id, &ids);
        }
        for (u, w) in graph.in_edges(v) {
            if in_frontier[u as usize] {
                let du = dist[u as usize].load(Ordering::Relaxed);
                if du != INF_DIST && du + (w as Dist) < best {
                    best = du + w as Dist;
                    improved = true;
                }
            }
        }
        if improved {
            dist[v as usize].fetch_min(best, Ordering::Relaxed);
            Some(v)
        } else {
            None
        }
    };
    let segment = segment.unwrap_or(n).max(1);
    let mut next = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + segment).min(n);
        let range: Vec<VertexId> = (start as VertexId..end as VertexId).collect();
        let mut found: Vec<VertexId> = if ctx.parallel {
            range.par_iter().filter_map(|&v| pull(v)).collect()
        } else {
            range.iter().filter_map(|&v| pull(v)).collect()
        };
        next.append(&mut found);
        start = end;
    }
    next
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

/// Frontier-based BFS with direction optimisation.
pub fn frontier_bfs(
    graph: &CsrGraph,
    source: VertexId,
    ctx: &QueryContext<'_>,
    strategy: IterationStrategy,
) -> Vec<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    level[source as usize].store(0, Ordering::Relaxed);
    let mut frontier: Vec<VertexId> = vec![source];
    let mut current_level = 0u32;

    while !frontier.is_empty() {
        ctx.counters.add_iteration();
        let dense = match strategy {
            IterationStrategy::DenseAlways => true,
            IterationStrategy::DirectionOptimizing { divisor, .. } => {
                let work: usize =
                    frontier.len() + frontier.iter().map(|&v| graph.out_degree(v)).sum::<usize>();
                work > graph.num_edges() / divisor.max(1)
            }
        };
        let next_level = current_level + 1;
        frontier = if dense {
            let mut in_frontier = vec![false; n];
            for &v in &frontier {
                in_frontier[v as usize] = true;
            }
            let segment = match strategy {
                IterationStrategy::DirectionOptimizing { pull_segment, .. } => {
                    pull_segment.unwrap_or(n)
                }
                IterationStrategy::DenseAlways => n,
            }
            .max(1);
            let pull = |v: VertexId| -> Option<VertexId> {
                if level[v as usize].load(Ordering::Relaxed) != u32::MAX {
                    return None;
                }
                let in_deg = graph.in_degree(v);
                ctx.counters.add_edges(in_deg as u64);
                if ctx.tracer.is_enabled() {
                    // The BFS pull scan early-exits on the first frontier
                    // neighbour and only consults the frontier bitmap, so only
                    // the adjacency lines are charged here (charging a full
                    // per-neighbour state scan would over-count this path).
                    ctx.tracer.adjacency_scan(graph.adjacency_offset(v), in_deg);
                }
                for &u in graph.in_neighbors(v) {
                    if in_frontier[u as usize] {
                        level[v as usize].store(next_level, Ordering::Relaxed);
                        return Some(v);
                    }
                }
                None
            };
            let mut next = Vec::new();
            let mut start = 0usize;
            while start < n {
                let end = (start + segment).min(n);
                let range: Vec<VertexId> = (start as VertexId..end as VertexId).collect();
                let mut found: Vec<VertexId> = if ctx.parallel {
                    range.par_iter().filter_map(|&v| pull(v)).collect()
                } else {
                    range.iter().filter_map(|&v| pull(v)).collect()
                };
                next.append(&mut found);
                start = end;
            }
            next
        } else {
            let explore = |u: VertexId| -> Vec<VertexId> {
                let mut discovered = Vec::new();
                ctx.record_scan(graph, u);
                ctx.record_state_touch(u, graph.out_neighbors(u));
                for &v in graph.out_neighbors(u) {
                    if level[v as usize]
                        .compare_exchange(
                            u32::MAX,
                            next_level,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        discovered.push(v);
                    }
                }
                discovered
            };
            if ctx.parallel {
                frontier.par_iter().map(|&u| explore(u)).reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
            } else {
                let mut next = Vec::new();
                for &u in &frontier {
                    next.append(&mut explore(u));
                }
                next
            }
        };
        current_level = next_level;
    }
    level.into_iter().map(|l| l.into_inner()).collect()
}

// ---------------------------------------------------------------------------
// PPR
// ---------------------------------------------------------------------------

/// Frontier push-based approximate PPR (parallel variant of the
/// Andersen–Chung–Lang kernel in `fg-seq`).
///
/// `dense_scan` makes every iteration scan all vertices for active residuals
/// (Gemini's bulk-synchronous behaviour) instead of tracking an explicit
/// frontier.
pub fn frontier_ppr(
    graph: &CsrGraph,
    seed: VertexId,
    config: &PprConfig,
    ctx: &QueryContext<'_>,
    dense_scan: bool,
) -> Vec<(VertexId, f64)> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut estimate = vec![0.0f64; n];
    let mut residual = vec![0.0f64; n];
    residual[seed as usize] = 1.0;
    let mut frontier: Vec<VertexId> = vec![seed];
    let mut pushes = 0u64;

    loop {
        ctx.counters.add_iteration();
        let active: Vec<VertexId> = if dense_scan {
            let collect = |v: &VertexId| {
                let v = *v;
                let deg = graph.out_degree(v).max(1) as f64;
                if residual[v as usize] >= config.epsilon * deg {
                    Some(v)
                } else {
                    None
                }
            };
            let all: Vec<VertexId> = (0..n as VertexId).collect();
            // A dense scan reads every vertex's residual once per round.
            ctx.counters.add_edges(n as u64 / 8);
            if ctx.parallel {
                all.par_iter().filter_map(collect).collect()
            } else {
                all.iter().filter_map(collect).collect()
            }
        } else {
            frontier
                .iter()
                .copied()
                .filter(|&v| {
                    residual[v as usize] >= config.epsilon * graph.out_degree(v).max(1) as f64
                })
                .collect()
        };
        if active.is_empty() {
            break;
        }

        // Two-phase push so the parallel variant needs no atomics on floats:
        // each task accumulates into a private delta vector, then the deltas
        // are reduced and applied.
        let push_one = |u: VertexId, delta: &mut Vec<f64>, next: &mut Vec<VertexId>| {
            let r = residual[u as usize];
            let deg = graph.out_degree(u).max(1) as f64;
            ctx.record_scan(graph, u);
            ctx.record_state_touch(u, graph.out_neighbors(u));
            estimate_add(delta, u, config.alpha * r, n);
            let push_mass = (1.0 - config.alpha) * r;
            // Lazy variant: half stays on u, half spreads over the neighbours.
            residual_add(delta, u, push_mass / 2.0 - r, n);
            if graph.out_degree(u) == 0 {
                residual_add(delta, u, push_mass / 2.0, n);
            } else {
                let share = push_mass / 2.0 / deg;
                for &v in graph.out_neighbors(u) {
                    residual_add(delta, v, share, n);
                    next.push(v);
                }
            }
            next.push(u);
        };

        let (delta, mut next): (Vec<f64>, Vec<VertexId>) = if ctx.parallel {
            active
                .par_iter()
                .fold(
                    || (vec![0.0f64; 2 * n], Vec::new()),
                    |(mut delta, mut next), &u| {
                        push_one(u, &mut delta, &mut next);
                        (delta, next)
                    },
                )
                .reduce(
                    || (vec![0.0f64; 2 * n], Vec::new()),
                    |(mut d1, mut n1), (d2, mut n2)| {
                        for (a, b) in d1.iter_mut().zip(d2.iter()) {
                            *a += b;
                        }
                        n1.append(&mut n2);
                        (d1, n1)
                    },
                )
        } else {
            let mut delta = vec![0.0f64; 2 * n];
            let mut next = Vec::new();
            for &u in &active {
                push_one(u, &mut delta, &mut next);
            }
            (delta, next)
        };
        pushes += active.len() as u64;

        // Apply the deltas: first half of the vector is estimate, second half
        // residual.
        for v in 0..n {
            estimate[v] += delta[v];
            residual[v] += delta[n + v];
            if residual[v] < 0.0 {
                residual[v] = 0.0; // guard against float cancellation noise
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
        if config.max_pushes > 0 && pushes >= config.max_pushes {
            break;
        }
    }

    ctx.counters.add_operations(pushes);
    estimate
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.0)
        .map(|(v, &p)| (v as VertexId, p))
        .collect()
}

#[inline]
fn estimate_add(delta: &mut [f64], v: VertexId, x: f64, _n: usize) {
    delta[v as usize] += x;
}

#[inline]
fn residual_add(delta: &mut [f64], v: VertexId, x: f64, n: usize) {
    delta[n + v as usize] += x;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cachesim::GraphAccessTracer;
    use fg_graph::gen;
    use fg_metrics::WorkCounters;
    use fg_seq::{bfs::bfs, dijkstra::dijkstra};

    fn ctx<'a>(
        tracer: &'a GraphAccessTracer,
        counters: &'a WorkCounters,
        parallel: bool,
    ) -> QueryContext<'a> {
        QueryContext { query_id: 0, parallel, tracer, counters }
    }

    const LIGRA_STRATEGY: IterationStrategy =
        IterationStrategy::DirectionOptimizing { divisor: 20, pull_segment: None };

    #[test]
    fn sssp_matches_dijkstra_sequential_and_parallel() {
        let g = gen::erdos_renyi(300, 2500, 1).with_random_weights(9, 1);
        let oracle = dijkstra(&g, 0).dist;
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        for parallel in [false, true] {
            let d = frontier_sssp(&g, 0, &ctx(&tracer, &counters, parallel), LIGRA_STRATEGY);
            assert_eq!(d, oracle, "parallel={parallel}");
        }
    }

    #[test]
    fn sssp_dense_always_matches_dijkstra() {
        let g = gen::grid2d(20, 20, 0.02, 3).with_random_weights(7, 2);
        let oracle = dijkstra(&g, 5).dist;
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let d =
            frontier_sssp(&g, 5, &ctx(&tracer, &counters, false), IterationStrategy::DenseAlways);
        assert_eq!(d, oracle);
    }

    #[test]
    fn sssp_segmented_pull_matches_dijkstra() {
        let g = gen::rmat(9, 6, 4).with_random_weights(5, 4);
        let oracle = dijkstra(&g, 7).dist;
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let strategy =
            IterationStrategy::DirectionOptimizing { divisor: 20, pull_segment: Some(64) };
        let d = frontier_sssp(&g, 7, &ctx(&tracer, &counters, true), strategy);
        assert_eq!(d, oracle);
    }

    #[test]
    fn bfs_matches_sequential_bfs() {
        let g = gen::rmat(9, 5, 2);
        let oracle = bfs(&g, 3).level;
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        for parallel in [false, true] {
            let l = frontier_bfs(&g, 3, &ctx(&tracer, &counters, parallel), LIGRA_STRATEGY);
            assert_eq!(l, oracle, "parallel={parallel}");
        }
        let dense =
            frontier_bfs(&g, 3, &ctx(&tracer, &counters, false), IterationStrategy::DenseAlways);
        assert_eq!(dense, oracle);
    }

    #[test]
    fn dense_strategy_processes_more_edges_on_road_graphs() {
        let g = gen::grid2d(25, 25, 0.0, 1).with_random_weights(5, 1);
        let tracer = GraphAccessTracer::disabled();
        let ligra_counters = WorkCounters::new();
        let _ = frontier_sssp(&g, 0, &ctx(&tracer, &ligra_counters, false), LIGRA_STRATEGY);
        let gemini_counters = WorkCounters::new();
        let _ = frontier_sssp(
            &g,
            0,
            &ctx(&tracer, &gemini_counters, false),
            IterationStrategy::DenseAlways,
        );
        assert!(
            gemini_counters.snapshot().edges_processed
                > 2 * ligra_counters.snapshot().edges_processed,
            "dense {} vs direction-optimizing {}",
            gemini_counters.snapshot().edges_processed,
            ligra_counters.snapshot().edges_processed
        );
    }

    #[test]
    fn ppr_mass_is_approximately_conserved() {
        let g = gen::rmat(8, 6, 3);
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let config = PprConfig { epsilon: 1e-5, ..Default::default() };
        let est = frontier_ppr(&g, 1, &config, &ctx(&tracer, &counters, false), false);
        let mass: f64 = est.iter().map(|(_, p)| p).sum();
        assert!(mass > 0.0 && mass <= 1.0 + 1e-9, "mass {mass}");
    }

    #[test]
    fn ppr_parallel_close_to_sequential_reference() {
        let g = gen::rmat(8, 6, 5);
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let config = PprConfig { epsilon: 1e-6, ..Default::default() };
        let reference = fg_seq::ppr::ppr_push(&g, 2, &config).dense(g.num_vertices());
        for (parallel, dense_scan) in [(false, false), (true, false), (false, true)] {
            let est = frontier_ppr(&g, 2, &config, &ctx(&tracer, &counters, parallel), dense_scan);
            let mut dense = vec![0.0; g.num_vertices()];
            for (v, p) in est {
                dense[v as usize] = p;
            }
            let l1: f64 = dense.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).sum();
            assert!(l1 < 0.05, "parallel={parallel} dense={dense_scan} l1={l1}");
        }
    }

    #[test]
    fn ppr_seed_dominates() {
        let g = gen::grid2d(10, 10, 0.0, 1);
        let tracer = GraphAccessTracer::disabled();
        let counters = WorkCounters::new();
        let config = PprConfig { epsilon: 1e-6, ..Default::default() };
        let est = frontier_ppr(&g, 55, &config, &ctx(&tracer, &counters, true), false);
        let best = est.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(best.0, 55);
    }
}
