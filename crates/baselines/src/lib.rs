//! # fg-baselines
//!
//! Reimplementations of the three baseline graph processing systems (GPSs) the
//! paper compares against, plus the fork-processing-pattern (FPP) driver that
//! runs a batch of queries under the different threading schemes of Table 1 /
//! Figure 1:
//!
//! * [`ligra::LigraEngine`] — frontier-based edgeMap/vertexMap processing with
//!   push/pull direction switching (Ligra's execution model),
//! * [`gemini::GeminiEngine`] — dense, bulk-synchronous iterations with a
//!   global barrier per round (Gemini's chunk-based dual engine with message
//!   passing disabled, as evaluated in the paper),
//! * [`graphit::GraphItEngine`] — Ligra-style processing whose pull phases
//!   iterate over LLC-sized source segments (GraphIt's cache optimisation),
//! * [`atomic_free`] — the topology-driven, atomic-free Bellman–Ford SSSP of
//!   Appendix E, used as a sanity check,
//! * [`fpp::FppDriver`] — runs `|Q|` independent queries under a chosen
//!   [`fpp::ExecutionScheme`] (single-threaded, inter-query `t = 1`,
//!   intra-query `t = cores`, or hybrid), with optional LLC simulation.
//!
//! These engines reproduce the *execution models* of the original C++ systems,
//! which is what the paper's comparison targets; see DESIGN.md §5.

pub mod atomic_free;
pub mod engine;
pub mod fpp;
pub mod frontier;
pub mod gemini;
pub mod graphit;
pub mod kernels;
pub mod ligra;

pub use engine::{GpsEngine, QueryContext};
pub use fpp::{ExecutionScheme, FppDriver, FppResult, QueryKind, QueryOutput};
pub use gemini::GeminiEngine;
pub use graphit::GraphItEngine;
pub use ligra::LigraEngine;
