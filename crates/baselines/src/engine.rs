//! The common interface implemented by every baseline graph processing system.

use fg_cachesim::GraphAccessTracer;
use fg_graph::{CsrGraph, Dist, VertexId};
use fg_metrics::WorkCounters;
use fg_seq::ppr::PprConfig;

/// Per-query execution context handed to an engine kernel.
pub struct QueryContext<'a> {
    /// Index of this query within the FPP batch (selects the synthetic
    /// address region of its vertex state).
    pub query_id: usize,
    /// Whether the kernel may use intra-query parallelism (rayon). `false`
    /// corresponds to the paper's `t = 1` inter-query scheme where each query
    /// runs on a single thread.
    pub parallel: bool,
    /// LLC access tracer (may be disabled).
    pub tracer: &'a GraphAccessTracer,
    /// Shared work counters.
    pub counters: &'a WorkCounters,
}

impl<'a> QueryContext<'a> {
    /// Record that `vertex`'s adjacency was scanned and its `degree` edges
    /// processed, updating both the cache tracer and the work counters.
    #[inline]
    pub fn record_scan(&self, graph: &CsrGraph, vertex: VertexId) {
        let degree = graph.out_degree(vertex);
        self.counters.add_edges(degree as u64);
        if self.tracer.is_enabled() {
            self.tracer.adjacency_scan(graph.adjacency_offset(vertex), degree);
        }
    }

    /// Record that this query read/wrote its state for `vertex` and each of
    /// the given neighbours.
    #[inline]
    pub fn record_state_touch(&self, vertex: VertexId, neighbors: &[VertexId]) {
        if self.tracer.is_enabled() {
            self.tracer.state_write(self.query_id, vertex as u64);
            let ids: Vec<u64> = neighbors.iter().map(|&v| v as u64).collect();
            self.tracer.state_read_batch(self.query_id, &ids);
        }
    }
}

/// A baseline graph processing system: Ligra-, Gemini-, or GraphIt-like.
///
/// Each engine provides the three query kernels the paper's applications need
/// (SSSP for BC/LL on weighted graphs, BFS for BC on unweighted graphs, PPR for
/// NCP). Kernels must honour `ctx.parallel` and report work/accesses through
/// the context.
pub trait GpsEngine: Sync + Send {
    /// Human-readable system name ("Ligra", "Gemini", "GraphIt").
    fn name(&self) -> &'static str;

    /// Single-source shortest paths from `source`.
    fn sssp(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<Dist>;

    /// Breadth-first search levels from `source` (`u32::MAX` = unreachable).
    fn bfs(&self, graph: &CsrGraph, source: VertexId, ctx: &QueryContext<'_>) -> Vec<u32>;

    /// Approximate personalized PageRank from `seed`; returns sparse
    /// `(vertex, estimate)` pairs.
    fn ppr(
        &self,
        graph: &CsrGraph,
        seed: VertexId,
        config: &PprConfig,
        ctx: &QueryContext<'_>,
    ) -> Vec<(VertexId, f64)>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cachesim::CacheConfig;
    use fg_graph::gen;

    #[test]
    fn context_records_work_and_accesses() {
        let g = gen::complete(8);
        let counters = WorkCounters::new();
        let tracer = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        let ctx =
            QueryContext { query_id: 0, parallel: false, tracer: &tracer, counters: &counters };
        ctx.record_scan(&g, 0);
        ctx.record_state_touch(0, g.out_neighbors(0));
        assert_eq!(counters.snapshot().edges_processed, 7);
        assert!(tracer.stats().accesses > 0);
    }

    #[test]
    fn disabled_tracer_still_counts_work() {
        let g = gen::complete(5);
        let counters = WorkCounters::new();
        let tracer = GraphAccessTracer::disabled();
        let ctx =
            QueryContext { query_id: 3, parallel: true, tracer: &tracer, counters: &counters };
        ctx.record_scan(&g, 2);
        ctx.record_state_touch(2, g.out_neighbors(2));
        assert_eq!(counters.snapshot().edges_processed, 4);
        assert_eq!(tracer.stats().accesses, 0);
    }
}
