//! Pins the service's drain state: `begin_drain` must reject *new* submits
//! with a typed [`ServiceError::ShuttingDown`] while every already-admitted
//! ticket still resolves — the contract the network front door's graceful
//! shutdown is built on (stop admitting first, flush connections, then
//! `shutdown`).

use std::sync::Arc;
use std::time::Duration;

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_service::{ForkGraphService, Query, ServiceConfig, ServiceError};
use forkgraph_core::EngineConfig;

fn small_graph() -> Arc<PartitionedGraph> {
    let graph = gen::rmat(8, 8, 7).with_random_weights(9, 7);
    Arc::new(PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
    ))
}

#[test]
fn drain_rejects_new_submits_but_resolves_admitted_tickets() {
    let graph = small_graph();
    // A long batch window so tickets submitted now are still pending when
    // drain flips — the drain must not reject them retroactively.
    let config = ServiceConfig {
        batch_window: Duration::from_millis(100),
        cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let service = ForkGraphService::start(graph, EngineConfig::default(), config);
    let handle = service.handle();

    assert!(!service.is_draining());
    let admitted: Vec<_> = (0..8)
        .map(|v| handle.submit_query(Query::kernel("sssp").source(v)).expect("admitted pre-drain"))
        .collect();

    service.begin_drain();
    assert!(service.is_draining());
    assert!(handle.is_draining());

    // New work is shed with the typed drain error, not Saturated and not a
    // hang.
    match handle.submit_query(Query::kernel("sssp").source(1)) {
        Err(ServiceError::ShuttingDown) => {}
        other => panic!("draining submit should fail ShuttingDown, got {other:?}"),
    }
    // The legacy enum API flows through the same gate.
    match handle.submit(fg_service::QuerySpec::Bfs { source: 2 }) {
        Err(ServiceError::ShuttingDown) => {}
        other => panic!("draining enum submit should fail ShuttingDown, got {other:?}"),
    }

    // Everything admitted before the drain still resolves successfully.
    for (v, ticket) in admitted.iter().enumerate() {
        let result = ticket
            .wait_timeout(Duration::from_secs(10))
            .expect("admitted ticket resolves during drain")
            .expect("admitted ticket resolves Ok");
        assert_eq!(result.try_sssp().expect("sssp result")[v], 0, "source distance is zero");
    }

    // Drain is idempotent, and shutdown after a drain is clean.
    service.begin_drain();
    service.shutdown();
}

#[test]
fn drain_with_empty_queue_does_not_wedge_shutdown() {
    let service =
        ForkGraphService::start(small_graph(), EngineConfig::default(), ServiceConfig::default());
    // Nothing queued: begin_drain must leave the batcher in a state where
    // shutdown still joins promptly (the drain notification wakes it).
    service.begin_drain();
    service.shutdown();
}

#[test]
fn cache_hits_are_still_served_while_draining() {
    let graph = small_graph();
    let config = ServiceConfig { cache_capacity: 64, ..ServiceConfig::default() };
    let service = ForkGraphService::start(graph, EngineConfig::default(), config);
    let handle = service.handle();

    let warm = handle.run_query(Query::kernel("bfs").source(3)).expect("warmup query");
    service.begin_drain();
    // The memoized result costs no engine work; serving it while connections
    // wind down is deliberate (documented on `begin_drain`).
    let hit = handle.run_query(Query::kernel("bfs").source(3)).expect("cache hit during drain");
    assert!(Arc::ptr_eq(&warm, &hit), "drain-time answer is the cached result");
    // A cold query is still rejected.
    match handle.submit_query(Query::kernel("bfs").source(4)) {
        Err(ServiceError::ShuttingDown) => {}
        other => panic!("cold draining submit should fail ShuttingDown, got {other:?}"),
    }
    service.shutdown();
}
