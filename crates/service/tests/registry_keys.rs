//! Key-hygiene property tests for the open kernel registry.
//!
//! Batch cohorts and cache entries are keyed by `(registration id, canonical
//! params)`; these tests pin the properties that make that keying safe for
//! an *open* kernel set:
//!
//! * two *different registrations* — even under colliding (identical) names,
//!   via `register_or_replace` shadowing or sibling registries — never share
//!   a `BatchKey` or `CacheKey`;
//! * two *different configurations* of one kernel never share keys, no
//!   matter how adversarially the parameter values are chosen (bit-level
//!   float distinctions, integer-vs-float types, swapped name/value pairs);
//! * and the service end-to-end never serves a shadowed kernel's cached
//!   result for its replacement.
//!
//! Companion to `batching_equivalence.rs`, which checks that queries that
//! *should* share cohorts produce correct consolidated results; this file
//! checks that queries that *must not* share cohorts cannot.

use std::collections::HashSet;
use std::sync::Arc;

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_service::{
    BatchKey, CacheKey, ForkGraphService, InstantiatedKernel, KernelRegistry, ParamError, Query,
    QueryParams, QuerySpec, ServiceConfig,
};
use forkgraph_core::kernels::{BfsKernel, SsspKernel};
use forkgraph_core::{erase, EngineConfig};

/// A deterministic xorshift so the sweep is reproducible without an RNG dep.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn sssp_like_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    let canonical = QueryParams::new().with("k", params.u64_or("k", 1)?);
    Ok(InstantiatedKernel::new(erase(SsspKernel), canonical))
}

fn bfs_like_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    let canonical = QueryParams::new().with("k", params.u64_or("k", 1)?);
    Ok(InstantiatedKernel::new(erase(BfsKernel), canonical))
}

fn key_for(registry: &KernelRegistry, name: &str, params: &QueryParams) -> BatchKey {
    let resolved = registry.resolve(name, params).unwrap();
    BatchKey { kernel: resolved.id, params: resolved.params }
}

#[test]
fn same_name_different_registration_never_shares_keys() {
    // Two registries each register a kernel under the *same* name with the
    // same factory signature — e.g. two tenants both calling their kernel
    // "khop". Their keys must not alias (global id minting).
    let a = KernelRegistry::with_builtins();
    let b = KernelRegistry::with_builtins();
    a.register("khop", sssp_like_factory).unwrap();
    b.register("khop", bfs_like_factory).unwrap();
    let params = QueryParams::new().with("k", 3u64);
    let key_a = key_for(&a, "khop", &params);
    let key_b = key_for(&b, "khop", &params);
    assert_ne!(key_a, key_b, "identical names + identical configs, different registrations");
    assert_ne!(
        CacheKey { key: key_a, source: 7 },
        CacheKey { key: key_b, source: 7 },
        "cache keys inherit the separation"
    );

    // Shadowing within one registry is also a fresh identity.
    let registry = KernelRegistry::with_builtins();
    registry.register("khop", sssp_like_factory).unwrap();
    let before = key_for(&registry, "khop", &params);
    let (new_id, replaced) = registry.register_or_replace("khop", bfs_like_factory);
    assert!(replaced.is_some());
    let after = key_for(&registry, "khop", &params);
    assert_ne!(before, after, "replacement must not inherit the shadowed kernel's keys");
    assert_eq!(after.kernel, new_id);
}

#[test]
fn distinct_configs_never_collide_across_a_randomized_sweep() {
    // Property sweep: generate many (kernel, params) pairs, including
    // adversarial near-collisions — float bit-twiddles, int-vs-float typed
    // values, swapped names — and require the map pair → key to be
    // injective.
    let registry = KernelRegistry::with_builtins();
    let mut seen: HashSet<(String, QueryParams)> = HashSet::new();
    let mut keys: HashSet<BatchKey> = HashSet::new();
    let mut state = 0x00C0FFEE_D15EA5E5u64;

    let mut check = |name: &str, params: QueryParams| {
        let key = key_for(&registry, name, &params);
        let input = (name.to_string(), key.params.clone());
        // Canonicalized duplicates are *allowed* (same canonical params ⇒
        // same key is correct); only distinct canonical inputs must map to
        // distinct keys.
        if seen.insert(input) {
            assert!(
                keys.insert(key.clone()),
                "distinct (kernel, canonical params) collided on {key:?}"
            );
        } else {
            assert!(keys.contains(&key), "duplicate input must reproduce its key");
        }
    };

    for round in 0..200 {
        let eps_bits = (1e-6f64).to_bits() ^ (xorshift(&mut state) % 4096);
        let epsilon = f64::from_bits(eps_bits).abs().clamp(1e-12, 0.5);
        check("ppr", QueryParams::new().with("epsilon", epsilon));
        check(
            "ppr",
            QueryParams::new().with("epsilon", epsilon).with("alpha", 0.1 + (round as f64) * 1e-3),
        );
        let walks = 1 + xorshift(&mut state) % 64;
        check("random_walk", QueryParams::new().with("num_walks", walks));
        check(
            "random_walk",
            QueryParams::new().with("num_walks", walks).with("seed", xorshift(&mut state)),
        );
    }
    // Parameter-less kernels key apart from each other and from any
    // parameterised instance.
    check("sssp", QueryParams::new());
    check("bfs", QueryParams::new());

    // Custom kernels: same factory params but different registrations.
    registry.register("khop-a", sssp_like_factory).unwrap();
    registry.register("khop-b", sssp_like_factory).unwrap();
    for k in 0..32u64 {
        check("khop-a", QueryParams::new().with("k", k));
        check("khop-b", QueryParams::new().with("k", k));
        // Int-typed vs float-typed values of the same name are distinct
        // *inputs*; the factory canonicalizes via u64_or, so the float form
        // is rejected — which is also acceptable hygiene. Use the raw
        // params form to assert the value-type distinction directly.
        let int_key = QueryParams::new().with("v", k);
        let float_key = QueryParams::new().with("v", k as f64);
        assert_ne!(int_key, float_key, "u64 and f64 params are distinct key components");
    }
}

#[test]
fn replaced_kernel_results_are_not_served_to_the_replacement() {
    // End-to-end: serve a "distance" kernel, cache a hot result, then
    // replace the registration under the same name with a kernel computing
    // something else. The hot query must re-run (the old cached result can
    // not satisfy the new key) and the old cache entries are purged eagerly.
    let g = gen::erdos_renyi(250, 1800, 17).with_random_weights(8, 17);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
    ));
    let service =
        ForkGraphService::start(Arc::clone(&pg), EngineConfig::default(), ServiceConfig::default());
    let handle = service.handle();
    handle.register_kernel("metric", sssp_like_factory).unwrap();

    let query = || Query::kernel("metric").source(9).param("k", 1u64);
    let first = handle.run_query(query()).unwrap();
    assert!(first.try_sssp().is_ok(), "first registration runs the SSSP-backed kernel");
    let cached = handle.run_query(query()).unwrap();
    assert!(Arc::ptr_eq(&first, &cached), "hot query served from cache");
    assert_eq!(handle.metrics().cache_hits, 1);
    let cached_before = handle.cached_results();
    assert!(cached_before >= 1);

    // Shadow "metric" with a BFS-backed kernel. Same name, same params.
    handle.register_kernel_replacing("metric", bfs_like_factory);
    assert!(handle.cached_results() < cached_before, "shadowed entries evicted eagerly");

    let after = handle.run_query(query()).unwrap();
    assert!(
        !Arc::ptr_eq(&first, &after),
        "replacement must not be served the shadowed kernel's cached result"
    );
    assert!(after.try_bfs().is_ok(), "the replacement kernel actually ran");
    assert_eq!(
        after.try_sssp().unwrap_err().kernel,
        "metric",
        "mismatch error names the registered kernel"
    );
    // The hot path works for the new registration too.
    let again = handle.run_query(query()).unwrap();
    assert!(Arc::ptr_eq(&after, &again));
    service.shutdown();
}

#[test]
fn in_flight_batches_of_a_replaced_kernel_do_not_repopulate_the_cache() {
    // A query can be queued (batch window open) when its registration is
    // replaced. The submitter must still get the kernel it resolved at
    // submit time, but the result must NOT be cached: its key embeds the
    // dead id, so the entry could never be served again and would only
    // squat in the capacity `register_kernel_replacing` just reclaimed.
    let g = gen::erdos_renyi(200, 1400, 19).with_random_weights(8, 19);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
    ));
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig {
            // Long window: the replacement below lands while the query is
            // still queued.
            batch_window: std::time::Duration::from_millis(300),
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    handle.register_kernel("metric", sssp_like_factory).unwrap();

    let ticket = handle.submit_query(Query::kernel("metric").source(5)).unwrap();
    handle.register_kernel_replacing("metric", bfs_like_factory);
    let in_flight = ticket.wait().unwrap();
    assert!(
        in_flight.try_sssp().is_ok(),
        "in-flight query runs the registration it resolved at submit time"
    );
    assert_eq!(
        handle.cached_results(),
        0,
        "a de-registered kernel's batch must not repopulate the cache"
    );

    // The same query now runs (and caches) the replacement kernel.
    let after = handle.run_query(Query::kernel("metric").source(5)).unwrap();
    assert!(after.try_bfs().is_ok());
    assert_eq!(handle.metrics().cache_hits, 0, "nothing stale to hit");
    assert_eq!(handle.cached_results(), 1);
    service.shutdown();
}

/// A hand-written (non-`erase`) `DynKernel` that violates the contract by
/// returning one state fewer than it was given sources.
struct ShortChangedKernel;

impl forkgraph_core::DynKernel for ShortChangedKernel {
    fn name(&self) -> &str {
        "short-changed"
    }

    fn value_type(&self) -> std::any::TypeId {
        std::any::TypeId::of::<u64>()
    }

    fn state_type(&self) -> std::any::TypeId {
        std::any::TypeId::of::<Vec<u64>>()
    }

    fn state_type_name(&self) -> &'static str {
        "Vec<u64>"
    }

    fn batch_weight(&self) -> f64 {
        1.0
    }

    fn run_erased(
        &self,
        engine: &forkgraph_core::ForkGraphEngine<'_>,
        sources: &[u32],
    ) -> forkgraph_core::ForkGraphRunResult<forkgraph_core::ErasedState> {
        let mut result = engine.run_dyn(&*erase(SsspKernel), sources);
        result.per_query.pop(); // contract violation: one state short
        result
    }

    // The multi-run hooks keep their defaults: a hand-written DynKernel is
    // not multi-capable, so the batcher always runs it in its own
    // single-kernel pass (through `run_erased` above).
}

#[test]
fn misbehaving_dyn_kernels_fail_the_cohort_instead_of_stranding_tickets() {
    // DynKernel is an open trait: a hand-implemented run_erased can return
    // the wrong number of states. Every submitter in the cohort must get a
    // typed EngineFailure — never a ticket that hangs forever — and the
    // batcher must keep serving well-behaved kernels afterwards.
    let g = gen::erdos_renyi(150, 900, 23).with_random_weights(8, 23);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 3),
    ));
    let service =
        ForkGraphService::start(Arc::clone(&pg), EngineConfig::default(), ServiceConfig::default());
    let handle = service.handle();
    handle
        .register_kernel("short-changed", |_: &QueryParams| {
            Ok(InstantiatedKernel::new(Arc::new(ShortChangedKernel), QueryParams::new()))
        })
        .unwrap();

    let err = handle.run_query(Query::kernel("short-changed").source(1)).unwrap_err();
    assert_eq!(err, fg_service::ServiceError::EngineFailure);
    // The batcher survived and keeps serving.
    assert!(handle.run_query(Query::kernel("sssp").source(1)).unwrap().try_sssp().is_ok());
    service.shutdown();
}

#[test]
fn enum_shim_keys_match_registry_derived_keys() {
    // The legacy QuerySpec keys are computed without a registry; they must
    // agree exactly with what resolution produces, or the two submission
    // APIs would split cohorts / double-cache.
    let registry = KernelRegistry::with_builtins();
    let specs = [
        QuerySpec::Sssp { source: 3 },
        QuerySpec::Bfs { source: 3 },
        QuerySpec::Ppr { seed: 3, config: Default::default() },
        QuerySpec::RandomWalk { source: 3, config: Default::default() },
    ];
    for spec in specs {
        let query = spec.to_query();
        let resolved = registry.resolve(query.kernel_name(), query.params()).unwrap();
        let derived = BatchKey { kernel: resolved.id, params: resolved.params };
        assert_eq!(spec.batch_key(), derived, "{spec:?}");
        assert_eq!(spec.cache_key(), CacheKey { key: derived, source: 3 }, "{spec:?}");
    }
}
