//! Property test: service-batched execution is result-identical to direct
//! single-query `ForkGraphEngine::run` calls for SSSP and BFS, for any
//! interleaving of submissions.
//!
//! Each trial builds a random graph, starts a service with a randomized
//! configuration (window, batch cap, cache on/off), and fires a random mix of
//! SSSP/BFS queries from a random number of concurrent submitter threads with
//! random inter-submission delays — so batch formation genuinely varies
//! between trials (single-query batches, full consolidations, mixed-kind
//! queues, cache hits). Every answer must equal the direct engine run.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, VertexId};
use fg_service::{ForkGraphService, QueryResult, QuerySpec, ServiceConfig};
use forkgraph_core::{EngineConfig, ForkGraphEngine};

const TRIALS: u64 = 8;

#[test]
fn service_results_equal_direct_engine_runs_under_random_interleavings() {
    for trial in 0..TRIALS {
        let mut rng = SmallRng::seed_from_u64(0x5E11CE + trial);

        let n = rng.gen_range(50usize..300);
        let m = rng.gen_range(n..4 * n);
        let graph = gen::erdos_renyi(n, m, trial + 1).with_random_weights(8, trial + 1);
        let parts = rng.gen_range(1usize..8);
        let pg = Arc::new(PartitionedGraph::build(
            &graph,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
        ));

        let config = ServiceConfig {
            batch_window: Duration::from_millis(rng.gen_range(0u64..8)),
            max_batch_size: rng.gen_range(1usize..32),
            max_queue_depth: 4096, // property is about correctness, not shedding
            cache_capacity: if rng.gen_bool(0.5) { 256 } else { 0 },
            // Exercise both the one-cohort-per-run path and heterogeneous
            // multi-kernel runs under the same correctness property.
            max_kernels_per_run: rng.gen_range(1usize..5),
        };
        let service = ForkGraphService::start(Arc::clone(&pg), EngineConfig::default(), config);

        let num_submitters = rng.gen_range(1usize..5);
        let queries_per_submitter = rng.gen_range(1usize..8);
        // Pre-generate each submitter's schedule so the RNG stays on this thread.
        let schedules: Vec<Vec<(QuerySpec, u64)>> = (0..num_submitters)
            .map(|_| {
                (0..queries_per_submitter)
                    .map(|_| {
                        let source: VertexId = rng.gen_range(0u32..n as u32);
                        let spec = if rng.gen_bool(0.5) {
                            QuerySpec::Sssp { source }
                        } else {
                            QuerySpec::Bfs { source }
                        };
                        (spec, rng.gen_range(0u64..3)) // delay before submit, ms
                    })
                    .collect()
            })
            .collect();

        let outcomes: Vec<(QuerySpec, Arc<QueryResult>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = schedules
                .into_iter()
                .map(|schedule| {
                    let handle = service.handle();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for (spec, delay_ms) in schedule {
                            if delay_ms > 0 {
                                std::thread::sleep(Duration::from_millis(delay_ms));
                            }
                            let result = handle.submit(spec).unwrap().wait().unwrap();
                            got.push((spec, result));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });

        let metrics = service.metrics();
        service.shutdown();

        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        for (spec, result) in outcomes {
            match spec {
                QuerySpec::Sssp { source } => {
                    let direct = engine.run_sssp(&[source]);
                    assert_eq!(
                        result.as_sssp().unwrap(),
                        &direct.per_query[0],
                        "trial {trial}: sssp from {source} diverged (metrics: {metrics:?})"
                    );
                }
                QuerySpec::Bfs { source } => {
                    let direct = engine.run_bfs(&[source]);
                    assert_eq!(
                        result.as_bfs().unwrap(),
                        &direct.per_query[0],
                        "trial {trial}: bfs from {source} diverged (metrics: {metrics:?})"
                    );
                }
                _ => unreachable!("only sssp/bfs are generated"),
            }
        }

        // Sanity: everything submitted was answered one way or the other.
        let total = (num_submitters * queries_per_submitter) as u64;
        assert_eq!(metrics.submitted, total, "trial {trial}");
        assert_eq!(metrics.admitted + metrics.cache_hits, total, "trial {trial}");
    }
}
