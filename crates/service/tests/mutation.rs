//! Service-level dynamic-graph guarantees (ISSUE 8).
//!
//! The contract: a query submitted after `mutate()` returns is answered on a
//! graph version that contains that mutation — never from a stale cache
//! entry, never by an engine run over the old snapshot. The batcher enforces
//! it by quiescing the mutation log (fold + invalidate, atomically under the
//! cache lock) before every dispatch, and the submit fast path refuses cache
//! hits for sources a pending mutation could reach.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, Dist, GraphBuilder, VertexId, Weight};
use fg_service::service::{ForkGraphService, ServiceConfig, ServiceError};
use fg_service::EdgeMutation;
use forkgraph_core::EngineConfig;

fn service_over(edges: &[(u32, u32, u32)], n: usize, threads: usize) -> ForkGraphService {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    let pg = Arc::new(PartitionedGraph::build_arc(
        Arc::new(b.build()),
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ));
    let config = ServiceConfig {
        batch_window: Duration::from_micros(200),
        cache_capacity: 256,
        ..ServiceConfig::default()
    };
    ForkGraphService::start(pg, EngineConfig::default().with_threads(threads), config)
}

fn dist_to(service: &ForkGraphService, source: VertexId, target: VertexId) -> Dist {
    let result = service.handle().submit_sssp(source).unwrap().wait().unwrap();
    result.try_sssp().unwrap()[target as usize]
}

/// The stale-read regression: query → cache fills → mutate an edge on the
/// shortest path → re-query. The second answer must reflect the mutation;
/// serving the cached pre-mutation result is the bug this PR fixes against.
#[test]
fn requery_after_mutation_never_serves_stale_cache() {
    let service = service_over(&[(0, 1, 10), (1, 2, 10), (2, 3, 10)], 4, 1);
    let handle = service.handle();

    assert_eq!(dist_to(&service, 0, 3), 30);
    // The result is now cached; a repeat is a hit.
    assert_eq!(dist_to(&service, 0, 3), 30);
    assert!(service.metrics().cache_hits >= 1);

    // Shortcut straight past the cached path.
    handle.insert_edge(0, 3, 5).unwrap();
    assert_eq!(dist_to(&service, 0, 3), 5, "served a stale cached distance");

    // And the mutation-aware invalidation is observable.
    let metrics = service.metrics();
    assert_eq!(metrics.mutations_applied, 1);
    assert!(metrics.cache_invalidations >= 1);
    assert_eq!(handle.graph_version(), 1);
    service.shutdown();
}

/// Monotone mutations resume evicted SSSP results from the delta frontier:
/// the re-query is both correct and counted as an incremental run.
#[test]
fn monotone_requery_takes_the_incremental_path() {
    let service = service_over(&[(0, 1, 10), (1, 2, 10), (2, 3, 10)], 4, 1);
    let handle = service.handle();

    assert_eq!(dist_to(&service, 0, 3), 30);
    handle.insert_edge(1, 3, 2).unwrap();
    handle.flush_mutations();
    assert_eq!(dist_to(&service, 0, 3), 12);
    let metrics = service.metrics();
    assert_eq!(metrics.incremental_runs, 1, "monotone re-query should resume, not restart");

    // A deletion (non-monotone) drops the restart state; the re-query falls
    // back to a full run — and is still exact.
    handle.delete_edge(1, 3).unwrap();
    assert_eq!(dist_to(&service, 0, 3), 30);
    let metrics = service.metrics();
    assert_eq!(metrics.incremental_runs, 1, "deletion must take the full-re-run fallback");
    assert_eq!(metrics.mutations_applied, 2);
    service.shutdown();
}

#[test]
fn bfs_requery_after_insertion_is_exact() {
    let service = service_over(&[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)], 5, 1);
    let handle = service.handle();
    let levels = handle.submit_bfs(0).unwrap().wait().unwrap().try_bfs().unwrap().clone();
    assert_eq!(levels[4], 4);
    handle.insert_edge(0, 3, 1).unwrap();
    handle.flush_mutations();
    let levels = handle.submit_bfs(0).unwrap().wait().unwrap().try_bfs().unwrap().clone();
    assert_eq!(levels[3], 1);
    assert_eq!(levels[4], 2);
    service.shutdown();
}

#[test]
fn mutation_validation_and_lifecycle_errors_are_typed() {
    let service = service_over(&[(0, 1, 1)], 4, 1);
    let handle = service.handle();

    assert!(matches!(handle.insert_edge(0, 99, 1), Err(ServiceError::InvalidMutation { .. })));
    assert!(matches!(
        handle.mutate(EdgeMutation::Insert { u: 2, v: 2, w: 1 }),
        Err(ServiceError::InvalidMutation { .. })
    ));
    assert_eq!(handle.pending_mutations(), 0, "rejected mutations must not reach the log");

    handle.begin_drain();
    assert!(matches!(handle.insert_edge(0, 2, 1), Err(ServiceError::ShuttingDown)));
    service.shutdown();
}

#[test]
fn flush_waits_for_the_logged_batch_even_when_idle() {
    let service = service_over(&[(0, 1, 3), (1, 2, 3)], 4, 1);
    let handle = service.handle();
    assert_eq!(handle.graph_version(), 0);
    handle.insert_edge(0, 2, 1).unwrap();
    handle.update_weight(0, 1, 2).unwrap();
    let version = handle.flush_mutations();
    assert_eq!(version, 1, "one quiesce folds the whole pending batch");
    assert_eq!(handle.pending_mutations(), 0);
    // The published snapshot serves the new topology.
    assert_eq!(dist_to(&service, 0, 2), 1);
    assert_eq!(handle.graph().graph().num_edges(), 3);
    service.shutdown();
}

/// Seeded randomized interleaving of mutations and queries against a
/// from-scratch oracle: every query submitted after a `mutate()` returned
/// must be answered on a graph containing that mutation, so Dijkstra over a
/// mirror of the mutation history is the exact expected answer.
#[test]
fn randomized_mutate_query_interleaving_matches_from_scratch_oracle() {
    const N: usize = 48;
    for (case, &threads) in [1usize, 4].iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(0x5EED + case as u64);
        let mut mirror: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for _ in 0..3 * N {
            let u = rng.gen_range(0..N as u32);
            let v = rng.gen_range(0..N as u32);
            if u == v {
                continue;
            }
            mirror.insert((u, v), rng.gen_range(1u32..12));
        }
        let initial: Vec<_> = mirror.iter().map(|(&(u, v), &w)| (u, v, w)).collect();

        let service = service_over(&initial, N, threads);
        let handle = service.handle();

        for step in 0..120 {
            if rng.gen_bool(0.4) {
                // Mutate, mirroring the store's replay semantics.
                let u = rng.gen_range(0..N as u32);
                let v = rng.gen_range(0..N as u32);
                if u == v {
                    continue;
                }
                match rng.gen_range(0u8..3) {
                    0 => {
                        let w: Weight = rng.gen_range(1..12);
                        handle.insert_edge(u, v, w).unwrap();
                        mirror.insert((u, v), w);
                    }
                    1 => {
                        handle.delete_edge(u, v).unwrap();
                        mirror.remove(&(u, v));
                    }
                    _ => {
                        let w: Weight = rng.gen_range(1..12);
                        handle.update_weight(u, v, w).unwrap();
                        mirror.insert((u, v), w);
                    }
                }
            } else {
                // Query: answered on a version ≥ every mutation logged above.
                let source = rng.gen_range(0..N as u32);
                let got = handle.submit_sssp(source).unwrap().wait().unwrap();
                let edges: Vec<_> = mirror.iter().map(|(&(u, v), &w)| (u, v, w)).collect();
                let oracle = CsrGraph::from_sorted_edges(N, &edges, true);
                assert_eq!(
                    got.try_sssp().unwrap(),
                    &fg_seq::dijkstra::dijkstra(&oracle, source).dist,
                    "threads={threads} step={step} source={source}: wrong or stale answer"
                );
            }
        }
        service.shutdown();
    }
}
