//! Service-level acceptance for heterogeneous multi-kernel runs: cohorts of
//! *different* kernels waiting in the same batch window consolidate into
//! **one** engine run (`BatchRecord::kernels_in_run >= 2`), every ticket
//! still gets exactly the result a direct serial engine run would produce,
//! and `max_kernels_per_run: 1` restores the one-cohort-per-run behaviour.

use std::sync::Arc;
use std::time::Duration;

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, AdjacencyView, CsrGraph, Dist, VertexId};
use fg_service::{
    ForkGraphService, InstantiatedKernel, ParamError, Query, QueryParams, ServiceConfig,
};
use forkgraph_core::{erase, EngineConfig, ForkGraphEngine, FppKernel};

fn shared_graph(seed: u64) -> Arc<PartitionedGraph> {
    let g = gen::erdos_renyi(350, 2800, seed).with_random_weights(8, seed);
    Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
    ))
}

/// A window long enough that every submission below lands in one batch even
/// on a heavily loaded 1-core CI box.
fn consolidating_config() -> ServiceConfig {
    ServiceConfig {
        batch_window: Duration::from_millis(500),
        cache_capacity: 0, // every query must demonstrably reach the engine
        ..ServiceConfig::default()
    }
}

/// Acceptance criterion: two different-kernel cohorts share one run and all
/// tickets match direct serial oracles.
#[test]
fn different_kernel_cohorts_consolidate_into_one_run() {
    let pg = shared_graph(211);
    let service =
        ForkGraphService::start(Arc::clone(&pg), EngineConfig::default(), consolidating_config());
    let handle = service.handle();

    let sssp_sources: Vec<VertexId> = vec![3, 77, 150, 201];
    let bfs_sources: Vec<VertexId> = vec![9, 42, 111];
    let sssp_tickets: Vec<_> = sssp_sources
        .iter()
        .map(|&s| handle.submit_query(Query::kernel("sssp").source(s)).unwrap())
        .collect();
    let bfs_tickets: Vec<_> = bfs_sources
        .iter()
        .map(|&s| handle.submit_query(Query::kernel("bfs").source(s)).unwrap())
        .collect();

    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    for (&source, ticket) in sssp_sources.iter().zip(&sssp_tickets) {
        let result = ticket.wait().unwrap();
        assert_eq!(
            result.as_sssp().unwrap(),
            &engine.run_sssp(&[source]).per_query[0],
            "sssp source {source}"
        );
    }
    for (&source, ticket) in bfs_sources.iter().zip(&bfs_tickets) {
        let result = ticket.wait().unwrap();
        assert_eq!(
            result.as_bfs().unwrap(),
            &engine.run_bfs(&[source]).per_query[0],
            "bfs source {source}"
        );
    }

    let records = service.batch_records();
    let metrics = service.metrics();
    service.shutdown();

    assert!(
        records.iter().any(|r| r.kernels_in_run == 2 && r.batch_size == 7),
        "both cohorts should share one run: {records:?}"
    );
    assert!(metrics.mixed_runs >= 1, "mixed run counted: {metrics:?}");
    assert!(metrics.mixed_run_rate() > 0.0);
}

/// `max_kernels_per_run: 1` pins the pre-multi behaviour: every record is a
/// single-kernel run and the mixed-run rate stays zero.
#[test]
fn max_kernels_per_run_one_disables_cross_kernel_consolidation() {
    let pg = shared_graph(223);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig { max_kernels_per_run: 1, ..consolidating_config() },
    );
    let handle = service.handle();

    let tickets: Vec<_> = (0..3u32)
        .flat_map(|i| {
            [
                handle.submit_query(Query::kernel("sssp").source(i * 31)).unwrap(),
                handle.submit_query(Query::kernel("bfs").source(i * 17)).unwrap(),
            ]
        })
        .collect();
    for ticket in &tickets {
        ticket.wait().unwrap();
    }

    let records = service.batch_records();
    let metrics = service.metrics();
    service.shutdown();
    assert!(!records.is_empty());
    assert!(
        records.iter().all(|r| r.kernels_in_run == 1),
        "no run may mix cohorts at max_kernels_per_run = 1: {records:?}"
    );
    assert_eq!(metrics.mixed_runs, 0);
    assert_eq!(metrics.mixed_run_rate(), 0.0);
}

/// A kernel defined entirely in this test: per-hop bounded distances
/// (`state[v * (k+1) + h]` = best distance to `v` over ≤ `h` edges). A
/// monotone min-relaxation over the (vertex, hop) product graph, so every
/// schedule — solo or mixed — reaches the same fixpoint.
struct HopTableKernel {
    k: u32,
}

impl FppKernel for HopTableKernel {
    type Value = (Dist, u32);
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "hop-limit"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![Dist::MAX; graph.num_vertices() * (self.k as usize + 1)]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, forkgraph_core::Priority) {
        ((0, 0), 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        (dist, hops): Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, forkgraph_core::Priority),
    ) -> u64 {
        let stride = self.k as usize + 1;
        let base = vertex as usize * stride;
        if dist >= state[base + hops as usize] {
            return 0;
        }
        for h in hops as usize..stride {
            if dist < state[base + h] {
                state[base + h] = dist;
            }
        }
        if hops == self.k {
            return 0;
        }
        let mut edges = 0;
        for (t, w) in graph.out_edges(vertex) {
            edges += 1;
            let nd = dist + w as Dist;
            if nd < state[t as usize * stride + hops as usize + 1] {
                emit(t, (nd, hops + 1), nd);
            }
        }
        edges
    }
}

/// Per-hop Bellman-Ford oracle for [`HopTableKernel`]: `dp[v*(k+1)+h]` is
/// the best distance to `v` over ≤ `h` edges.
fn hop_table_oracle(graph: &CsrGraph, source: VertexId, k: u32) -> Vec<Dist> {
    let n = graph.num_vertices();
    let stride = k as usize + 1;
    let mut dp = vec![Dist::MAX; n * stride];
    dp[source as usize * stride] = 0;
    for h in 1..stride {
        for v in 0..n {
            dp[v * stride + h] = dp[v * stride + h - 1];
        }
        for u in 0..n as u32 {
            let du = dp[u as usize * stride + h - 1];
            if du == Dist::MAX {
                continue;
            }
            for (t, w) in graph.out_edges(u) {
                let nd = du + w as Dist;
                if nd < dp[t as usize * stride + h] {
                    dp[t as usize * stride + h] = nd;
                }
            }
        }
    }
    dp
}

/// A runtime-registered custom kernel consolidates with a built-in cohort
/// into one heterogeneous run — the open-registry and shared-pass features
/// compose.
#[test]
fn registered_custom_kernel_shares_a_run_with_builtins() {
    let pg = shared_graph(227);
    let service =
        ForkGraphService::start(Arc::clone(&pg), EngineConfig::default(), consolidating_config());
    let handle = service.handle();
    handle
        .register_kernel("hop-limit", |params: &QueryParams| {
            params.ensure_known(&["hops"])?;
            let hops = params.u64_or("hops", 3)? as u32;
            if hops == 0 {
                return Err(ParamError::new("parameter \"hops\" must be positive"));
            }
            Ok(InstantiatedKernel::new(
                erase(HopTableKernel { k: hops }),
                QueryParams::new().with("hops", u64::from(hops)),
            ))
        })
        .unwrap();

    let custom_sources: Vec<VertexId> = vec![5, 60];
    let bfs_sources: Vec<VertexId> = vec![11, 88];
    let custom_tickets: Vec<_> = custom_sources
        .iter()
        .map(|&s| handle.submit_query(Query::kernel("hop-limit").source(s)).unwrap())
        .collect();
    let bfs_tickets: Vec<_> = bfs_sources
        .iter()
        .map(|&s| handle.submit_query(Query::kernel("bfs").source(s)).unwrap())
        .collect();

    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    for (&source, ticket) in custom_sources.iter().zip(&custom_tickets) {
        let result = ticket.wait().unwrap();
        let state = result.downcast_ref::<Vec<Dist>>().expect("hop-limit state");
        assert_eq!(state, &hop_table_oracle(pg.graph(), source, 3), "custom source {source}");
    }
    for (&source, ticket) in bfs_sources.iter().zip(&bfs_tickets) {
        let result = ticket.wait().unwrap();
        assert_eq!(result.as_bfs().unwrap(), &engine.run_bfs(&[source]).per_query[0]);
    }

    let records = service.batch_records();
    service.shutdown();
    assert!(
        records.iter().any(|r| r.kernels_in_run == 2 && r.batch_size == 4),
        "custom + builtin cohorts should share one run: {records:?}"
    );
}
