//! Stress tests for adaptive per-batch worker sizing and pool lifecycle.
//!
//! Bursty submitters — 1-query and 64-query cohorts interleaved — drive a
//! service whose engine cap is 8 workers. Three properties:
//!
//! 1. **Correctness under burstiness**: every answer matches a direct
//!    serial single-query engine run.
//! 2. **The sizing policy is actually applied**: every dispatched batch's
//!    recorded worker count equals
//!    [`fg_service::adaptive::effective_workers`] for its size, singleton
//!    batches ran serially, and large batches fanned out.
//! 3. **Shutdown with in-flight dispatched runs** neither deadlocks nor
//!    leaks pool threads — the process thread count returns to its
//!    pre-service baseline (Linux-only assertion).

use std::sync::Arc;
use std::time::Duration;

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_service::adaptive::effective_workers;
use fg_service::{ForkGraphService, QuerySpec, ServiceConfig, ServiceError};
use forkgraph_core::{EngineConfig, ExecutorMode, ForkGraphEngine};

const WORKER_CAP: usize = 8;
const PARTITIONS: usize = 16;

fn serving_graph(seed: u64) -> Arc<PartitionedGraph> {
    let graph = gen::rmat(9, 6, seed).with_random_weights(8, seed);
    Arc::new(PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, PARTITIONS),
    ))
}

/// Threads of this process, from `/proc/self/status` (Linux).
#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

#[test]
fn bursty_cohorts_get_correct_results_and_policy_sized_batches() {
    let pg = serving_graph(311);
    let n = pg.graph().num_vertices() as u32;
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        // Pin pool mode so the test is identical across the CI executor
        // matrix; the cap (not the per-batch count) is what we configure.
        EngineConfig::default().with_threads(WORKER_CAP).with_executor(ExecutorMode::Pool),
        ServiceConfig {
            batch_window: Duration::from_millis(2),
            max_batch_size: 64,
            max_queue_depth: 4096,
            cache_capacity: 0, // every query must reach the engine
            // One cohort per run: this test audits the *per-cohort* sizing
            // regimes, so singleton BFS batches must not consolidate into
            // the SSSP bursts (multi-cohort runs are covered by
            // tests/multi_kernel_service.rs).
            max_kernels_per_run: 1,
        },
    );

    // Interleaved bursty load: "singleton" submitters send one BFS and wait
    // (forcing 1-query batches), "burst" submitters enqueue 64 SSSP tickets
    // at once (forcing large same-key cohorts).
    const ROUNDS: usize = 4;
    const BURST: usize = 64;
    let answers: Vec<(QuerySpec, fg_service::QueryResult)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..2usize {
            let handle = service.handle();
            handles.push(scope.spawn(move || {
                let mut got = Vec::new();
                for round in 0..ROUNDS {
                    let source = ((s * 131 + round * 17) as u32 + 1) % n;
                    let spec = QuerySpec::Bfs { source };
                    let result = handle.submit(spec).unwrap().wait().unwrap();
                    got.push((spec, (*result).clone()));
                    // Give the batcher a beat so singleton batches stay
                    // singletons instead of riding a burst's window.
                    std::thread::sleep(Duration::from_millis(4));
                }
                got
            }));
        }
        for s in 0..2usize {
            let handle = service.handle();
            handles.push(scope.spawn(move || {
                let mut got = Vec::new();
                for round in 0..ROUNDS {
                    let specs: Vec<QuerySpec> = (0..BURST)
                        .map(|i| QuerySpec::Sssp {
                            source: ((s * 7919 + round * 613 + i * 37) as u32) % n,
                        })
                        .collect();
                    let tickets: Vec<_> = specs
                        .iter()
                        .map(|&spec| handle.submit(spec).expect("queue is deep enough"))
                        .collect();
                    for (spec, ticket) in specs.into_iter().zip(tickets) {
                        got.push((spec, (*ticket.wait().unwrap()).clone()));
                    }
                }
                got
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let records = service.batch_records();
    let pool_metrics = service.pool_metrics().expect("parallel service has a pool");
    service.shutdown();

    // 1. Correctness: every answer equals a direct serial engine run.
    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    for (spec, result) in &answers {
        match *spec {
            QuerySpec::Sssp { source } => {
                assert_eq!(result.as_sssp().unwrap(), &engine.run_sssp(&[source]).per_query[0]);
            }
            QuerySpec::Bfs { source } => {
                assert_eq!(result.as_bfs().unwrap(), &engine.run_bfs(&[source]).per_query[0]);
            }
            _ => unreachable!("only sssp/bfs are generated"),
        }
    }

    // 2. Every dispatched batch was sized exactly by the policy function.
    assert!(!records.is_empty());
    for record in &records {
        assert_eq!(
            record.workers as usize,
            effective_workers(record.batch_size as usize, PARTITIONS, WORKER_CAP),
            "batch of {} queries sized off-policy: {record:?}",
            record.batch_size
        );
    }
    // Burstiness actually produced both regimes: serial singletons and
    // fanned-out large cohorts (a 64-query batch must use the full cap).
    assert!(
        records.iter().any(|r| r.batch_size <= 2 && r.workers == 1),
        "no small batch ran serially: {records:?}"
    );
    assert!(
        records.iter().any(|r| r.batch_size >= 16 && r.workers as usize == WORKER_CAP),
        "no large batch used the full worker cap: {records:?}"
    );
    // And the parallel batches actually went through the persistent pool.
    assert!(pool_metrics.dispatches > 0, "no batch dispatched onto the pool: {pool_metrics:?}");
    assert_eq!(pool_metrics.threads_spawned, WORKER_CAP as u64);
}

#[test]
fn shutdown_with_inflight_dispatched_runs_neither_deadlocks_nor_leaks_threads() {
    #[cfg(target_os = "linux")]
    let baseline_threads = os_thread_count();

    for round in 0..3u64 {
        let pg = serving_graph(1000 + round);
        let n = pg.graph().num_vertices() as u32;
        let service = ForkGraphService::start(
            Arc::clone(&pg),
            EngineConfig::default().with_threads(WORKER_CAP).with_executor(ExecutorMode::Pool),
            ServiceConfig {
                batch_window: Duration::from_millis(1),
                max_batch_size: 64,
                max_queue_depth: 4096,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        // Enqueue a deep backlog of large cohorts, then shut down while the
        // batcher has a dispatched run in flight on the pool.
        let tickets: Vec<_> = (0..256u32)
            .map(|i| handle.submit(QuerySpec::Sssp { source: (i * 193) % n }).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(3));
        service.shutdown();
        // Every admitted ticket resolves: flushed result or typed shutdown
        // error — never a hang.
        let mut resolved = 0usize;
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => resolved += 1,
                Err(ServiceError::ShuttingDown) => {}
                Err(e) => panic!("round {round}: unexpected error {e}"),
            }
        }
        assert!(resolved > 0, "round {round}: shutdown flushed nothing");
    }

    // 3. No leaked pool/batcher threads: the process returns to its
    //    pre-service thread count. (Joined threads leave /proc immediately;
    //    the retry loop only covers scheduler lag.)
    #[cfg(target_os = "linux")]
    {
        let mut now = os_thread_count();
        for _ in 0..50 {
            if now <= baseline_threads {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            now = os_thread_count();
        }
        assert!(
            now <= baseline_threads,
            "thread count did not return to baseline: {now} > {baseline_threads}"
        );
    }
}
