//! Acceptance test for traced service runs: a burst of queries through a
//! traced [`ForkGraphService`] over a multi-worker pool must yield (a) a
//! parseable Chrome trace whose flow arrows connect submit → batch → resolve
//! per ticket, and (b) a raw event stream in which every ticket's
//! Submit → Enqueue → JoinBatch → Resolve chain is complete, causally
//! ordered, and tied to a batch that actually began and ended.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_service::{EdgeMutation, ForkGraphService, Query, ServiceConfig};
use fg_trace::{chrome, EventKind, TraceSink};
use forkgraph_core::{EngineConfig, ExecutorMode};

const QUERIES: u32 = 32;
const WORKERS: usize = 3;

/// One ticket's lifecycle, reconstructed from the raw event stream.
#[derive(Default)]
struct Chain {
    submit_nanos: Option<u64>,
    enqueue_nanos: Option<u64>,
    join_nanos: Option<u64>,
    join_batch: Option<u32>,
    resolve_nanos: Option<u64>,
    resolve_batch: Option<u32>,
}

#[test]
fn traced_service_run_produces_connected_chrome_trace_and_event_chains() {
    let g = gen::rmat(10, 6, 99).with_random_weights(8, 99);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
    ));
    let n = g.num_vertices() as u32;

    let sink = TraceSink::new();
    let service = ForkGraphService::start_traced(
        Arc::clone(&pg),
        // Pinned: the acceptance criterion is a service run over >= 2 engine
        // worker threads, independent of the FORKGRAPH_EXECUTOR leg.
        EngineConfig::default().with_threads(WORKERS).with_executor(ExecutorMode::Pool),
        ServiceConfig {
            batch_window: Duration::from_millis(1),
            max_batch_size: 64,
            max_queue_depth: 256,
            // No result cache: every ticket must travel the full
            // Submit -> Enqueue -> JoinBatch -> Resolve chain.
            cache_capacity: 0,
            max_kernels_per_run: 4,
        },
        Arc::clone(&sink),
    );

    let handle = service.handle();
    let tickets: Vec<_> = (0..QUERIES)
        .map(|i| {
            let source = (i * 61) % n;
            let query = if i % 2 == 0 {
                Query::kernel("sssp").source(source)
            } else {
                Query::kernel("bfs").source(source)
            };
            handle.submit_query(query).expect("submit")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("service answered");
    }

    let trace_handle = service.trace_handle().expect("started traced");
    let json = trace_handle.chrome_trace();
    let exposition = trace_handle.exposition();
    service.shutdown();

    // --- Chrome trace: parses, and every finished flow is connected. ---
    let chrome_events = chrome::parse(&json).expect("chrome trace parses");
    assert!(!chrome_events.is_empty());
    assert!(chrome_events.iter().any(|e| e.ph == "M"), "thread metadata names the lanes");
    let mut flows: HashMap<u64, Vec<&chrome::ChromeEvent>> = HashMap::new();
    for e in chrome_events.iter().filter(|e| matches!(e.ph.as_str(), "s" | "t" | "f")) {
        flows.entry(e.id.expect("flow events carry an id")).or_default().push(e);
    }
    let finished =
        flows.values().filter(|steps| steps.iter().any(|e| e.ph == "f")).collect::<Vec<_>>();
    assert_eq!(finished.len(), QUERIES as usize, "one finished flow per ticket");
    for steps in finished {
        let start = steps.iter().find(|e| e.ph == "s").expect("flow has a start");
        let step = steps.iter().find(|e| e.ph == "t").expect("flow has a batch step");
        let finish = steps.iter().find(|e| e.ph == "f").expect("flow finishes");
        assert!(start.ts <= step.ts && step.ts <= finish.ts, "flow arrows point forward");
        assert_ne!(start.tid, step.tid, "submit and batch live on different threads");
    }

    // --- Raw events: complete, ordered chains tied to real batches. ---
    let events: Vec<_> = sink.merged_events().into_iter().map(|(_, e)| e).collect();
    let mut chains: HashMap<u32, Chain> = HashMap::new();
    let mut batches: HashMap<u32, (Option<u64>, Option<u64>, u32)> = HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::Submit => chains.entry(e.a).or_default().submit_nanos = Some(e.nanos),
            EventKind::Enqueue => chains.entry(e.a).or_default().enqueue_nanos = Some(e.nanos),
            EventKind::JoinBatch => {
                let chain = chains.entry(e.a).or_default();
                chain.join_nanos = Some(e.nanos);
                chain.join_batch = Some(e.b);
                batches.entry(e.b).or_default().2 += 1;
            }
            EventKind::Resolve => {
                let chain = chains.entry(e.a).or_default();
                chain.resolve_nanos = Some(e.nanos);
                chain.resolve_batch = Some(e.b);
            }
            EventKind::BatchBegin => batches.entry(e.a).or_default().0 = Some(e.nanos),
            EventKind::BatchEnd => batches.entry(e.a).or_default().1 = Some(e.nanos),
            EventKind::CacheHit => panic!("cache_capacity 0 must not produce cache hits"),
            _ => {}
        }
    }
    assert_eq!(chains.len(), QUERIES as usize, "one chain per submitted ticket");
    for (tid, chain) in &chains {
        let submit = chain.submit_nanos.unwrap_or_else(|| panic!("ticket {tid}: no Submit"));
        let enqueue = chain.enqueue_nanos.unwrap_or_else(|| panic!("ticket {tid}: no Enqueue"));
        let join = chain.join_nanos.unwrap_or_else(|| panic!("ticket {tid}: no JoinBatch"));
        let resolve = chain.resolve_nanos.unwrap_or_else(|| panic!("ticket {tid}: no Resolve"));
        assert!(
            submit <= enqueue && enqueue <= join && join <= resolve,
            "ticket {tid}: chain is causally ordered"
        );
        assert_eq!(
            chain.join_batch, chain.resolve_batch,
            "ticket {tid}: resolved by the batch it joined"
        );
        let batch = chain.join_batch.expect("joined a batch");
        let (begin, end, joined) = batches[&batch];
        let begin = begin.unwrap_or_else(|| panic!("batch {batch}: no BatchBegin"));
        let end = end.unwrap_or_else(|| panic!("batch {batch}: no BatchEnd"));
        assert!(
            join <= begin && begin <= end && resolve >= begin,
            "batch {batch} brackets its run"
        );
        assert!(joined > 0);
    }

    // The engine runs inside the batches really were multi-worker: the batch
    // spans enclose RunBegin events advertising the pinned worker count.
    assert!(
        events.iter().any(|e| e.kind == EventKind::RunBegin && e.b == WORKERS as u32),
        "engine runs under the service report {WORKERS} workers"
    );

    // --- Exposition mirrors the same run. ---
    assert!(exposition.contains("fg_service_submitted_total 32"), "{exposition}");
    assert!(exposition.contains("fg_trace_events_retained"), "{exposition}");
    assert!(!exposition.contains("NaN"), "{exposition}");
}

/// The epoch lifecycle events the MVCC layer emits must reconcile exactly
/// with the epoch counters the service exposes: every pin released, one
/// advance per published epoch, one fold event per advance, and per-advance
/// rematerialized/shared payloads summing to the counter totals.
#[test]
fn epoch_trace_events_reconcile_with_epoch_counters() {
    let g = gen::rmat(9, 6, 17).with_random_weights(8, 17);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ));
    let n = g.num_vertices() as u32;

    let sink = TraceSink::new();
    let service = ForkGraphService::start_traced(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig {
            batch_window: Duration::from_millis(1),
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
        Arc::clone(&sink),
    );
    let handle = service.handle();

    // Four mutate → query rounds; each must eventually fold into a new epoch.
    let mut advanced = 0u64;
    for round in 0..4u32 {
        handle.mutate(EdgeMutation::Insert { u: round, v: (round + 7) % n, w: 3 }).expect("mutate");
        handle
            .submit_query(Query::kernel("sssp").source(round % n))
            .expect("submit")
            .wait()
            .expect("service answered");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = handle.metrics();
            if m.epochs_advanced > advanced {
                advanced = m.epochs_advanced;
                break;
            }
            assert!(Instant::now() < deadline, "round {round}: the mutation never folded");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let metrics = handle.metrics();
    let trace_handle = service.trace_handle().expect("started traced");
    let json = trace_handle.chrome_trace();
    // Shutdown first: the batcher exits and drops any pins it still holds,
    // so the pin/unpin ledger below must balance exactly.
    service.shutdown();

    let events: Vec<_> = sink.merged_events().into_iter().map(|(_, e)| e).collect();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
    let pins = count(EventKind::EpochPin);
    let unpins = count(EventKind::EpochUnpin);
    let advances = count(EventKind::EpochAdvance);
    let folds = count(EventKind::DeltaFold);

    assert!(pins > 0, "dispatched runs pin epochs");
    assert_eq!(pins, unpins, "every pin must be released");
    assert_eq!(advances, metrics.epochs_advanced, "one EpochAdvance per published epoch");
    assert_eq!(folds, advances, "one DeltaFold per advance");
    assert!(metrics.epochs_advanced >= 4, "each round folded at least once");

    // Per-advance payloads (b = rematerialized, c = shared) sum to the
    // counters the service mirrors from the epoch table.
    let (remat, shared) = events
        .iter()
        .filter(|e| e.kind == EventKind::EpochAdvance)
        .fold((0u64, 0u64), |(r, s), e| (r + e.b as u64, s + e.c as u64));
    assert_eq!(remat, metrics.partitions_rematerialized);
    assert_eq!(shared, metrics.partitions_shared);
    assert!(remat >= advances, "every advance rebuilt at least one dirty partition");
    assert!(shared > 0, "single-edge folds must share clean partitions");

    // The Chrome export names the new instants so the events are visible in
    // a trace viewer, not just in the raw stream.
    for name in ["epoch_pin", "epoch_unpin", "epoch_advance", "delta_fold"] {
        assert!(json.contains(name), "chrome export carries {name}: {json}");
    }
}
