//! Stress test: concurrent fg-service submitters over the **inter-partition
//! parallel engine**.
//!
//! Proves two things the serial-engine property test cannot:
//!
//! 1. **Batching equivalence survives parallel execution** — with the batcher
//!    serving every micro-batch through a multi-worker
//!    `ForkGraphEngine` (`EngineConfig::num_threads > 1`), every answer is
//!    still byte-identical to a direct serial single-query run (SSSP/BFS are
//!    schedule-invariant, so consolidation *and* parallel execution must both
//!    be invisible to clients).
//! 2. **Shutdown never deadlocks** — services are shut down while submitters
//!    are still racing, both via explicit `shutdown()` flushes and via `drop`,
//!    and every ticket resolves (a result or a typed error, never a hang).

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, VertexId};
use fg_service::{ForkGraphService, QuerySpec, ServiceConfig, ServiceError};
use forkgraph_core::{EngineConfig, ForkGraphEngine};

fn parallel_graph(seed: u64, parts: usize) -> Arc<PartitionedGraph> {
    let graph = gen::rmat(9, 6, seed).with_random_weights(8, seed);
    Arc::new(PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
    ))
}

#[test]
fn concurrent_submitters_over_parallel_engine_match_direct_serial_runs() {
    let pg = parallel_graph(41, 16);
    let n = pg.graph().num_vertices() as u32;
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default().with_threads(4),
        ServiceConfig {
            batch_window: Duration::from_millis(1),
            max_batch_size: 32,
            max_queue_depth: 4096,
            cache_capacity: 0, // every query must traverse the parallel engine
            ..ServiceConfig::default()
        },
    );

    const SUBMITTERS: usize = 6;
    const QUERIES: usize = 12;
    let answers: Vec<(QuerySpec, fg_service::QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|s| {
                let handle = service.handle();
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xACE + s as u64);
                    let mut got = Vec::new();
                    for _ in 0..QUERIES {
                        let source: VertexId = rng.gen_range(0..n);
                        let spec = if rng.gen_bool(0.5) {
                            QuerySpec::Sssp { source }
                        } else {
                            QuerySpec::Bfs { source }
                        };
                        let result = handle.submit(spec).unwrap().wait().unwrap();
                        got.push((spec, (*result).clone()));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let metrics = service.metrics();
    service.shutdown();
    assert_eq!(metrics.submitted, (SUBMITTERS * QUERIES) as u64);
    assert!(
        metrics.max_batch_occupancy > 1,
        "stress load should consolidate concurrent queries into shared batches"
    );

    // Oracle: the serial engine, one query at a time.
    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    for (spec, result) in answers {
        match spec {
            QuerySpec::Sssp { source } => {
                assert_eq!(result.as_sssp().unwrap(), &engine.run_sssp(&[source]).per_query[0]);
            }
            QuerySpec::Bfs { source } => {
                assert_eq!(result.as_bfs().unwrap(), &engine.run_bfs(&[source]).per_query[0]);
            }
            _ => unreachable!("only sssp/bfs are generated"),
        }
    }
}

#[test]
fn shutdown_under_racing_submitters_never_deadlocks_or_drops_tickets() {
    for round in 0..4u64 {
        let pg = parallel_graph(97 + round, 12);
        let n = pg.graph().num_vertices() as u32;
        let service = ForkGraphService::start(
            Arc::clone(&pg),
            EngineConfig::default().with_threads(4),
            ServiceConfig {
                batch_window: Duration::from_millis(2),
                max_batch_size: 16,
                max_queue_depth: 256,
                cache_capacity: 64,
                ..ServiceConfig::default()
            },
        );

        std::thread::scope(|scope| {
            let submitters: Vec<_> = (0..4)
                .map(|s| {
                    let handle = service.handle();
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(round * 100 + s);
                        let mut resolved = 0usize;
                        loop {
                            let source: VertexId = rng.gen_range(0..n);
                            match handle.submit(QuerySpec::Bfs { source }) {
                                Ok(ticket) => {
                                    // Every ticket must resolve even when the
                                    // service shuts down mid-flight.
                                    match ticket.wait() {
                                        Ok(_) => resolved += 1,
                                        Err(ServiceError::ShuttingDown) => break,
                                        Err(e) => panic!("unexpected error: {e}"),
                                    }
                                }
                                Err(ServiceError::ShuttingDown) => break,
                                Err(ServiceError::Saturated { .. }) => {
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        }
                        resolved
                    })
                })
                .collect();

            // Let the submitters race the batcher, then pull the plug.
            std::thread::sleep(Duration::from_millis(20));
            service.shutdown();
            let resolved: usize = submitters.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(resolved > 0, "round {round}: no query resolved before shutdown");
        });
    }
}

#[test]
fn dropping_a_parallel_service_with_queued_work_joins_cleanly() {
    let pg = parallel_graph(7, 8);
    let n = pg.graph().num_vertices() as u32;
    let service = ForkGraphService::with_parallel_defaults(Arc::clone(&pg), 3);
    let handle = service.handle();
    let tickets: Vec<_> =
        (0..24).map(|i| handle.submit(QuerySpec::Sssp { source: i % n }).unwrap()).collect();
    // Drop with work still queued: Drop flushes admitted queries, so every
    // ticket resolves to a result or ShuttingDown — nothing hangs.
    drop(service);
    let mut ok = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => ok += 1,
            Err(ServiceError::ShuttingDown) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(ok > 0, "drop-flush should answer already-admitted queries");
}
