//! End-to-end tests of the serving layer: consolidation of concurrent
//! submitters, admission-control backpressure, result caching, mixed-kind
//! batching, and shutdown flushing.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, VertexId};
use fg_seq::ppr::PprConfig;
use fg_service::{ForkGraphService, Query, QueryResult, QuerySpec, ServiceConfig, ServiceError};
use forkgraph_core::{EngineConfig, ForkGraphEngine};

fn shared_graph(seed: u64) -> Arc<PartitionedGraph> {
    let g = gen::erdos_renyi(400, 3200, seed).with_random_weights(8, seed);
    Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
    ))
}

/// Acceptance criterion: ≥2 concurrent submitters execute in a single
/// consolidated engine run (batch occupancy > 1) and each gets the result a
/// direct one-query engine run would produce.
#[test]
fn concurrent_submitters_share_one_engine_run() {
    let pg = shared_graph(71);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig {
            // A generous window so both submitters land in the same batch
            // regardless of scheduling jitter; caching off so both queries
            // demonstrably reach the engine.
            batch_window: Duration::from_millis(200),
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );

    let sources: Vec<VertexId> = vec![3, 111, 222, 333];
    let barrier = Arc::new(Barrier::new(sources.len()));
    let results: Vec<(VertexId, Arc<QueryResult>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter()
            .map(|&source| {
                let handle = service.handle();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let result = handle.submit_sssp(source).unwrap().wait().unwrap();
                    (source, result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let metrics = service.metrics();
    assert!(
        metrics.max_batch_occupancy > 1,
        "concurrent submissions should consolidate into one run; occupancy {}",
        metrics.max_batch_occupancy
    );
    assert_eq!(metrics.admitted, sources.len() as u64);
    assert!(metrics.latency_samples >= sources.len() as u64);
    assert!(metrics.latency_p99 >= metrics.latency_p50);

    // Per-submitter results match direct single-query engine runs.
    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    for (source, result) in results {
        let direct = engine.run_sssp(&[source]);
        assert_eq!(result.as_sssp().unwrap(), &direct.per_query[0], "source {source}");
    }
    service.shutdown();
}

/// Acceptance criterion: a saturated queue sheds with a typed error rather
/// than blocking forever.
#[test]
fn saturated_queue_returns_backpressure_error() {
    let pg = shared_graph(73);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig {
            // Long window: the batcher sits in its accumulation phase while
            // we overfill the queue from this thread.
            batch_window: Duration::from_secs(5),
            max_batch_size: 1024,
            max_queue_depth: 3,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    let mut tickets = Vec::new();
    let mut rejected = None;
    // The batcher may have already drained some submissions into its forming
    // batch, so saturation is reached after at most queue_depth + batch
    // in-flight admissions; 64 attempts is far beyond that.
    for source in 0..64u32 {
        match handle.submit_sssp(source) {
            Ok(t) => tickets.push(t),
            Err(e) => {
                rejected = Some(e);
                break;
            }
        }
    }
    let err = rejected.expect("queue of depth 3 must saturate within 64 submissions");
    match err {
        ServiceError::Saturated { queue_depth, capacity } => {
            assert_eq!(capacity, 3);
            assert!(queue_depth >= capacity, "rejection implies a full queue");
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    let metrics = handle.metrics();
    assert!(metrics.rejected >= 1);
    assert!(metrics.max_queue_depth <= 3);

    // Shutdown flushes the admitted backlog; every accepted ticket resolves.
    service.shutdown();
    for t in tickets {
        t.wait().unwrap();
    }
}

#[test]
fn repeated_queries_hit_the_result_cache() {
    let pg = shared_graph(79);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig { batch_window: Duration::from_millis(1), ..ServiceConfig::default() },
    );
    let handle = service.handle();

    let first = handle.query(QuerySpec::Sssp { source: 42 }).unwrap();
    let second = handle.query(QuerySpec::Sssp { source: 42 }).unwrap();
    assert_eq!(first.try_sssp().unwrap(), second.try_sssp().unwrap());
    // The second answer is the same shared allocation, straight from cache.
    assert!(Arc::ptr_eq(&first, &second));

    let metrics = handle.metrics();
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert!((metrics.cache_hit_rate() - 0.5).abs() < 1e-12);

    // A different source is a miss, not a false hit. The builder API shares
    // the cache with the enum shim, so this *would* hit if source matched.
    let third = handle.run_query(Query::kernel("sssp").source(43)).unwrap();
    assert!(!Arc::ptr_eq(&first, &third));
    assert_ne!(first.try_sssp().unwrap(), third.try_sssp().unwrap());
    assert_eq!(handle.metrics().cache_misses, 2, "different source reaches the engine");
    service.shutdown();
}

#[test]
fn mixed_kernels_form_separate_cohorts_with_correct_results() {
    let pg = shared_graph(83);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig {
            batch_window: Duration::from_millis(50),
            cache_capacity: 0,
            // One cohort per run: this test pins the strict-isolation mode
            // (every kernel gets its own engine pass, so even PPR matches a
            // direct serial run byte-for-byte). Cross-kernel consolidation
            // is covered by tests/multi_kernel_service.rs.
            max_kernels_per_run: 1,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    let ppr_config = PprConfig { epsilon: 1e-5, ..PprConfig::default() };
    let t_sssp = handle.submit_sssp(5).unwrap();
    let t_bfs = handle.submit_bfs(6).unwrap();
    let t_ppr = handle.submit_ppr(7, ppr_config).unwrap();
    let sssp = t_sssp.wait().unwrap();
    let bfs = t_bfs.wait().unwrap();
    let ppr = t_ppr.wait().unwrap();

    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    assert_eq!(sssp.as_sssp().unwrap(), &engine.run_sssp(&[5]).per_query[0]);
    assert_eq!(bfs.as_bfs().unwrap(), &engine.run_bfs(&[6]).per_query[0]);
    assert_eq!(ppr.as_ppr().unwrap(), &engine.run_ppr(&[7], &ppr_config).per_query[0]);

    // Three kernels cannot share a run: at least three dispatches.
    assert!(handle.metrics().batches_dispatched >= 3);
    service.shutdown();
}

#[test]
fn out_of_range_sources_are_rejected_and_do_not_wedge_the_service() {
    let pg = shared_graph(101);
    let n = pg.graph().num_vertices();
    let service = ForkGraphService::with_defaults(Arc::clone(&pg));
    let handle = service.handle();

    // Rejected synchronously with a typed error, never reaching the engine.
    let err = handle.submit_sssp(n as VertexId).unwrap_err();
    assert_eq!(err, ServiceError::InvalidSource { source: n as VertexId, num_vertices: n });
    assert_eq!(
        handle.submit_bfs(u32::MAX).unwrap_err(),
        ServiceError::InvalidSource { source: u32::MAX, num_vertices: n }
    );

    // The service keeps serving valid queries afterwards.
    let result = handle.query(QuerySpec::Bfs { source: 0 }).unwrap();
    assert!(result.as_bfs().is_some());
    service.shutdown();
}

#[test]
fn wrong_kernel_accessors_name_the_actual_kernel() {
    let pg = shared_graph(103);
    let service = ForkGraphService::with_defaults(Arc::clone(&pg));
    let handle = service.handle();

    let result = handle.query(QuerySpec::Bfs { source: 4 }).unwrap();
    // Old-style accessor: silent None on kind mismatch.
    assert!(result.as_sssp().is_none());
    // Checked accessor: a typed error that says what the result actually is.
    let err = result.try_sssp().unwrap_err();
    assert_eq!(err.kernel, "bfs");
    assert!(err.to_string().contains("bfs"), "{err}");
    assert!(result.try_bfs().is_ok());

    // Typed tickets surface the same information through ServiceError.
    let ticket = handle.submit_bfs(5).unwrap().typed::<Vec<fg_graph::Dist>>();
    match ticket.wait().unwrap_err() {
        ServiceError::ResultMismatch(mismatch) => assert_eq!(mismatch.kernel, "bfs"),
        other => panic!("expected ResultMismatch, got {other:?}"),
    }
    // The correctly-typed wait on the same class of query succeeds.
    let levels = handle.submit_bfs(5).unwrap().typed::<Vec<u32>>().wait().unwrap();
    assert_eq!(levels[5], 0);
    service.shutdown();
}

#[test]
fn unknown_kernels_and_bad_params_fail_at_submit() {
    let pg = shared_graph(107);
    let service = ForkGraphService::with_defaults(Arc::clone(&pg));
    let handle = service.handle();

    assert_eq!(
        handle.submit_query(Query::kernel("pagerank").source(0)).unwrap_err(),
        ServiceError::UnknownKernel { name: "pagerank".to_string() }
    );
    assert_eq!(
        handle.submit_query(Query::kernel("sssp")).unwrap_err(),
        ServiceError::MissingSource { kernel: "sssp".to_string() }
    );
    match handle.submit_query(Query::kernel("ppr").source(0).param("epsilom", 1e-5)).unwrap_err() {
        ServiceError::InvalidParams { kernel, reason } => {
            assert_eq!(kernel, "ppr");
            assert!(reason.contains("epsilom"), "{reason}");
        }
        other => panic!("expected InvalidParams, got {other:?}"),
    }
    // The service keeps serving after rejections.
    assert!(handle.run_query(Query::kernel("bfs").source(0)).unwrap().try_bfs().is_ok());
    service.shutdown();
}

#[test]
fn submissions_after_shutdown_are_refused() {
    let pg = shared_graph(89);
    let service = ForkGraphService::with_defaults(Arc::clone(&pg));
    let handle = service.handle();
    handle.query(QuerySpec::Bfs { source: 0 }).unwrap();
    service.shutdown();
    assert_eq!(handle.submit_bfs(1).unwrap_err(), ServiceError::ShuttingDown);
}

#[test]
fn wait_timeout_observes_slow_batches_without_losing_results() {
    let pg = shared_graph(97);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default(),
        ServiceConfig { batch_window: Duration::from_millis(150), ..ServiceConfig::default() },
    );
    let handle = service.handle();
    let ticket = handle.submit_bfs(9).unwrap();
    // The batch window is still open: a tiny timeout expires first.
    assert!(ticket.wait_timeout(Duration::from_millis(1)).is_none());
    let result = ticket.wait().unwrap();
    assert!(result.as_bfs().is_some());
    service.shutdown();
}
