//! Acceptance tests of the open-kernel redesign:
//!
//! 1. The four built-in kernels produce **byte-identical** results through
//!    the new registry path (erased dispatch, `Query` builder, enum shim)
//!    versus the pre-redesign direct engine path, in serial, spawn, and
//!    pool executor modes. (PPR is the documented exception in *parallel*
//!    modes: lazy forward-push is non-confluent even serially across
//!    schedules, so there the contract is mass conservation + epsilon-scaled
//!    L1 closeness, exactly as in `parallel_equivalence.rs`.)
//! 2. A kernel defined **only in this test file** — not in any workspace
//!    `src/` — runs end-to-end through service micro-batching, the shared
//!    persistent `WorkerPool`, and the LRU result cache, with results equal
//!    to a direct serial oracle.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, AdjacencyView, CsrGraph, Dist, VertexId, INF_DIST};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use fg_service::{
    ForkGraphService, InstantiatedKernel, ParamError, Query, QueryParams, QuerySpec, ServiceConfig,
};
use forkgraph_core::kernel::FppKernel;
use forkgraph_core::operation::Priority;
use forkgraph_core::{erase, EngineConfig, ExecutorMode, ForkGraphEngine};

fn shared_graph(seed: u64, partitions: usize) -> (CsrGraph, Arc<PartitionedGraph>) {
    let g = gen::erdos_renyi(300, 2200, seed).with_random_weights(8, seed);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, partitions),
    ));
    (g, pg)
}

/// Service-vs-direct equivalence of all four built-ins under one executor
/// mode, driving both the enum shim and the builder API.
fn builtin_equivalence_under(mode: ExecutorMode) {
    let (_, pg) = shared_graph(211, 6);
    let engine_config = EngineConfig::default().with_threads(4).with_executor(mode);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        engine_config,
        ServiceConfig {
            batch_window: Duration::from_millis(20),
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let direct = ForkGraphEngine::new(&pg, EngineConfig::default()); // serial oracle
    let ppr_config = PprConfig { epsilon: 1e-5, ..PprConfig::default() };
    let rw_config = RandomWalkConfig { num_walks: 8, walk_length: 12, restart_prob: 0.0, seed: 5 };

    for source in [0u32, 17, 191] {
        // SSSP: enum shim and builder must be byte-identical to the direct
        // engine result (monotone kernel ⇒ schedule-independent).
        let via_enum = handle.query(QuerySpec::Sssp { source }).unwrap();
        let via_builder = handle.run_query(Query::kernel("sssp").source(source)).unwrap();
        let oracle = direct.run_sssp(&[source]);
        assert_eq!(via_enum.try_sssp().unwrap(), &oracle.per_query[0], "{mode:?} sssp {source}");
        assert!(
            Arc::ptr_eq(&via_enum, &via_builder),
            "{mode:?}: builder query must hit the enum query's cache entry"
        );

        // BFS.
        let bfs = handle.query(QuerySpec::Bfs { source }).unwrap();
        assert_eq!(
            bfs.try_bfs().unwrap(),
            &direct.run_bfs(&[source]).per_query[0],
            "{mode:?} bfs {source}"
        );

        // Random walks: deterministic seeds and purely additive visit
        // counts make the kernel confluent, so results are byte-identical
        // in every mode.
        let rw = handle.submit_random_walk(source, rw_config).unwrap().wait().unwrap();
        assert_eq!(
            rw.try_random_walk().unwrap(),
            &direct.run_random_walks(&[source], &rw_config).per_query[0],
            "{mode:?} random_walk {source}"
        );

        // PPR: byte-identical only under the serial executor (one
        // deterministic schedule on both sides); in parallel modes the
        // kernel itself is non-confluent, so assert the ACL contract.
        let ppr = handle.submit_ppr(source, ppr_config).unwrap().wait().unwrap();
        let ppr_state = ppr.try_ppr().unwrap();
        let oracle_ppr = &direct.run_ppr(&[source], &ppr_config).per_query[0];
        assert!((ppr_state.total_mass() - 1.0).abs() < 1e-9, "{mode:?} ppr {source}");
        if mode == ExecutorMode::Serial {
            assert_eq!(ppr_state, oracle_ppr, "{mode:?} ppr {source}");
        } else {
            let l1: f64 = ppr_state
                .estimate
                .iter()
                .zip(oracle_ppr.estimate.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(l1 < 0.05, "{mode:?} ppr {source}: l1 {l1}");
        }
    }
    service.shutdown();
}

#[test]
fn builtins_are_equivalent_through_the_registry_serial() {
    builtin_equivalence_under(ExecutorMode::Serial);
}

#[test]
fn builtins_are_equivalent_through_the_registry_spawn() {
    builtin_equivalence_under(ExecutorMode::Spawn);
}

#[test]
fn builtins_are_equivalent_through_the_registry_pool() {
    builtin_equivalence_under(ExecutorMode::Pool);
}

#[test]
fn erased_builtins_match_direct_engine_runs_byte_for_byte() {
    // Engine-level half of the acceptance criterion: the erased entry point
    // (`run_dyn`) over each built-in equals the pre-redesign generic call on
    // the same engine — same schedule, so this holds for PPR too.
    let (_, pg) = shared_graph(223, 5);
    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    let sources = [1u32, 40, 222];
    let ppr_config = PprConfig { epsilon: 1e-5, ..PprConfig::default() };
    let rw_config = RandomWalkConfig::default();

    let dyn_sssp = engine.run_dyn(&*erase(forkgraph_core::kernels::SsspKernel), &sources);
    for (erased, direct) in dyn_sssp.per_query.iter().zip(&engine.run_sssp(&sources).per_query) {
        assert_eq!(erased.downcast_ref::<Vec<Dist>>().unwrap(), direct);
    }
    let dyn_bfs = engine.run_dyn(&*erase(forkgraph_core::kernels::BfsKernel), &sources);
    for (erased, direct) in dyn_bfs.per_query.iter().zip(&engine.run_bfs(&sources).per_query) {
        assert_eq!(erased.downcast_ref::<Vec<u32>>().unwrap(), direct);
    }
    let dyn_ppr =
        engine.run_dyn(&*erase(forkgraph_core::kernels::PprKernel::new(ppr_config)), &sources);
    for (erased, direct) in
        dyn_ppr.per_query.iter().zip(&engine.run_ppr(&sources, &ppr_config).per_query)
    {
        assert_eq!(erased.downcast_ref::<forkgraph_core::kernels::PprState>().unwrap(), direct);
    }
    let dyn_rw = engine
        .run_dyn(&*erase(forkgraph_core::kernels::RandomWalkKernel::new(rw_config)), &sources);
    for (erased, direct) in
        dyn_rw.per_query.iter().zip(&engine.run_random_walks(&sources, &rw_config).per_query)
    {
        assert_eq!(erased.downcast_ref::<forkgraph_core::kernels::RwState>().unwrap(), direct);
    }
}

// ---------------------------------------------------------------------------
// A custom kernel defined ONLY here: weighted k-hop shortest distances.
// ---------------------------------------------------------------------------

/// `state[v * (k+1) + h]` = best weighted distance to `v` over paths of at
/// most `h` edges. Min-relaxations on a finite lattice ⇒ one fixpoint
/// regardless of schedule, so parallel results are byte-identical to serial.
struct KHopKernel {
    k: u32,
}

impl FppKernel for KHopKernel {
    type Value = (Dist, u32);
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "khop-test"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![INF_DIST; graph.num_vertices() * (self.k as usize + 1)]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        ((0, 0), 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        (dist, hops): Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        let stride = self.k as usize + 1;
        let base = vertex as usize * stride;
        if dist >= state[base + hops as usize] {
            return 0; // dominated: already reached within `hops` at ≤ dist
        }
        for h in hops as usize..stride {
            if dist < state[base + h] {
                state[base + h] = dist;
            }
        }
        if hops == self.k {
            return 0;
        }
        let mut edges = 0u64;
        for (t, w) in graph.out_edges(vertex) {
            edges += 1;
            let nd = dist + w as Dist;
            if nd < state[t as usize * stride + hops as usize + 1] {
                emit(t, (nd, hops + 1), nd);
            }
        }
        edges
    }
}

/// Serial oracle: k rounds of Bellman-Ford.
fn khop_oracle(graph: &CsrGraph, source: VertexId, k: u32) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut best = vec![INF_DIST; n];
    best[source as usize] = 0;
    for _ in 0..k {
        let previous = best.clone();
        for v in 0..n as u32 {
            if previous[v as usize] == INF_DIST {
                continue;
            }
            for (t, w) in graph.out_edges(v) {
                let nd = previous[v as usize] + w as Dist;
                if nd < best[t as usize] {
                    best[t as usize] = nd;
                }
            }
        }
    }
    best
}

fn khop_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    params.ensure_known(&["k"])?;
    let k = params.u64_or("k", 3)?;
    if k == 0 || k > 64 {
        return Err(ParamError::new(format!("parameter \"k\" must be in 1..=64, got {k}")));
    }
    Ok(InstantiatedKernel::new(erase(KHopKernel { k: k as u32 }), QueryParams::new().with("k", k)))
}

#[test]
fn custom_kernel_runs_through_batching_pool_and_cache() {
    let (g, pg) = shared_graph(227, 6);
    // Pool mode pinned: this test *requires* the persistent WorkerPool, so
    // it must hold on the serial and spawn legs of the CI matrix too.
    let engine_config = EngineConfig::default().with_threads(4).with_executor(ExecutorMode::Pool);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        engine_config,
        ServiceConfig {
            // Generous window so the concurrent burst lands in few batches.
            batch_window: Duration::from_millis(150),
            cache_capacity: 128,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let kernel_id = handle.register_kernel("khop", khop_factory).unwrap();
    assert!(handle.registry().contains("khop"));

    // A concurrent burst of queries with one shared k: they must
    // consolidate into micro-batches and run on the pool.
    let k = 4u64;
    let sources: Vec<VertexId> = (0..16).map(|i| (i * 37) % g.num_vertices() as u32).collect();
    let barrier = Arc::new(Barrier::new(sources.len()));
    let answers: Vec<(VertexId, Arc<Vec<Dist>>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = sources
            .iter()
            .map(|&source| {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let ticket = handle
                        .submit_query(Query::kernel("khop").source(source).param("k", k))
                        .unwrap()
                        .typed::<Vec<Dist>>();
                    (source, ticket.wait().unwrap())
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Results equal the direct serial oracle (k-hop DP), demuxed per source.
    let stride = k as usize + 1;
    for (source, state) in &answers {
        let oracle = khop_oracle(&g, *source, k as u32);
        let served: Vec<Dist> =
            (0..g.num_vertices()).map(|v| state[v * stride + k as usize]).collect();
        assert_eq!(served, oracle, "source {source}");
    }

    // The burst consolidated (micro-batching worked for a kernel the
    // service crates have never heard of)…
    let metrics = handle.metrics();
    assert!(
        metrics.max_batch_occupancy > 1,
        "custom-kernel queries consolidated; occupancy {}",
        metrics.max_batch_occupancy
    );
    // …ran on the shared persistent pool with an adaptively sized crew…
    let pool = service.pool_metrics().expect("pool-mode service has a pool");
    assert!(pool.dispatches >= 1, "custom kernel batches dispatched onto the WorkerPool");
    let records = service.batch_records();
    assert!(
        records.iter().any(|r| r.kernel_id == kernel_id.as_u64() && r.workers > 1),
        "some custom-kernel batch ran parallel: {records:?}"
    );
    // …and populated the result cache: a repeat is served pointer-shared.
    let source = sources[0];
    let first = answers.iter().find(|(s, _)| *s == source).unwrap();
    let again = handle.run_query(Query::kernel("khop").source(source).param("k", k)).unwrap();
    assert!(handle.metrics().cache_hits >= 1, "repeat hit the LRU cache");
    let again_state: Arc<Vec<Dist>> = (*again).clone().try_into_state().unwrap();
    assert!(Arc::ptr_eq(&again_state, &first.1), "cache hit shares the original state allocation");

    // Different k forms a different cohort/cache entry (no false sharing).
    let other = handle.run_query(Query::kernel("khop").source(source).param("k", 1u64)).unwrap();
    let other_state = other.try_state::<Vec<Dist>>().unwrap();
    let oracle1 = khop_oracle(&g, source, 1);
    let served1: Vec<Dist> = (0..g.num_vertices()).map(|v| other_state[v * 2 + 1]).collect();
    assert_eq!(served1, oracle1);
    service.shutdown();
}

#[test]
fn custom_kernel_is_byte_identical_across_modes_at_engine_level() {
    let (_, pg) = shared_graph(229, 8);
    let kernel = erase(KHopKernel { k: 3 });
    let sources = [2u32, 90, 250];
    let serial =
        ForkGraphEngine::new(&pg, EngineConfig::default().with_executor(ExecutorMode::Serial))
            .run_dyn(&*kernel, &sources);
    for mode in [ExecutorMode::Spawn, ExecutorMode::Pool] {
        let parallel =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(4).with_executor(mode))
                .run_dyn(&*kernel, &sources);
        for (a, b) in serial.per_query.iter().zip(&parallel.per_query) {
            assert_eq!(
                a.downcast_ref::<Vec<Dist>>().unwrap(),
                b.downcast_ref::<Vec<Dist>>().unwrap(),
                "{mode:?}"
            );
        }
    }
}
