//! Kernel parameters: the typed, hashable configuration a [`crate::Query`]
//! carries to a registered kernel's factory.
//!
//! Parameters are a small sorted map of `name → value`. Two properties make
//! them suitable for *keying* (batch formation and the result cache) rather
//! than just configuration:
//!
//! * **Exact equality.** Floats are compared and hashed by their bit
//!   patterns, so two PPR queries with different epsilons can never share a
//!   batch cohort or a cache entry — the same rule the pre-registry enum
//!   keys used.
//! * **Canonical order.** Entries are kept sorted by name with no
//!   duplicates, so `{a, b}` and `{b, a}` are one key regardless of the
//!   order `param(..)` calls were made in.
//!
//! Factories read parameters with the typed getters ([`QueryParams::f64_or`]
//! and friends), which produce [`ParamError`]s naming the parameter instead
//! of silently coercing, and reject typos with [`QueryParams::ensure_known`].

use std::fmt;
use std::hash::{Hash, Hasher};

/// One typed parameter value.
///
/// Integers and floats are deliberately distinct variants: `1u64` and `1.0`
/// are different keys (callers pick the type the kernel documents).
#[derive(Clone, Debug)]
pub enum ParamValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, caps, seeds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point value; equality and hashing use the bit pattern.
    F64(f64),
    /// String value (labels, variant selectors).
    Str(String),
}

impl ParamValue {
    /// Short name of the variant's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Bool(_) => "bool",
            ParamValue::U64(_) => "u64",
            ParamValue::I64(_) => "i64",
            ParamValue::F64(_) => "f64",
            ParamValue::Str(_) => "str",
        }
    }
}

impl PartialEq for ParamValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ParamValue::Bool(a), ParamValue::Bool(b)) => a == b,
            (ParamValue::U64(a), ParamValue::U64(b)) => a == b,
            (ParamValue::I64(a), ParamValue::I64(b)) => a == b,
            // Bit-pattern equality: distinguishes -0.0 from 0.0 and makes
            // NaN == NaN, which is what key semantics (not arithmetic
            // semantics) require.
            (ParamValue::F64(a), ParamValue::F64(b)) => a.to_bits() == b.to_bits(),
            (ParamValue::Str(a), ParamValue::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ParamValue {}

impl Hash for ParamValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Tag with the discriminant so U64(1) and I64(1) hash apart.
        std::mem::discriminant(self).hash(state);
        match self {
            ParamValue::Bool(v) => v.hash(state),
            ParamValue::U64(v) => v.hash(state),
            ParamValue::I64(v) => v.hash(state),
            ParamValue::F64(v) => v.to_bits().hash(state),
            ParamValue::Str(v) => v.hash(state),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::U64(v) => write!(f, "{v}"),
            ParamValue::I64(v) => write!(f, "{v}"),
            ParamValue::F64(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::U64(v)
    }
}
impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::U64(v as u64)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::U64(v as u64)
    }
}
impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::I64(v)
    }
}
impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::I64(v as i64)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::F64(v)
    }
}
impl From<f32> for ParamValue {
    fn from(v: f32) -> Self {
        ParamValue::F64(v as f64)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// A kernel-parameter validation failure, surfaced to submitters as
/// [`crate::ServiceError::InvalidParams`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamError {
    /// What went wrong, naming the offending parameter.
    pub reason: String,
}

impl ParamError {
    /// A new error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        ParamError { reason: reason.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for ParamError {}

/// A sorted, duplicate-free set of named parameters. See the
/// [module docs](self) for the keying rules.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct QueryParams {
    /// `(name, value)` pairs, sorted by name, names unique.
    entries: Vec<(String, ParamValue)>,
}

impl QueryParams {
    /// An empty parameter set.
    pub fn new() -> Self {
        QueryParams::default()
    }

    /// Insert or replace `name`, keeping the entries sorted.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<ParamValue>) {
        let name = name.into();
        let value = value.into();
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name, value)),
        }
    }

    /// Builder-style [`Self::set`].
    pub fn with(mut self, name: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Look up `name`.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` pairs in canonical (name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// `name` as an `f64`, or `default` when absent. Integer values are
    /// accepted and widened; other types are a typed error.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, ParamError> {
        match self.get(name) {
            None => Ok(default),
            Some(ParamValue::F64(v)) => Ok(*v),
            Some(ParamValue::U64(v)) => Ok(*v as f64),
            Some(ParamValue::I64(v)) => Ok(*v as f64),
            Some(other) => Err(ParamError::new(format!(
                "parameter {name:?} must be a number, got {} ({other})",
                other.type_name()
            ))),
        }
    }

    /// `name` as a `u64`, or `default` when absent. Non-negative `i64`s are
    /// accepted; floats are not (silent truncation would change keys).
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ParamError> {
        match self.get(name) {
            None => Ok(default),
            Some(ParamValue::U64(v)) => Ok(*v),
            Some(ParamValue::I64(v)) if *v >= 0 => Ok(*v as u64),
            Some(other) => Err(ParamError::new(format!(
                "parameter {name:?} must be a non-negative integer, got {} ({other})",
                other.type_name()
            ))),
        }
    }

    /// `name` as a `usize`, or `default` when absent.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, ParamError> {
        let v = self.u64_or(name, default as u64)?;
        usize::try_from(v).map_err(|_| {
            ParamError::new(format!("parameter {name:?} value {v} does not fit in usize"))
        })
    }

    /// `name` as a `bool`, or `default` when absent.
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, ParamError> {
        match self.get(name) {
            None => Ok(default),
            Some(ParamValue::Bool(v)) => Ok(*v),
            Some(other) => Err(ParamError::new(format!(
                "parameter {name:?} must be a bool, got {} ({other})",
                other.type_name()
            ))),
        }
    }

    /// Reject any parameter whose name is not in `known` — the factory-side
    /// typo guard (`Query::kernel("ppr").param("epsilom", …)` fails at
    /// submit instead of silently running with the default).
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), ParamError> {
        for (name, _) in &self.entries {
            if !known.contains(&name.as_str()) {
                return Err(ParamError::new(format!(
                    "unknown parameter {name:?} (this kernel accepts {known:?})"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for QueryParams {
    /// `{alpha=0.15, epsilon=0.000001}`-style rendering for error messages.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = DefaultHasher::new();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn insertion_order_does_not_change_the_key() {
        let a = QueryParams::new().with("alpha", 0.15).with("epsilon", 1e-6);
        let b = QueryParams::new().with("epsilon", 1e-6).with("alpha", 0.15);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn set_replaces_existing_entries() {
        let mut p = QueryParams::new();
        p.set("k", 2u64);
        p.set("k", 3u64);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("k"), Some(&ParamValue::U64(3)));
    }

    #[test]
    fn float_params_key_by_bit_pattern() {
        let a = QueryParams::new().with("epsilon", 1e-6);
        let b = QueryParams::new().with("epsilon", 2e-6);
        assert_ne!(a, b);
        let nan1 = QueryParams::new().with("x", f64::NAN);
        let nan2 = QueryParams::new().with("x", f64::NAN);
        assert_eq!(nan1, nan2, "same NaN bit pattern is one key");
    }

    #[test]
    fn integer_and_float_params_are_distinct_keys() {
        let int = QueryParams::new().with("k", 1u64);
        let float = QueryParams::new().with("k", 1.0);
        assert_ne!(int, float);
    }

    #[test]
    fn typed_getters_default_widen_and_reject() {
        let p = QueryParams::new().with("alpha", 0.5).with("cap", 10u64).with("flag", true);
        assert_eq!(p.f64_or("alpha", 0.15).unwrap(), 0.5);
        assert_eq!(p.f64_or("missing", 0.15).unwrap(), 0.15);
        assert_eq!(p.f64_or("cap", 0.0).unwrap(), 10.0, "integers widen to f64");
        assert_eq!(p.u64_or("cap", 0).unwrap(), 10);
        assert!(p.bool_or("flag", false).unwrap());
        let err = p.u64_or("alpha", 0).unwrap_err();
        assert!(err.reason.contains("alpha"), "{err}");
        let err = p.bool_or("cap", false).unwrap_err();
        assert!(err.reason.contains("cap"), "{err}");
    }

    #[test]
    fn ensure_known_names_the_typo_and_the_accepted_set() {
        let p = QueryParams::new().with("epsilom", 1e-5);
        let err = p.ensure_known(&["alpha", "epsilon"]).unwrap_err();
        assert!(err.reason.contains("epsilom"), "{err}");
        assert!(err.reason.contains("epsilon"), "{err}");
        assert!(p.ensure_known(&["epsilom"]).is_ok());
    }
}
