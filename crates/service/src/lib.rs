//! # fg-service
//!
//! An always-on, concurrent query-serving layer over the ForkGraph engine.
//!
//! The engine (`forkgraph-core`) gets its cache efficiency from processing
//! *batches* of forked queries together, but its API is one-shot and
//! synchronous. This crate is the online embodiment of that batching thesis:
//! concurrently arriving client queries are consolidated into micro-batches
//! and executed as single engine runs over a shared
//! [`PartitionedGraph`](fg_graph::partitioned::PartitionedGraph).
//!
//! ```text
//!  clients ──submit──▶ [admission control] ──▶ pending queue ─┐
//!     ▲                      │ shed when full                 │ batch window /
//!     │ cache hit            ▼                                │ size budget
//!     └─────────────── [LRU result cache]                     ▼
//!                            ▲                        [micro-batcher thread]
//!                            │ insert                         │ one ForkGraphEngine::run
//!                            └────────── demux ◀──────────────┘ per BatchKey cohort
//! ```
//!
//! * **Submission** ([`ServiceHandle::submit`]): clients submit typed
//!   [`QuerySpec`]s (SSSP / BFS / PPR / random walks) and receive a
//!   [`Ticket`] they can block on or poll.
//! * **Micro-batching**: a dedicated batcher thread accumulates submissions
//!   for [`ServiceConfig::batch_window`] (or until
//!   [`ServiceConfig::max_batch_size`]), then dispatches each same-key cohort
//!   as one consolidated `ForkGraphEngine::run`, demultiplexing per-source
//!   results back to submitters via
//!   [`ForkGraphRunResult::into_per_source`](forkgraph_core::ForkGraphRunResult::into_per_source).
//! * **Admission control**: the pending queue is bounded
//!   ([`ServiceConfig::max_queue_depth`]); a saturated service sheds load
//!   with [`ServiceError::Saturated`] instead of blocking submitters.
//! * **Result caching**: an LRU cache keyed by (kernel, config, source)
//!   short-circuits repeated hot queries.
//! * **Observability**: queue depth, shed count, batch occupancy, cache hit
//!   rate, and p50/p99 latency via [`fg_metrics::ServiceSnapshot`].

pub mod adaptive;
mod lru;
pub mod query;
pub mod service;
pub mod ticket;

pub use adaptive::effective_workers;
pub use query::{BatchKey, CacheKey, QueryResult, QuerySpec};
pub use service::{ForkGraphService, ServiceConfig, ServiceError, ServiceHandle};
pub use ticket::Ticket;
