//! # fg-service
//!
//! An always-on, concurrent query-serving layer over the ForkGraph engine,
//! built around an **open kernel registry**.
//!
//! The engine (`forkgraph-core`) gets its cache efficiency from processing
//! *batches* of forked queries together, but its API is one-shot and
//! synchronous. This crate is the online embodiment of that batching thesis:
//! concurrently arriving client queries are consolidated into micro-batches
//! and executed as single engine runs over a shared
//! [`PartitionedGraph`](fg_graph::partitioned::PartitionedGraph).
//!
//! ```text
//!  clients ──submit──▶ [registry resolve] ─▶ [admission] ─▶ pending queue ─┐
//!     ▲                      │ typed errors     │ shed when full           │ batch window /
//!     │ cache hit            │ memoized         ▼                          │ size budget
//!     └─────────────── [LRU result cache]                                  ▼
//!                            ▲                                  [micro-batcher thread]
//!                            │ insert                                      │ drains ALL ready
//!                            │                                             │ BatchKey cohorts
//!                            │                                             ▼
//!                            │                               one engine pass per drain:
//!                            │                               run_dyn   (1 cohort)
//!                            └── demux per (cohort, source) ◀ run_multi (2..=max_kernels
//!                                                                        per_run cohorts)
//! ```
//!
//! * **Open kernels**: a query names a kernel *registered* in the service's
//!   [`KernelRegistry`] — the four built-ins (`"sssp"`, `"bfs"`, `"ppr"`,
//!   `"random_walk"`) are pre-registered, and any
//!   [`FppKernel`](forkgraph_core::FppKernel) defined anywhere (including
//!   outside this workspace) becomes servable with one
//!   [`KernelRegistry::register`] call. Batching, admission control, pool
//!   dispatch, and caching all work unchanged for kernels this crate has
//!   never heard of, because dispatch is type-erased
//!   ([`forkgraph_core::DynKernel`]).
//! * **Submission** ([`ServiceHandle::submit_query`]): clients build a
//!   [`Query`] (`Query::kernel("ppr").source(v).param("epsilon", 1e-5)`)
//!   and receive a [`Ticket`] they can block on, poll, or re-type with
//!   [`Ticket::typed`] for a downcast-checked concrete result. The legacy
//!   closed-enum API ([`QuerySpec`], [`ServiceHandle::submit`]) remains as
//!   a thin shim with byte-identical results.
//! * **Micro-batching across kernels**: a dedicated batcher thread
//!   accumulates submissions for [`ServiceConfig::batch_window`] (or until
//!   [`ServiceConfig::max_batch_size`]), then drains **every ready cohort**
//!   — up to [`ServiceConfig::max_kernels_per_run`] distinct batch keys —
//!   into **one** engine pass: a lone cohort runs through
//!   [`ForkGraphEngine::run_dyn`](forkgraph_core::ForkGraphEngine::run_dyn),
//!   and heterogeneous cohorts share a single
//!   [`ForkGraphEngine::run_multi`](forkgraph_core::ForkGraphEngine::run_multi)
//!   partition pass (an SSSP cohort and a PPR cohort waiting on the same
//!   graph no longer pay one sweep each — the paper's amortisation, across
//!   query types). Results demultiplex per `(cohort, source)` back to
//!   submitters. Cohorts and cache entries are keyed by
//!   [`BatchKey`]/[`CacheKey`], derived from the *registration* (unique
//!   [`KernelId`] + canonical [`QueryParams`]), so same-named or
//!   re-registered kernels can never alias. Observability:
//!   [`fg_metrics::BatchRecord::kernels_in_run`] and
//!   [`fg_metrics::ServiceSnapshot::mixed_run_rate`].
//! * **Memoized resolution**: the registry caches `(registration, params) →
//!   instantiated kernel`, so steady-state submits never re-run kernel
//!   factories ([`KernelRegistry`] docs; replaced registrations are
//!   evicted).
//! * **Admission control**: the pending queue is bounded
//!   ([`ServiceConfig::max_queue_depth`]); a saturated service sheds load
//!   with [`ServiceError::Saturated`] instead of blocking submitters.
//! * **Result caching**: an LRU cache keyed by (registration, canonical
//!   params, source) short-circuits repeated hot queries.
//! * **Observability**: queue depth, shed count, batch occupancy, cache hit
//!   rate, per-batch kernel/worker records, and p50/p99 latency via
//!   [`fg_metrics::ServiceSnapshot`].

pub mod adaptive;
mod lru;
pub mod params;
pub mod query;
pub mod registry;
pub mod service;
pub mod ticket;

pub use adaptive::{effective_workers, effective_workers_mixed, effective_workers_weighted};
pub use fg_graph::mutation::{EdgeMutation, MutationError};
pub use params::{ParamError, ParamValue, QueryParams};
pub use query::{BatchKey, CacheKey, KernelMismatch, Query, QueryResult, QuerySpec};
pub use registry::{
    InstantiatedKernel, KernelFactory, KernelId, KernelRegistry, RegistryError, ResolvedKernel,
};
pub use service::{ForkGraphService, ServiceConfig, ServiceError, ServiceHandle, TraceHandle};
pub use ticket::Ticket;
