//! The open kernel registry: `kernel name → factory → erased kernel`.
//!
//! The paper's core abstraction is the fork-processing-pattern *kernel* —
//! SSSP, BFS, PPR, and random walks are just instances. The registry makes
//! that abstraction first-class at the serving layer: a kernel is whatever
//! got [`register`](KernelRegistry::register)ed under a name, and everything
//! downstream (batch formation, admission control, the result cache, the
//! persistent worker pool) is derived from the registration rather than from
//! a closed enum.
//!
//! Three pieces:
//!
//! * A [`KernelFactory`] turns a query's [`QueryParams`] into an
//!   [`InstantiatedKernel`]: a type-erased
//!   [`DynKernel`] plus the *canonical* parameter
//!   set (defaults filled in, typos rejected). Canonical params are what
//!   batch and cache keys hash, so `Query::kernel("ppr").source(v)` and an
//!   explicit-default `alpha=0.15` query share one cohort and one cache
//!   entry.
//! * A [`KernelId`] is minted per *registration*, not per name, from a
//!   process-global counter. Keys embed the id, so re-registering a name
//!   ([`KernelRegistry::register_or_replace`]) can never serve stale cached
//!   results from the kernel that previously held the name, and two
//!   registries' custom kernels can never alias each other's keys.
//! * The [`KernelRegistry`] itself: a concurrent name → entry map,
//!   pre-seeded with the four built-ins by [`KernelRegistry::with_builtins`]
//!   (fixed ids, so built-in keys are stable across services and across the
//!   legacy enum shims).
//!
//! Resolution is **memoized**: a bounded LRU memo maps `(KernelId, params)`
//! to the instantiated kernel, keyed under both the parameters as submitted
//! and the factory's canonical parameter set, so steady-state submit paths
//! stop re-running factories entirely (heavyweight factories — say, ones
//! precomputing per-kernel tables — become submit-path-safe). The memo makes
//! the long-standing implicit contract explicit: **factories must be pure**
//! (equal parameters ⇒ an equivalently-behaving kernel), which batching and
//! caching already assumed when they let equal canonical keys share one
//! cohort and one cache entry. [`KernelRegistry::register_or_replace`]
//! evicts the replaced registration's memo entries.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use forkgraph_core::kernels::{BfsKernel, PprKernel, RandomWalkKernel, SsspKernel};
use forkgraph_core::{erase, DynKernel};

use crate::lru::LruCache;
use crate::params::{ParamError, QueryParams};

/// Bound on memoized kernel instantiations (LRU-evicted beyond it). Each
/// entry is an `Arc` + a canonical parameter set — small — so the bound
/// exists to cap adversarial param-churn, not normal operation.
const KERNEL_MEMO_CAPACITY: usize = 512;

/// Identity of one kernel *registration*. Unique process-wide: built-ins use
/// the fixed ids below, every other registration draws from a global
/// counter. Batch and cache keys embed this id (never the name), which is
/// what makes key collisions between same-named or re-registered kernels
/// impossible by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(u64);

impl KernelId {
    /// The built-in SSSP kernel's stable id.
    pub const SSSP: KernelId = KernelId(1);
    /// The built-in BFS kernel's stable id.
    pub const BFS: KernelId = KernelId(2);
    /// The built-in PPR kernel's stable id.
    pub const PPR: KernelId = KernelId(3);
    /// The built-in random-walk kernel's stable id.
    pub const RANDOM_WALK: KernelId = KernelId(4);

    /// Mint a fresh id no other registration (in any registry in this
    /// process) has.
    fn next() -> KernelId {
        // Start far above the built-in range so the two can never collide.
        static NEXT: AtomicU64 = AtomicU64::new(16);
        KernelId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id value (metrics labels).
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A factory's output: the erased kernel plus the canonical parameters that
/// key its batches and cache entries.
pub struct InstantiatedKernel {
    /// The kernel, ready to run through
    /// [`ForkGraphEngine::run_dyn`](forkgraph_core::ForkGraphEngine::run_dyn).
    pub kernel: Arc<dyn DynKernel>,
    /// Canonical parameter set: every parameter the kernel recognises, with
    /// defaults filled in. Queries whose canonical params are equal are
    /// semantically identical and may share a batch cohort / cache entry.
    pub canonical_params: QueryParams,
}

impl InstantiatedKernel {
    /// Bundle an erased kernel with its canonical parameters.
    pub fn new(kernel: Arc<dyn DynKernel>, canonical_params: QueryParams) -> Self {
        InstantiatedKernel { kernel, canonical_params }
    }
}

/// Builds kernels from query parameters. Implemented automatically for
/// plain closures:
///
/// ```
/// use std::sync::Arc;
/// use fg_service::{InstantiatedKernel, KernelRegistry, QueryParams};
/// use forkgraph_core::erase;
/// use forkgraph_core::kernels::BfsKernel;
///
/// let registry = KernelRegistry::with_builtins();
/// registry
///     .register("bfs-again", |params: &QueryParams| {
///         params.ensure_known(&[])?;
///         Ok(InstantiatedKernel::new(erase(BfsKernel), QueryParams::new()))
///     })
///     .unwrap();
/// assert!(registry.contains("bfs-again"));
/// ```
pub trait KernelFactory: Send + Sync {
    /// Validate `params` and build the kernel they describe.
    fn instantiate(&self, params: &QueryParams) -> Result<InstantiatedKernel, ParamError>;
}

impl<F> KernelFactory for F
where
    F: Fn(&QueryParams) -> Result<InstantiatedKernel, ParamError> + Send + Sync,
{
    fn instantiate(&self, params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
        self(params)
    }
}

/// Failures of registry operations, surfaced through
/// [`crate::ServiceError`] on the submit path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// [`KernelRegistry::register`] refused to shadow an existing name.
    DuplicateName {
        /// The already-registered name.
        name: String,
    },
    /// No kernel is registered under the query's name.
    UnknownKernel {
        /// The name the query asked for.
        name: String,
    },
    /// The factory rejected the query's parameters.
    InvalidParams {
        /// The kernel whose factory rejected them.
        kernel: String,
        /// The factory's reason.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName { name } => {
                write!(
                    f,
                    "kernel {name:?} is already registered \
                     (use register_or_replace to shadow it)"
                )
            }
            RegistryError::UnknownKernel { name } => {
                write!(f, "no kernel registered under {name:?}")
            }
            RegistryError::InvalidParams { kernel, reason } => {
                write!(f, "invalid parameters for kernel {kernel:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A query resolved against the registry: everything the batcher needs to
/// execute it and everything the keys need to group it.
#[derive(Clone)]
pub struct ResolvedKernel {
    /// Registration identity (keys batches and cache entries).
    pub id: KernelId,
    /// Registered name (metrics labels, error messages).
    pub name: Arc<str>,
    /// The instantiated, type-erased kernel.
    pub kernel: Arc<dyn DynKernel>,
    /// Canonical parameters (defaults filled in by the factory).
    pub params: QueryParams,
}

impl fmt::Debug for ResolvedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResolvedKernel")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("params", &self.params)
            .finish()
    }
}

struct KernelEntry {
    id: KernelId,
    name: Arc<str>,
    factory: Arc<dyn KernelFactory>,
}

/// One memoized instantiation: the kernel plus the canonical parameter set
/// the factory derived for it.
#[derive(Clone)]
struct MemoEntry {
    kernel: Arc<dyn DynKernel>,
    canonical: QueryParams,
}

/// The concurrent kernel registry; see the [module docs](self).
pub struct KernelRegistry {
    entries: RwLock<HashMap<Arc<str>, KernelEntry>>,
    /// `(registration, params) → instantiated kernel`: entries exist under
    /// the parameters *as submitted* and under the factory's canonical set,
    /// so both the common repeated-literal submit and a
    /// differently-spelled-but-canonically-equal submit hit after one
    /// factory run each. Keyed by [`KernelId`], so a replaced registration's
    /// entries can never serve the name's new holder.
    memo: Mutex<LruCache<(KernelId, QueryParams), MemoEntry>>,
}

impl KernelRegistry {
    /// An empty registry (no kernels, not even the built-ins). Useful for
    /// tests and for services that want a fully closed kernel set.
    pub fn empty() -> Self {
        KernelRegistry {
            entries: RwLock::new(HashMap::new()),
            memo: Mutex::new(LruCache::new(KERNEL_MEMO_CAPACITY)),
        }
    }

    /// A registry pre-seeded with the four built-in kernels under their
    /// stable names and ids: `"sssp"`, `"bfs"`, `"ppr"` (params `alpha`,
    /// `epsilon`, `max_pushes`), and `"random_walk"` (params `num_walks`,
    /// `walk_length`, `restart_prob`, `seed`).
    pub fn with_builtins() -> Self {
        let registry = KernelRegistry::empty();
        registry.insert(KernelId::SSSP, "sssp", Arc::new(sssp_factory));
        registry.insert(KernelId::BFS, "bfs", Arc::new(bfs_factory));
        registry.insert(KernelId::PPR, "ppr", Arc::new(ppr_factory));
        registry.insert(KernelId::RANDOM_WALK, "random_walk", Arc::new(random_walk_factory));
        registry
    }

    fn insert(&self, id: KernelId, name: &str, factory: Arc<dyn KernelFactory>) {
        let name: Arc<str> = Arc::from(name);
        self.entries.write().insert(Arc::clone(&name), KernelEntry { id, name, factory });
    }

    /// Register `factory` under `name`, refusing to shadow an existing
    /// registration. Returns the fresh [`KernelId`].
    pub fn register(
        &self,
        name: &str,
        factory: impl KernelFactory + 'static,
    ) -> Result<KernelId, RegistryError> {
        let mut entries = self.entries.write();
        if entries.contains_key(name) {
            return Err(RegistryError::DuplicateName { name: name.to_string() });
        }
        let id = KernelId::next();
        let name: Arc<str> = Arc::from(name);
        entries.insert(Arc::clone(&name), KernelEntry { id, name, factory: Arc::new(factory) });
        Ok(id)
    }

    /// Register `factory` under `name`, replacing any existing registration.
    /// Returns the fresh id and the replaced registration's id (if any) —
    /// the caller can use the latter to invalidate cached results of the
    /// shadowed kernel (the keys alone already guarantee they will never be
    /// *served* for the new kernel). The replaced registration's memoized
    /// instantiations are evicted here.
    pub fn register_or_replace(
        &self,
        name: &str,
        factory: impl KernelFactory + 'static,
    ) -> (KernelId, Option<KernelId>) {
        let previous = {
            let mut entries = self.entries.write();
            let id = KernelId::next();
            let name: Arc<str> = Arc::from(name);
            let previous = entries
                .insert(Arc::clone(&name), KernelEntry { id, name, factory: Arc::new(factory) })
                .map(|entry| entry.id);
            (id, previous)
        };
        if let Some(old_id) = previous.1 {
            // Unreachable through `resolve` already (the name now maps to the
            // new id), so this is capacity reclamation, like the result-cache
            // eviction `register_kernel_replacing` performs.
            self.memo.lock().retain(|(id, _), _| *id != old_id);
        }
        previous
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(name)
    }

    /// The currently registered kernel names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.entries.read().keys().map(|name| name.to_string()).collect();
        names.sort();
        names
    }

    /// The id currently registered under `name`, if any.
    pub fn id_of(&self, name: &str) -> Option<KernelId> {
        self.entries.read().get(name).map(|entry| entry.id)
    }

    /// Resolve a query: look up `name`, consult the instantiation memo, and
    /// only on a miss run the factory over `params`. Returns the executable,
    /// keyable [`ResolvedKernel`]; repeated submissions of equal parameters
    /// share one `Arc`'d kernel instance without re-entering the factory.
    pub fn resolve(
        &self,
        name: &str,
        params: &QueryParams,
    ) -> Result<ResolvedKernel, RegistryError> {
        let (id, entry_name, factory) = {
            let entries = self.entries.read();
            let entry = entries
                .get(name)
                .ok_or_else(|| RegistryError::UnknownKernel { name: name.to_string() })?;
            (entry.id, Arc::clone(&entry.name), Arc::clone(&entry.factory))
        };
        let memo_key = (id, params.clone());
        if let Some(entry) = self.memo.lock().get(&memo_key).cloned() {
            return Ok(ResolvedKernel {
                id,
                name: entry_name,
                kernel: entry.kernel,
                params: entry.canonical,
            });
        }
        // Factory runs outside every lock: factories are user code.
        let instantiated = factory.instantiate(params).map_err(|e| {
            RegistryError::InvalidParams { kernel: name.to_string(), reason: e.reason }
        })?;
        let entry =
            MemoEntry { kernel: instantiated.kernel, canonical: instantiated.canonical_params };
        {
            // Two lock scopes around the factory call mean a concurrent
            // resolve of the same params may also have instantiated; last
            // insert wins, which is fine for pure factories (the entries are
            // interchangeable). Don't memoize for a registration that was
            // replaced while the factory ran: the entries could never be
            // served again (the name now resolves to the new id) and would
            // squat in the capacity `register_or_replace`'s eviction just
            // reclaimed. The liveness check happens *under the memo lock*
            // (which the replace path's eviction also takes, after updating
            // the name map), so a concurrent replacement either lands before
            // the check — we observe the new id and skip — or its eviction
            // runs after our inserts and removes them; there is no window
            // for dead-id entries to survive.
            let mut memo = self.memo.lock();
            if self.id_of(&entry_name) == Some(id) {
                memo.insert((id, entry.canonical.clone()), entry.clone());
                if entry.canonical != memo_key.1 {
                    memo.insert(memo_key, entry.clone());
                }
            }
        }
        Ok(ResolvedKernel { id, name: entry_name, kernel: entry.kernel, params: entry.canonical })
    }
}

impl fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelRegistry").field("names", &self.names()).finish()
    }
}

// -- Built-in factories ------------------------------------------------------

fn sssp_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    params.ensure_known(&[])?;
    Ok(InstantiatedKernel::new(erase(SsspKernel), QueryParams::new()))
}

fn bfs_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    params.ensure_known(&[])?;
    Ok(InstantiatedKernel::new(erase(BfsKernel), QueryParams::new()))
}

/// Canonical params for a [`PprConfig`] (used by the factory and by the
/// legacy [`crate::QuerySpec::Ppr`] shim, so both paths key identically).
pub(crate) fn ppr_params(config: &PprConfig) -> QueryParams {
    QueryParams::new()
        .with("alpha", config.alpha)
        .with("epsilon", config.epsilon)
        .with("max_pushes", config.max_pushes)
}

fn ppr_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    params.ensure_known(&["alpha", "epsilon", "max_pushes"])?;
    let defaults = PprConfig::default();
    let config = PprConfig {
        alpha: params.f64_or("alpha", defaults.alpha)?,
        epsilon: params.f64_or("epsilon", defaults.epsilon)?,
        max_pushes: params.u64_or("max_pushes", defaults.max_pushes)?,
    };
    if !(config.alpha > 0.0 && config.alpha < 1.0) {
        return Err(ParamError::new(format!(
            "parameter \"alpha\" must be in (0, 1), got {}",
            config.alpha
        )));
    }
    if config.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(ParamError::new(format!(
            "parameter \"epsilon\" must be positive, got {}",
            config.epsilon
        )));
    }
    Ok(InstantiatedKernel::new(erase(PprKernel::new(config)), ppr_params(&config)))
}

/// Canonical params for a [`RandomWalkConfig`] (shared with the legacy
/// [`crate::QuerySpec::RandomWalk`] shim).
pub(crate) fn random_walk_params(config: &RandomWalkConfig) -> QueryParams {
    QueryParams::new()
        .with("num_walks", config.num_walks)
        .with("walk_length", config.walk_length)
        .with("restart_prob", config.restart_prob)
        .with("seed", config.seed)
}

fn random_walk_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    params.ensure_known(&["num_walks", "walk_length", "restart_prob", "seed"])?;
    let defaults = RandomWalkConfig::default();
    let config = RandomWalkConfig {
        num_walks: params.usize_or("num_walks", defaults.num_walks)?,
        walk_length: params.usize_or("walk_length", defaults.walk_length)?,
        restart_prob: params.f64_or("restart_prob", defaults.restart_prob)?,
        seed: params.u64_or("seed", defaults.seed)?,
    };
    if !(0.0..=1.0).contains(&config.restart_prob) {
        return Err(ParamError::new(format!(
            "parameter \"restart_prob\" must be in [0, 1], got {}",
            config.restart_prob
        )));
    }
    Ok(InstantiatedKernel::new(erase(RandomWalkKernel::new(config)), random_walk_params(&config)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
        params.ensure_known(&[])?;
        Ok(InstantiatedKernel::new(erase(SsspKernel), QueryParams::new()))
    }

    #[test]
    fn builtins_resolve_with_fixed_ids_and_canonical_defaults() {
        let registry = KernelRegistry::with_builtins();
        assert_eq!(registry.id_of("sssp"), Some(KernelId::SSSP));
        assert_eq!(registry.id_of("bfs"), Some(KernelId::BFS));
        assert_eq!(registry.id_of("ppr"), Some(KernelId::PPR));
        assert_eq!(registry.id_of("random_walk"), Some(KernelId::RANDOM_WALK));

        // Omitted PPR params canonicalize to the defaults, so an explicit
        // default and an empty param set are the same key.
        let implicit = registry.resolve("ppr", &QueryParams::new()).unwrap();
        let explicit = registry
            .resolve("ppr", &QueryParams::new().with("alpha", PprConfig::default().alpha))
            .unwrap();
        assert_eq!(implicit.params, explicit.params);
        assert_eq!(implicit.id, explicit.id);
        assert_eq!(implicit.name.as_ref(), "ppr");
    }

    #[test]
    fn unknown_kernels_and_bad_params_are_typed_errors() {
        let registry = KernelRegistry::with_builtins();
        assert_eq!(
            registry.resolve("pagerank", &QueryParams::new()).unwrap_err(),
            RegistryError::UnknownKernel { name: "pagerank".to_string() }
        );
        let err = registry.resolve("ppr", &QueryParams::new().with("epsilom", 1e-5)).unwrap_err();
        match err {
            RegistryError::InvalidParams { kernel, reason } => {
                assert_eq!(kernel, "ppr");
                assert!(reason.contains("epsilom"), "{reason}");
            }
            other => panic!("expected InvalidParams, got {other:?}"),
        }
        let err = registry.resolve("ppr", &QueryParams::new().with("alpha", 1.5)).unwrap_err();
        assert!(matches!(err, RegistryError::InvalidParams { .. }), "{err:?}");
    }

    #[test]
    fn register_refuses_duplicates_and_replace_mints_a_fresh_id() {
        let registry = KernelRegistry::with_builtins();
        let id = registry.register("custom", noop_factory).unwrap();
        assert!(id > KernelId::RANDOM_WALK, "custom ids live above the built-in range");
        assert_eq!(
            registry.register("custom", noop_factory).unwrap_err(),
            RegistryError::DuplicateName { name: "custom".to_string() }
        );
        let (new_id, replaced) = registry.register_or_replace("custom", noop_factory);
        assert_eq!(replaced, Some(id));
        assert_ne!(new_id, id, "replacement is a new registration identity");
        assert_eq!(registry.id_of("custom"), Some(new_id));
    }

    #[test]
    fn ids_are_unique_across_registries() {
        let a = KernelRegistry::empty();
        let b = KernelRegistry::empty();
        let id_a = a.register("same-name", noop_factory).unwrap();
        let id_b = b.register("same-name", noop_factory).unwrap();
        assert_ne!(id_a, id_b, "two registries' custom kernels never alias");
    }

    #[test]
    fn names_are_sorted() {
        let registry = KernelRegistry::with_builtins();
        assert_eq!(registry.names(), vec!["bfs", "ppr", "random_walk", "sssp"]);
    }

    #[test]
    fn resolve_memoizes_factory_instantiations() {
        use std::sync::atomic::AtomicUsize;

        let runs = Arc::new(AtomicUsize::new(0));
        let registry = KernelRegistry::with_builtins();
        let counter = Arc::clone(&runs);
        registry
            .register("counted", move |params: &QueryParams| {
                counter.fetch_add(1, Ordering::SeqCst);
                params.ensure_known(&["alpha"])?;
                let canonical = QueryParams::new().with("alpha", params.f64_or("alpha", 0.25)?);
                Ok(InstantiatedKernel::new(erase(SsspKernel), canonical))
            })
            .unwrap();

        // Same literal params over and over: one factory run, one shared
        // kernel instance.
        let first = registry.resolve("counted", &QueryParams::new()).unwrap();
        let second = registry.resolve("counted", &QueryParams::new()).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "second resolve must hit the memo");
        assert!(Arc::ptr_eq(&first.kernel, &second.kernel));
        assert_eq!(first.params, second.params);

        // A different spelling that canonicalizes to the same params hits the
        // canonical entry the first resolve wrote — no factory run at all.
        let explicit = QueryParams::new().with("alpha", 0.25);
        let third = registry.resolve("counted", &explicit).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "canonical spelling hits the shared entry");
        assert_eq!(third.params, first.params);
        assert!(Arc::ptr_eq(&third.kernel, &first.kernel));

        // Genuinely different params are a different instantiation.
        let other = registry.resolve("counted", &QueryParams::new().with("alpha", 0.5)).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_ne!(other.params, first.params);
    }

    #[test]
    fn register_or_replace_evicts_the_replaced_registrations_memo() {
        use std::sync::atomic::AtomicUsize;

        let runs = Arc::new(AtomicUsize::new(0));
        let registry = KernelRegistry::with_builtins();
        let make_factory = |counter: Arc<AtomicUsize>| {
            move |params: &QueryParams| {
                counter.fetch_add(1, Ordering::SeqCst);
                params.ensure_known(&[])?;
                Ok(InstantiatedKernel::new(erase(SsspKernel), QueryParams::new()))
            }
        };
        registry.register("swap", make_factory(Arc::clone(&runs))).unwrap();
        let old = registry.resolve("swap", &QueryParams::new()).unwrap();
        registry.resolve("swap", &QueryParams::new()).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        let (new_id, replaced) =
            registry.register_or_replace("swap", make_factory(Arc::clone(&runs)));
        assert_eq!(replaced, Some(old.id));
        // The replacement registration resolves through its own factory and
        // its own memo entries — never the shadowed registration's.
        let fresh = registry.resolve("swap", &QueryParams::new()).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 2, "new registration instantiates anew");
        assert_eq!(fresh.id, new_id);
        assert!(!Arc::ptr_eq(&fresh.kernel, &old.kernel));
        registry.resolve("swap", &QueryParams::new()).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 2, "and is memoized thereafter");
    }

    #[test]
    fn builtin_resolves_share_memoized_instances() {
        let registry = KernelRegistry::with_builtins();
        let a = registry.resolve("ppr", &QueryParams::new()).unwrap();
        let b = registry
            .resolve("ppr", &QueryParams::new().with("alpha", PprConfig::default().alpha))
            .unwrap();
        // The partial spelling is not the canonical set, so its first
        // resolve runs the factory once; thereafter it is memoized.
        let c = registry
            .resolve("ppr", &QueryParams::new().with("alpha", PprConfig::default().alpha))
            .unwrap();
        assert!(Arc::ptr_eq(&b.kernel, &c.kernel));
        assert_eq!(a.params, b.params);
    }
}
