//! Typed query submissions and results.
//!
//! A [`QuerySpec`] is one client query — a kernel plus its source vertex and
//! (for parameterised kernels) its configuration. Specs that share a
//! [`BatchKey`] are semantically batchable: they run the same kernel with the
//! same configuration, so the micro-batcher may consolidate them into a single
//! `ForkGraphEngine::run` over their combined source list.

use std::hash::Hash;

use fg_graph::{Dist, VertexId};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use forkgraph_core::kernels::{PprState, RwState};

/// One client query: kernel, source, and kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// Single-source shortest paths from `source`.
    Sssp { source: VertexId },
    /// Breadth-first search levels from `source`.
    Bfs { source: VertexId },
    /// Personalized PageRank seeded at `seed`.
    Ppr { seed: VertexId, config: PprConfig },
    /// A batch of bounded random walks from `source`.
    RandomWalk { source: VertexId, config: RandomWalkConfig },
}

impl QuerySpec {
    /// The vertex this query forks from.
    pub fn source(&self) -> VertexId {
        match *self {
            QuerySpec::Sssp { source }
            | QuerySpec::Bfs { source }
            | QuerySpec::RandomWalk { source, .. } => source,
            QuerySpec::Ppr { seed, .. } => seed,
        }
    }

    /// Batching key: queries with equal keys may share one engine run.
    ///
    /// Float parameters are keyed by their bit patterns — exact-equality
    /// grouping, which is what batchability requires (two PPR queries with
    /// different epsilons must not share a run).
    pub fn batch_key(&self) -> BatchKey {
        match *self {
            QuerySpec::Sssp { .. } => BatchKey::Sssp,
            QuerySpec::Bfs { .. } => BatchKey::Bfs,
            QuerySpec::Ppr { config, .. } => BatchKey::Ppr {
                alpha_bits: config.alpha.to_bits(),
                epsilon_bits: config.epsilon.to_bits(),
                max_pushes: config.max_pushes,
            },
            QuerySpec::RandomWalk { config, .. } => BatchKey::RandomWalk {
                num_walks: config.num_walks,
                walk_length: config.walk_length,
                restart_bits: config.restart_prob.to_bits(),
                seed: config.seed,
            },
        }
    }

    /// Cache key identifying this exact query: batch key plus source.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey { key: self.batch_key(), source: self.source() }
    }

    /// Human-readable kernel name (metrics/log labels).
    pub fn kernel_name(&self) -> &'static str {
        match self {
            QuerySpec::Sssp { .. } => "sssp",
            QuerySpec::Bfs { .. } => "bfs",
            QuerySpec::Ppr { .. } => "ppr",
            QuerySpec::RandomWalk { .. } => "random_walk",
        }
    }
}

/// Equality/hash key for batch formation. Two specs with the same key run the
/// same kernel with identical parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BatchKey {
    Sssp,
    Bfs,
    Ppr { alpha_bits: u64, epsilon_bits: u64, max_pushes: u64 },
    RandomWalk { num_walks: usize, walk_length: usize, restart_bits: u64, seed: u64 },
}

/// Key of the result cache: one exact query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub key: BatchKey,
    pub source: VertexId,
}

/// A completed query's result, one variant per kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Distances from the source (index = vertex id).
    Sssp(Vec<Dist>),
    /// BFS levels from the source (index = vertex id).
    Bfs(Vec<u32>),
    /// Final PPR state (dense estimate + residual vectors).
    Ppr(PprState),
    /// Final random-walk state (visit counts).
    RandomWalk(RwState),
}

impl QueryResult {
    pub fn as_sssp(&self) -> Option<&Vec<Dist>> {
        match self {
            QueryResult::Sssp(d) => Some(d),
            _ => None,
        }
    }

    pub fn as_bfs(&self) -> Option<&Vec<u32>> {
        match self {
            QueryResult::Bfs(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_ppr(&self) -> Option<&PprState> {
        match self {
            QueryResult::Ppr(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_random_walk(&self) -> Option<&RwState> {
        match self {
            QueryResult::RandomWalk(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_kernel_same_config_share_a_batch_key() {
        let a = QuerySpec::Sssp { source: 1 };
        let b = QuerySpec::Sssp { source: 2 };
        assert_eq!(a.batch_key(), b.batch_key());
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn different_kernels_do_not_share_a_batch_key() {
        let a = QuerySpec::Sssp { source: 1 };
        let b = QuerySpec::Bfs { source: 1 };
        assert_ne!(a.batch_key(), b.batch_key());
    }

    #[test]
    fn ppr_config_differences_split_batches() {
        let base = PprConfig::default();
        let a = QuerySpec::Ppr { seed: 1, config: base };
        let b =
            QuerySpec::Ppr { seed: 2, config: PprConfig { epsilon: base.epsilon * 2.0, ..base } };
        let c = QuerySpec::Ppr { seed: 3, config: base };
        assert_ne!(a.batch_key(), b.batch_key());
        assert_eq!(a.batch_key(), c.batch_key());
    }

    #[test]
    fn random_walk_seed_is_part_of_the_key() {
        let base = RandomWalkConfig::default();
        let a = QuerySpec::RandomWalk { source: 1, config: base };
        let b = QuerySpec::RandomWalk {
            source: 1,
            config: RandomWalkConfig { seed: base.seed + 1, ..base },
        };
        assert_ne!(a.batch_key(), b.batch_key());
    }

    #[test]
    fn source_accessor_covers_all_variants() {
        assert_eq!(QuerySpec::Sssp { source: 7 }.source(), 7);
        assert_eq!(QuerySpec::Bfs { source: 8 }.source(), 8);
        assert_eq!(QuerySpec::Ppr { seed: 9, config: PprConfig::default() }.source(), 9);
        assert_eq!(
            QuerySpec::RandomWalk { source: 10, config: RandomWalkConfig::default() }.source(),
            10
        );
    }
}
