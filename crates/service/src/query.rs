//! Queries and results of the open-kernel serving API.
//!
//! A [`Query`] names a *registered* kernel, a source vertex, and a set of
//! typed parameters:
//!
//! ```
//! use fg_service::Query;
//!
//! let q = Query::kernel("ppr").source(42).param("epsilon", 1e-5);
//! assert_eq!(q.kernel_name(), "ppr");
//! ```
//!
//! Resolution against the service's [`KernelRegistry`](crate::KernelRegistry)
//! happens at submit time and yields the two registry-derived keys:
//!
//! * [`BatchKey`] — registration id + canonical params. Queries with equal
//!   keys run the same kernel with identical configuration, so the
//!   micro-batcher may consolidate them into one engine run. Because the id
//!   is minted per registration, kernels with colliding *names* (e.g. a
//!   re-registered `"ppr"`) can never share a cohort.
//! * [`CacheKey`] — batch key + source: one exact query, the LRU cache's
//!   key.
//!
//! A completed query yields a [`QueryResult`]: the kernel's final state,
//! type-erased. Downcast it with the generic accessors
//! ([`QueryResult::downcast_ref`], [`QueryResult::try_state`]) or, for the
//! built-ins, the named accessors — `as_*` returning `Option` and the
//! `try_*`/`try_into_*` family returning a [`KernelMismatch`] that names the
//! kernel that actually produced the result.
//!
//! The pre-registry enum API ([`QuerySpec`]) is kept as a thin shim: it
//! converts to a [`Query`] at submit time and produces byte-identical
//! results through the registry path.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use fg_graph::{Dist, VertexId};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use forkgraph_core::kernels::{PprState, RwState};
use forkgraph_core::ErasedState;

use crate::params::{ParamValue, QueryParams};
use crate::registry::{self, KernelId};

/// One client query for the open-kernel API; see the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    kernel: String,
    source: Option<VertexId>,
    params: QueryParams,
}

impl Query {
    /// Start building a query for the kernel registered under `name`.
    pub fn kernel(name: impl Into<String>) -> Self {
        Query { kernel: name.into(), source: None, params: QueryParams::new() }
    }

    /// Set the source vertex the query forks from. Required before submit.
    pub fn source(mut self, source: VertexId) -> Self {
        self.source = Some(source);
        self
    }

    /// Set one kernel parameter. Unknown parameter names are rejected by the
    /// kernel's factory at submit time.
    pub fn param(mut self, name: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.set(name, value);
        self
    }

    /// The kernel name this query will resolve.
    pub fn kernel_name(&self) -> &str {
        &self.kernel
    }

    /// The source vertex, if one has been set.
    pub fn source_vertex(&self) -> Option<VertexId> {
        self.source
    }

    /// The parameters accumulated so far (pre-canonicalization).
    pub fn params(&self) -> &QueryParams {
        &self.params
    }
}

/// Equality/hash key for batch formation: registration id + canonical
/// params. Derived by the registry at submit time; see the
/// [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// The kernel registration this cohort runs.
    pub kernel: KernelId,
    /// Canonical (factory-normalised) parameters of the cohort.
    pub params: QueryParams,
}

/// Key of the result cache: one exact query (batch key + source).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The batchability key.
    pub key: BatchKey,
    /// The query's source vertex.
    pub source: VertexId,
}

/// A typed "this result belongs to a different kernel" error, returned by
/// the checked accessors of [`QueryResult`] and by typed
/// [`Ticket`](crate::Ticket) waits. Unlike the old `Option`-returning
/// accessors, it names the kernel that actually produced the result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelMismatch {
    /// The state type the caller asked for.
    pub expected: &'static str,
    /// Name of the kernel that actually produced the result.
    pub kernel: String,
    /// The result's actual state type.
    pub actual: &'static str,
}

impl fmt::Display for KernelMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "result was produced by kernel {:?} (state type {}), not by a kernel producing {}",
            self.kernel, self.actual, self.expected
        )
    }
}

impl std::error::Error for KernelMismatch {}

/// A completed query's result: the kernel's final per-query state, type-
/// erased and cheaply shareable (cache hits and concurrent waiters all see
/// the same allocation).
#[derive(Clone)]
pub struct QueryResult {
    kernel_id: KernelId,
    kernel: Arc<str>,
    /// Human-readable name of the concrete state type behind `state`.
    state_type: &'static str,
    state: ErasedState,
}

impl QueryResult {
    /// Wrap one erased engine state as a result of `kernel`.
    pub(crate) fn new(
        kernel_id: KernelId,
        kernel: Arc<str>,
        state_type: &'static str,
        state: ErasedState,
    ) -> Self {
        QueryResult { kernel_id, kernel, state_type, state }
    }

    /// Build a result from a concrete state value (primarily for tests and
    /// for code paths that synthesise results outside the engine).
    pub fn from_state<S: Any + Send + Sync>(
        kernel_id: KernelId,
        kernel: impl Into<Arc<str>>,
        state: S,
    ) -> Self {
        QueryResult {
            kernel_id,
            kernel: kernel.into(),
            state_type: std::any::type_name::<S>(),
            state: Arc::new(state),
        }
    }

    /// Name of the kernel registration that produced this result.
    pub fn kernel_name(&self) -> &str {
        &self.kernel
    }

    /// Identity of the kernel registration that produced this result.
    pub fn kernel_id(&self) -> KernelId {
        self.kernel_id
    }

    /// The type-erased state (shared with every other holder of this
    /// result).
    pub fn state(&self) -> &ErasedState {
        &self.state
    }

    /// Borrow the state as `S`, or `None` if this result's kernel produces a
    /// different state type.
    pub fn downcast_ref<S: Any>(&self) -> Option<&S> {
        self.state.downcast_ref::<S>()
    }

    /// Borrow the state as `S`, with a [`KernelMismatch`] naming the actual
    /// kernel on type mismatch.
    pub fn try_state<S: Any>(&self) -> Result<&S, KernelMismatch> {
        self.downcast_ref::<S>().ok_or_else(|| self.mismatch::<S>())
    }

    /// Take shared ownership of the state as `Arc<S>`, with a
    /// [`KernelMismatch`] naming the actual kernel on type mismatch.
    pub fn try_into_state<S: Any + Send + Sync>(self) -> Result<Arc<S>, KernelMismatch> {
        if self.downcast_ref::<S>().is_none() {
            return Err(self.mismatch::<S>());
        }
        Ok(Arc::downcast(self.state).expect("checked by downcast_ref above"))
    }

    fn mismatch<S: Any>(&self) -> KernelMismatch {
        KernelMismatch {
            expected: std::any::type_name::<S>(),
            kernel: self.kernel.to_string(),
            actual: self.state_type,
        }
    }

    // -- Built-in accessors (legacy shims + checked variants) ----------------

    /// Distances from the source, if this is an SSSP result. Prefer
    /// [`Self::try_sssp`], which reports *what* the result actually is
    /// instead of silently returning `None`.
    pub fn as_sssp(&self) -> Option<&Vec<Dist>> {
        self.downcast_ref()
    }

    /// BFS levels from the source, if this is a BFS result. Prefer
    /// [`Self::try_bfs`].
    pub fn as_bfs(&self) -> Option<&Vec<u32>> {
        self.downcast_ref()
    }

    /// Final PPR state, if this is a PPR result. Prefer [`Self::try_ppr`].
    pub fn as_ppr(&self) -> Option<&PprState> {
        self.downcast_ref()
    }

    /// Final random-walk state, if this is a random-walk result. Prefer
    /// [`Self::try_random_walk`].
    pub fn as_random_walk(&self) -> Option<&RwState> {
        self.downcast_ref()
    }

    /// Distances from the source, or a [`KernelMismatch`] naming the kernel
    /// that actually produced this result.
    pub fn try_sssp(&self) -> Result<&Vec<Dist>, KernelMismatch> {
        self.try_state()
    }

    /// BFS levels, or a [`KernelMismatch`] naming the actual kernel.
    pub fn try_bfs(&self) -> Result<&Vec<u32>, KernelMismatch> {
        self.try_state()
    }

    /// Final PPR state, or a [`KernelMismatch`] naming the actual kernel.
    pub fn try_ppr(&self) -> Result<&PprState, KernelMismatch> {
        self.try_state()
    }

    /// Final random-walk state, or a [`KernelMismatch`] naming the actual
    /// kernel.
    pub fn try_random_walk(&self) -> Result<&RwState, KernelMismatch> {
        self.try_state()
    }

    /// Consume into shared SSSP distances, or a [`KernelMismatch`].
    pub fn try_into_sssp(self) -> Result<Arc<Vec<Dist>>, KernelMismatch> {
        self.try_into_state()
    }

    /// Consume into shared BFS levels, or a [`KernelMismatch`].
    pub fn try_into_bfs(self) -> Result<Arc<Vec<u32>>, KernelMismatch> {
        self.try_into_state()
    }

    /// Consume into a shared PPR state, or a [`KernelMismatch`].
    pub fn try_into_ppr(self) -> Result<Arc<PprState>, KernelMismatch> {
        self.try_into_state()
    }

    /// Consume into a shared random-walk state, or a [`KernelMismatch`].
    pub fn try_into_random_walk(self) -> Result<Arc<RwState>, KernelMismatch> {
        self.try_into_state()
    }
}

impl fmt::Debug for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryResult")
            .field("kernel", &self.kernel)
            .field("kernel_id", &self.kernel_id)
            .field("state_type", &self.state_type)
            .finish()
    }
}

/// The pre-registry query API: a closed enum over the four built-in
/// kernels. Kept as a thin shim — [`Self::to_query`] converts to the open
/// [`Query`] form and submissions flow through the registry, producing
/// byte-identical results. Prefer [`Query`] for new code: it covers every
/// registered kernel, not just these four.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// Single-source shortest paths from `source`.
    Sssp {
        /// The source vertex.
        source: VertexId,
    },
    /// Breadth-first search levels from `source`.
    Bfs {
        /// The source vertex.
        source: VertexId,
    },
    /// Personalized PageRank seeded at `seed`.
    Ppr {
        /// The seed vertex.
        seed: VertexId,
        /// Push-computation parameters.
        config: PprConfig,
    },
    /// A batch of bounded random walks from `source`.
    RandomWalk {
        /// The source vertex.
        source: VertexId,
        /// Walk parameters.
        config: RandomWalkConfig,
    },
}

impl QuerySpec {
    /// The vertex this query forks from.
    pub fn source(&self) -> VertexId {
        match *self {
            QuerySpec::Sssp { source }
            | QuerySpec::Bfs { source }
            | QuerySpec::RandomWalk { source, .. } => source,
            QuerySpec::Ppr { seed, .. } => seed,
        }
    }

    /// The open-API form of this spec: the registered built-in kernel name
    /// plus the config rendered as canonical parameters.
    pub fn to_query(&self) -> Query {
        match *self {
            QuerySpec::Sssp { source } => Query::kernel("sssp").source(source),
            QuerySpec::Bfs { source } => Query::kernel("bfs").source(source),
            QuerySpec::Ppr { seed, config } => Query {
                kernel: "ppr".to_string(),
                source: Some(seed),
                params: registry::ppr_params(&config),
            },
            QuerySpec::RandomWalk { source, config } => Query {
                kernel: "random_walk".to_string(),
                source: Some(source),
                params: registry::random_walk_params(&config),
            },
        }
    }

    /// Batching key: queries with equal keys may share one engine run.
    ///
    /// Registry-derived (the *built-in* registration ids + canonical
    /// params), so against a registry whose built-in names are unshadowed —
    /// every [`KernelRegistry::with_builtins`](crate::KernelRegistry)
    /// registry, i.e. any service not using
    /// `register_kernel_replacing("sssp", …)` — a spec and the equivalent
    /// [`Query`] produce the *same* key and the two APIs batch and cache
    /// together. (A service that *has* shadowed a built-in name keys live
    /// submissions by the replacement's id; this standalone method keeps
    /// returning the built-in id, since it has no registry to consult.)
    /// Float parameters are keyed by their bit patterns: exact-equality
    /// grouping, which is what batchability requires (two PPR queries with
    /// different epsilons must not share a run).
    pub fn batch_key(&self) -> BatchKey {
        let (kernel, params) = match *self {
            QuerySpec::Sssp { .. } => (KernelId::SSSP, QueryParams::new()),
            QuerySpec::Bfs { .. } => (KernelId::BFS, QueryParams::new()),
            QuerySpec::Ppr { config, .. } => (KernelId::PPR, registry::ppr_params(&config)),
            QuerySpec::RandomWalk { config, .. } => {
                (KernelId::RANDOM_WALK, registry::random_walk_params(&config))
            }
        };
        BatchKey { kernel, params }
    }

    /// Cache key identifying this exact query: batch key plus source.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey { key: self.batch_key(), source: self.source() }
    }

    /// Human-readable kernel name (metrics/log labels).
    pub fn kernel_name(&self) -> &'static str {
        match self {
            QuerySpec::Sssp { .. } => "sssp",
            QuerySpec::Bfs { .. } => "bfs",
            QuerySpec::Ppr { .. } => "ppr",
            QuerySpec::RandomWalk { .. } => "random_walk",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_kernel_same_config_share_a_batch_key() {
        let a = QuerySpec::Sssp { source: 1 };
        let b = QuerySpec::Sssp { source: 2 };
        assert_eq!(a.batch_key(), b.batch_key());
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn different_kernels_do_not_share_a_batch_key() {
        let a = QuerySpec::Sssp { source: 1 };
        let b = QuerySpec::Bfs { source: 1 };
        assert_ne!(a.batch_key(), b.batch_key());
    }

    #[test]
    fn ppr_config_differences_split_batches() {
        let base = PprConfig::default();
        let a = QuerySpec::Ppr { seed: 1, config: base };
        let b =
            QuerySpec::Ppr { seed: 2, config: PprConfig { epsilon: base.epsilon * 2.0, ..base } };
        let c = QuerySpec::Ppr { seed: 3, config: base };
        assert_ne!(a.batch_key(), b.batch_key());
        assert_eq!(a.batch_key(), c.batch_key());
    }

    #[test]
    fn random_walk_seed_is_part_of_the_key() {
        let base = RandomWalkConfig::default();
        let a = QuerySpec::RandomWalk { source: 1, config: base };
        let b = QuerySpec::RandomWalk {
            source: 1,
            config: RandomWalkConfig { seed: base.seed + 1, ..base },
        };
        assert_ne!(a.batch_key(), b.batch_key());
    }

    #[test]
    fn source_accessor_covers_all_variants() {
        assert_eq!(QuerySpec::Sssp { source: 7 }.source(), 7);
        assert_eq!(QuerySpec::Bfs { source: 8 }.source(), 8);
        assert_eq!(QuerySpec::Ppr { seed: 9, config: PprConfig::default() }.source(), 9);
        assert_eq!(
            QuerySpec::RandomWalk { source: 10, config: RandomWalkConfig::default() }.source(),
            10
        );
    }

    #[test]
    fn spec_and_builder_query_share_keys() {
        // The legacy enum and the open builder API must batch and cache
        // together when they mean the same query.
        let registry = crate::KernelRegistry::with_builtins();
        let spec = QuerySpec::Ppr { seed: 5, config: PprConfig::default() };
        let query = Query::kernel("ppr").source(5);
        let resolved = registry.resolve(query.kernel_name(), query.params()).unwrap();
        let builder_key = BatchKey { kernel: resolved.id, params: resolved.params };
        assert_eq!(spec.batch_key(), builder_key);

        // And an explicitly-specified default parameter canonicalizes to the
        // same key as an omitted one.
        let explicit = Query::kernel("ppr").source(5).param("alpha", PprConfig::default().alpha);
        let resolved = registry.resolve(explicit.kernel_name(), explicit.params()).unwrap();
        assert_eq!(spec.batch_key(), BatchKey { kernel: resolved.id, params: resolved.params });
    }

    #[test]
    fn query_builder_accumulates_source_and_params() {
        let q = Query::kernel("khop").source(3).param("k", 4u64).param("weighted", true);
        assert_eq!(q.kernel_name(), "khop");
        assert_eq!(q.source_vertex(), Some(3));
        assert_eq!(q.params().get("k"), Some(&ParamValue::U64(4)));
        assert_eq!(q.params().get("weighted"), Some(&ParamValue::Bool(true)));
        assert_eq!(Query::kernel("khop").source_vertex(), None);
    }

    #[test]
    fn result_accessors_downcast_and_name_the_kernel_on_mismatch() {
        let result = QueryResult::from_state(KernelId::SSSP, "sssp", vec![0 as Dist, 7, 3]);
        assert_eq!(result.kernel_name(), "sssp");
        assert_eq!(result.as_sssp().unwrap(), &vec![0 as Dist, 7, 3]);
        assert!(result.as_bfs().is_none(), "old-style accessor: silent None");
        let err = result.try_bfs().unwrap_err();
        assert_eq!(err.kernel, "sssp");
        assert!(err.actual.contains("Vec"), "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains("sssp"), "error names the actual kernel: {rendered}");
        let dist = result.clone().try_into_sssp().unwrap();
        assert_eq!(dist[1], 7);
        assert!(result.try_into_bfs().is_err());
    }
}
