//! Completion handles returned by `submit`.
//!
//! A [`Ticket`] is a one-shot future the caller can block on. The batcher
//! thread fulfils it with a shared [`QueryResult`] (shared, because a cache
//! hit and several waiters may all observe the same result object), or with
//! a [`ServiceError`] if the service shuts down before the query runs.
//!
//! Tickets are typed: `Ticket` (= `Ticket<QueryResult>`) resolves to the
//! erased result, while [`Ticket::typed`] re-types the handle to the
//! kernel's concrete state so that [`wait`](Ticket::wait) performs the
//! downcast — checked, with an error naming the actual kernel on mismatch:
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use fg_graph::Dist;
//! # use fg_service::{ForkGraphService, Query};
//! # fn demo(service: &ForkGraphService) -> Result<(), fg_service::ServiceError> {
//! let handle = service.handle();
//! let ticket = handle.submit_query(Query::kernel("sssp").source(7))?.typed::<Vec<Dist>>();
//! let distances: Arc<Vec<Dist>> = ticket.wait()?;
//! # let _ = distances; Ok(())
//! # }
//! ```

use std::any::{Any, TypeId};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::query::QueryResult;
use crate::ServiceError;

pub(crate) struct Slot {
    state: Mutex<Option<Result<Arc<QueryResult>, ServiceError>>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Slot { state: Mutex::new(None), ready: Condvar::new() })
    }

    /// Fulfil the slot; later fulfilments are ignored (first writer wins).
    pub(crate) fn fulfil(&self, outcome: Result<Arc<QueryResult>, ServiceError>) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.ready.notify_all();
        }
    }
}

/// Convert a fulfilled result into the ticket's payload type: the shared
/// [`QueryResult`] itself when `R = QueryResult` (no copy — cache hits stay
/// pointer-shared), a checked state downcast otherwise.
fn convert<R: Any + Send + Sync>(result: Arc<QueryResult>) -> Result<Arc<R>, ServiceError> {
    if TypeId::of::<R>() == TypeId::of::<QueryResult>() {
        let any: Arc<dyn Any + Send + Sync> = result;
        return Ok(Arc::downcast(any).expect("R is QueryResult"));
    }
    match result.try_state::<R>() {
        Ok(_) => Ok(Arc::downcast(Arc::clone(result.state())).expect("checked above")),
        Err(mismatch) => Err(ServiceError::ResultMismatch(mismatch)),
    }
}

/// A handle to one submitted query's eventual result, typed by the payload
/// [`Self::wait`] yields (`QueryResult` by default; a concrete kernel state
/// after [`Self::typed`]).
pub struct Ticket<R: Any + Send + Sync = QueryResult> {
    pub(crate) slot: Arc<Slot>,
    _payload: PhantomData<fn() -> R>,
}

impl<R: Any + Send + Sync> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("ready", &self.is_ready()).finish()
    }
}

impl<R: Any + Send + Sync> Ticket<R> {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        Ticket { slot, _payload: PhantomData }
    }

    /// Ticket that is already fulfilled (cache-hit fast path).
    pub(crate) fn ready(outcome: Result<Arc<QueryResult>, ServiceError>) -> Self {
        let slot = Slot::new();
        slot.fulfil(outcome);
        Ticket::new(slot)
    }

    /// Re-type this ticket to yield the kernel's concrete state `S`.
    /// Free — no synchronisation, no copy; the downcast happens (checked)
    /// when the result is read.
    pub fn typed<S: Any + Send + Sync>(self) -> Ticket<S> {
        Ticket { slot: self.slot, _payload: PhantomData }
    }

    /// Forget the payload type, yielding the erased [`QueryResult`] again.
    pub fn untyped(self) -> Ticket {
        Ticket { slot: self.slot, _payload: PhantomData }
    }

    /// Block until the result is available. For a typed ticket the payload
    /// is downcast-checked: a mismatch yields
    /// [`ServiceError::ResultMismatch`] naming the kernel that actually
    /// produced the result.
    pub fn wait(&self) -> Result<Arc<R>, ServiceError> {
        let mut state = self.slot.state.lock();
        while state.is_none() {
            self.slot.ready.wait(&mut state);
        }
        state.as_ref().unwrap().clone().and_then(convert)
    }

    /// Block for at most `timeout`; `None` if the result is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Arc<R>, ServiceError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.slot.state.lock();
        while state.is_none() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            self.slot.ready.wait_for(&mut state, remaining);
        }
        Some(state.as_ref().unwrap().clone().and_then(convert))
    }

    /// Non-blocking probe.
    pub fn try_result(&self) -> Option<Result<Arc<R>, ServiceError>> {
        self.slot.state.lock().as_ref().map(|outcome| outcome.clone().and_then(convert))
    }

    /// Whether the result is available without blocking.
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::KernelId;

    fn bfs_result(levels: Vec<u32>) -> Arc<QueryResult> {
        Arc::new(QueryResult::from_state(KernelId::BFS, "bfs", levels))
    }

    #[test]
    fn ready_ticket_resolves_immediately() {
        let t: Ticket = Ticket::ready(Ok(bfs_result(vec![0])));
        assert!(t.is_ready());
        assert_eq!(t.wait().unwrap().as_bfs().unwrap(), &vec![0]);
    }

    #[test]
    fn wait_blocks_until_fulfilment() {
        let slot = Slot::new();
        let ticket: Ticket = Ticket::new(Arc::clone(&slot));
        let fulfiller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.fulfil(Ok(bfs_result(vec![1, 2])));
        });
        assert_eq!(ticket.wait().unwrap().as_bfs().unwrap(), &vec![1, 2]);
        fulfiller.join().unwrap();
    }

    #[test]
    fn wait_timeout_returns_none_while_pending() {
        let ticket: Ticket = Ticket::new(Slot::new());
        assert!(ticket.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(!ticket.is_ready());
        assert!(ticket.try_result().is_none());
    }

    #[test]
    fn first_fulfilment_wins() {
        let slot = Slot::new();
        slot.fulfil(Ok(bfs_result(vec![7])));
        slot.fulfil(Err(ServiceError::ShuttingDown));
        let t: Ticket = Ticket::new(slot);
        assert_eq!(t.wait().unwrap().as_bfs().unwrap(), &vec![7]);
    }

    #[test]
    fn typed_ticket_downcasts_and_checks() {
        let t: Ticket = Ticket::ready(Ok(bfs_result(vec![3, 4])));
        // Correct type: the state arrives as a shared concrete value.
        let levels: Arc<Vec<u32>> = t.typed::<Vec<u32>>().wait().unwrap();
        assert_eq!(*levels, vec![3, 4]);

        // Wrong type: a typed error naming the actual kernel, not a panic.
        let t: Ticket = Ticket::ready(Ok(bfs_result(vec![3, 4])));
        let err = t.typed::<Vec<fg_graph::Dist>>().wait().unwrap_err();
        match err {
            ServiceError::ResultMismatch(mismatch) => {
                assert_eq!(mismatch.kernel, "bfs");
            }
            other => panic!("expected ResultMismatch, got {other:?}"),
        }
    }

    #[test]
    fn untyped_round_trip_preserves_the_slot() {
        let t: Ticket = Ticket::ready(Ok(bfs_result(vec![9])));
        let back = t.typed::<Vec<u32>>().untyped();
        assert_eq!(back.wait().unwrap().as_bfs().unwrap(), &vec![9]);
    }

    #[test]
    fn result_identity_is_preserved_through_wait() {
        // Cache hits hand the same Arc<QueryResult> to every waiter; wait
        // must not re-wrap it, or Arc::ptr_eq-based sharing tests (and
        // memory sharing itself) silently degrade.
        let shared = bfs_result(vec![1]);
        let a: Ticket = Ticket::ready(Ok(Arc::clone(&shared)));
        let b: Ticket = Ticket::ready(Ok(Arc::clone(&shared)));
        assert!(Arc::ptr_eq(&a.wait().unwrap(), &b.wait().unwrap()));
    }
}
