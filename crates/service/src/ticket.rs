//! Completion handles returned by `submit`.
//!
//! A [`Ticket`] is a one-shot future the caller can block on. The batcher
//! thread fulfils it with a shared [`QueryResult`] (shared, because a cache
//! hit and several waiters may all observe the same result object), or with a
//! [`ServiceError`] if the service shuts down before the query runs.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::query::QueryResult;
use crate::ServiceError;

pub(crate) struct Slot {
    state: Mutex<Option<Result<Arc<QueryResult>, ServiceError>>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Slot { state: Mutex::new(None), ready: Condvar::new() })
    }

    /// Fulfil the slot; later fulfilments are ignored (first writer wins).
    pub(crate) fn fulfil(&self, outcome: Result<Arc<QueryResult>, ServiceError>) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.ready.notify_all();
        }
    }
}

/// A handle to one submitted query's eventual result.
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("ready", &self.is_ready()).finish()
    }
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        Ticket { slot }
    }

    /// Ticket that is already fulfilled (cache-hit fast path).
    pub(crate) fn ready(outcome: Result<Arc<QueryResult>, ServiceError>) -> Self {
        let slot = Slot::new();
        slot.fulfil(outcome);
        Ticket { slot }
    }

    /// Block until the result is available.
    pub fn wait(&self) -> Result<Arc<QueryResult>, ServiceError> {
        let mut state = self.slot.state.lock();
        while state.is_none() {
            self.slot.ready.wait(&mut state);
        }
        state.as_ref().unwrap().clone()
    }

    /// Block for at most `timeout`; `None` if the result is still pending.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<Arc<QueryResult>, ServiceError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.slot.state.lock();
        while state.is_none() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            self.slot.ready.wait_for(&mut state, remaining);
        }
        state.clone()
    }

    /// Non-blocking probe.
    pub fn try_result(&self) -> Option<Result<Arc<QueryResult>, ServiceError>> {
        self.slot.state.lock().clone()
    }

    /// Whether the result is available without blocking.
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_ticket_resolves_immediately() {
        let t = Ticket::ready(Ok(Arc::new(QueryResult::Bfs(vec![0]))));
        assert!(t.is_ready());
        assert_eq!(*t.wait().unwrap(), QueryResult::Bfs(vec![0]));
    }

    #[test]
    fn wait_blocks_until_fulfilment() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        let fulfiller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.fulfil(Ok(Arc::new(QueryResult::Bfs(vec![1, 2]))));
        });
        assert_eq!(*ticket.wait().unwrap(), QueryResult::Bfs(vec![1, 2]));
        fulfiller.join().unwrap();
    }

    #[test]
    fn wait_timeout_returns_none_while_pending() {
        let ticket = Ticket::new(Slot::new());
        assert!(ticket.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(!ticket.is_ready());
        assert!(ticket.try_result().is_none());
    }

    #[test]
    fn first_fulfilment_wins() {
        let slot = Slot::new();
        slot.fulfil(Ok(Arc::new(QueryResult::Bfs(vec![7]))));
        slot.fulfil(Err(ServiceError::ShuttingDown));
        let t = Ticket::new(slot);
        assert_eq!(*t.wait().unwrap(), QueryResult::Bfs(vec![7]));
    }
}
