//! Adaptive per-batch worker sizing.
//!
//! The batcher used to run every micro-batch with the fixed
//! `EngineConfig::num_threads` it was started with — a 2-query batch fanned
//! out to an 8-worker crew (pure coordination overhead), while a 64-query
//! batch on a 2-thread config starved. The persistent
//! [`WorkerPool`](forkgraph_core::WorkerPool) makes varying the worker count
//! per run cheap (non-participating workers just stay parked), so the
//! batcher now picks the effective worker count per micro-batch with
//! [`effective_workers`] — a pure function of batch size, partition count,
//! and the configured cap, kept free of service state so the policy is
//! directly unit- and property-testable.

/// Queries one engine worker can saturate in a micro-batch run.
///
/// Inter-partition parallelism feeds on *concurrently runnable partitions*,
/// and each query contributes roughly one active frontier partition at a
/// time near the start of a run; two queries per worker keeps every worker
/// claiming without splitting the partition stream so thin that workers
/// mostly steal and park.
pub const QUERIES_PER_WORKER: usize = 2;

/// The engine worker count to use for one micro-batch.
///
/// Pure policy function (the whole adaptive-sizing decision lives here):
///
/// * never more workers than `max_workers` (the configured cap — also the
///   persistent pool's steady-state capacity) or than `num_partitions`
///   (the executor cannot use more);
/// * scale with offered load at [`QUERIES_PER_WORKER`] queries per worker,
///   so a 1–2 query batch runs serially (a parallel run would be pure
///   dispatch overhead) and batches grow their crew linearly until they hit
///   a cap;
/// * degenerate cases (`max_workers <= 1`, fewer than 2 partitions, empty
///   batch) run serially.
pub fn effective_workers(batch_size: usize, num_partitions: usize, max_workers: usize) -> usize {
    if max_workers <= 1 || num_partitions < 2 || batch_size == 0 {
        return 1;
    }
    batch_size.div_ceil(QUERIES_PER_WORKER).clamp(1, max_workers.min(num_partitions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batches_run_serially() {
        assert_eq!(effective_workers(1, 24, 8), 1);
        assert_eq!(effective_workers(2, 24, 8), 1);
    }

    #[test]
    fn large_batches_use_the_full_cap() {
        assert_eq!(effective_workers(64, 24, 8), 8);
        assert_eq!(effective_workers(16, 24, 8), 8);
    }

    #[test]
    fn mid_batches_scale_linearly() {
        assert_eq!(effective_workers(4, 24, 8), 2);
        assert_eq!(effective_workers(6, 24, 8), 3);
        assert_eq!(effective_workers(8, 24, 8), 4);
    }

    #[test]
    fn partition_count_caps_the_crew() {
        assert_eq!(effective_workers(64, 3, 8), 3);
        assert_eq!(effective_workers(64, 1, 8), 1);
    }

    #[test]
    fn degenerate_configs_are_serial() {
        assert_eq!(effective_workers(64, 24, 1), 1);
        assert_eq!(effective_workers(64, 24, 0), 1);
        assert_eq!(effective_workers(0, 24, 8), 1);
    }

    /// Property sweep: the policy never exceeds any cap, never returns 0,
    /// and is monotone in batch size.
    #[test]
    fn policy_respects_caps_and_is_monotone() {
        for parts in [1usize, 2, 3, 8, 24, 64] {
            for cap in [1usize, 2, 4, 8, 16] {
                let mut previous = 0usize;
                for batch in 0..200usize {
                    let w = effective_workers(batch, parts, cap);
                    assert!(w >= 1, "batch {batch} parts {parts} cap {cap}");
                    assert!(w <= cap.max(1), "batch {batch} parts {parts} cap {cap}");
                    if parts >= 2 && cap >= 2 {
                        assert!(w <= parts, "batch {batch} parts {parts} cap {cap}");
                    }
                    assert!(w >= previous || batch == 0, "monotonicity violated at {batch}");
                    previous = w;
                }
            }
        }
    }
}
