//! Adaptive per-batch worker sizing.
//!
//! The batcher used to run every micro-batch with the fixed
//! `EngineConfig::num_threads` it was started with — a 2-query batch fanned
//! out to an 8-worker crew (pure coordination overhead), while a 64-query
//! batch on a 2-thread config starved. The persistent
//! [`WorkerPool`](forkgraph_core::WorkerPool) makes varying the worker count
//! per run cheap (non-participating workers just stay parked), so the
//! batcher now picks the effective worker count per micro-batch with
//! [`effective_workers`] — a pure function of batch size, partition count,
//! and the configured cap, kept free of service state so the policy is
//! directly unit- and property-testable.

/// Queries one engine worker can saturate in a micro-batch run.
///
/// Inter-partition parallelism feeds on *concurrently runnable partitions*,
/// and each query contributes roughly one active frontier partition at a
/// time near the start of a run; two queries per worker keeps every worker
/// claiming without splitting the partition stream so thin that workers
/// mostly steal and park.
pub const QUERIES_PER_WORKER: usize = 2;

/// The engine worker count to use for one micro-batch.
///
/// Pure policy function (the whole adaptive-sizing decision lives here):
///
/// * never more workers than `max_workers` (the configured cap — also the
///   persistent pool's steady-state capacity) or than `num_partitions`
///   (the executor cannot use more);
/// * scale with offered load at [`QUERIES_PER_WORKER`] queries per worker,
///   so a 1–2 query batch runs serially (a parallel run would be pure
///   dispatch overhead) and batches grow their crew linearly until they hit
///   a cap;
/// * degenerate cases (`max_workers <= 1`, fewer than 2 partitions, empty
///   batch) run serially.
pub fn effective_workers(batch_size: usize, num_partitions: usize, max_workers: usize) -> usize {
    if max_workers <= 1 || num_partitions < 2 || batch_size == 0 {
        return 1;
    }
    batch_size.div_ceil(QUERIES_PER_WORKER).clamp(1, max_workers.min(num_partitions))
}

/// Kernel-weighted [`effective_workers`] for a single-kernel batch.
///
/// `weight` is the cohort kernel's declared relative per-query work
/// ([`forkgraph_core::FppKernel::batch_weight`], surfaced through
/// [`forkgraph_core::DynKernel::batch_weight`]); it scales the batch size
/// the base policy sees. A radius-bounded probe kernel with weight `0.5`
/// needs twice the queries to justify the same crew; a heavy kernel with
/// weight `2.0` reaches the cap at half the batch size. Non-finite or
/// non-positive weights are treated as `1.0` (a registered kernel must
/// never be able to break sizing), and the result obeys exactly the caps of
/// the unweighted policy.
pub fn effective_workers_weighted(
    batch_size: usize,
    num_partitions: usize,
    max_workers: usize,
    weight: f64,
) -> usize {
    effective_workers_mixed(&[(batch_size, weight)], num_partitions, max_workers)
}

/// Sizing for a **heterogeneous** run (`run_multi`): `groups` is one
/// `(cohort size, kernel batch_weight)` pair per kernel cohort sharing the
/// pass, and the offered load the base policy sees is the *sum* of
/// `size × weight` over all of them — a mixed batch of 4 heavy (weight 2.0)
/// and 8 light (weight 0.5) queries offers `4×2 + 8×0.5 = 12` load, not 12
/// raw queries. A single-element slice is exactly
/// [`effective_workers_weighted`]; weight sanitisation (non-finite /
/// non-positive → `1.0`) applies per group, and the caps of the base policy
/// are obeyed unchanged.
pub fn effective_workers_mixed(
    groups: &[(usize, f64)],
    num_partitions: usize,
    max_workers: usize,
) -> usize {
    let total: usize = groups.iter().map(|&(size, _)| size).sum();
    let offered: f64 = groups
        .iter()
        .map(|&(size, weight)| {
            let weight = if weight.is_finite() && weight > 0.0 { weight } else { 1.0 };
            size as f64 * weight
        })
        .sum();
    // Ceil keeps any non-empty batch non-empty, so the degenerate-case
    // handling stays entirely in the base policy.
    let offered = offered.ceil();
    let offered = if offered >= usize::MAX as f64 { usize::MAX } else { offered as usize };
    effective_workers(offered.max(usize::from(total > 0)), num_partitions, max_workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batches_run_serially() {
        assert_eq!(effective_workers(1, 24, 8), 1);
        assert_eq!(effective_workers(2, 24, 8), 1);
    }

    #[test]
    fn large_batches_use_the_full_cap() {
        assert_eq!(effective_workers(64, 24, 8), 8);
        assert_eq!(effective_workers(16, 24, 8), 8);
    }

    #[test]
    fn mid_batches_scale_linearly() {
        assert_eq!(effective_workers(4, 24, 8), 2);
        assert_eq!(effective_workers(6, 24, 8), 3);
        assert_eq!(effective_workers(8, 24, 8), 4);
    }

    #[test]
    fn partition_count_caps_the_crew() {
        assert_eq!(effective_workers(64, 3, 8), 3);
        assert_eq!(effective_workers(64, 1, 8), 1);
    }

    #[test]
    fn degenerate_configs_are_serial() {
        assert_eq!(effective_workers(64, 24, 1), 1);
        assert_eq!(effective_workers(64, 24, 0), 1);
        assert_eq!(effective_workers(0, 24, 8), 1);
    }

    #[test]
    fn weighted_sizing_scales_the_offered_load() {
        // Weight 1 is exactly the base policy.
        for batch in 0..100 {
            assert_eq!(
                effective_workers_weighted(batch, 24, 8, 1.0),
                effective_workers(batch, 24, 8)
            );
        }
        // A half-weight kernel needs twice the batch for the same crew…
        assert_eq!(effective_workers_weighted(8, 24, 8, 0.5), effective_workers(4, 24, 8));
        // …and a double-weight kernel reaches the cap at half the batch.
        assert_eq!(effective_workers_weighted(4, 24, 8, 2.0), effective_workers(8, 24, 8));
    }

    #[test]
    fn pathological_weights_fall_back_to_unweighted() {
        for weight in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                effective_workers_weighted(6, 24, 8, weight),
                effective_workers(6, 24, 8),
                "weight {weight}"
            );
        }
        // Huge-but-finite weights saturate at the caps instead of wrapping.
        assert_eq!(effective_workers_weighted(6, 24, 8, 1e300), 8);
        // An empty batch stays serial regardless of weight.
        assert_eq!(effective_workers_weighted(0, 24, 8, 100.0), 1);
    }

    #[test]
    fn mixed_sizing_sums_per_group_offered_load() {
        // One group degenerates to the weighted single-kernel policy.
        for batch in 0..50 {
            for weight in [0.5, 1.0, 2.0] {
                assert_eq!(
                    effective_workers_mixed(&[(batch, weight)], 24, 8),
                    effective_workers_weighted(batch, 24, 8, weight),
                );
            }
        }
        // Two unit-weight cohorts offer the same load as one merged cohort.
        assert_eq!(
            effective_workers_mixed(&[(6, 1.0), (10, 1.0)], 24, 8),
            effective_workers(16, 24, 8)
        );
        // Heterogeneous weights: 4×2.0 + 8×0.5 = 12 offered load — more than
        // the 8 light queries alone justify, less than 12 heavy ones would.
        assert_eq!(
            effective_workers_mixed(&[(4, 2.0), (8, 0.5)], 24, 8),
            effective_workers(12, 24, 8)
        );
        assert!(
            effective_workers_mixed(&[(4, 2.0), (8, 0.5)], 24, 8)
                > effective_workers_weighted(8, 24, 8, 0.5)
        );
        // A lone heavy cohort joined by a light one can only grow the crew.
        assert!(
            effective_workers_mixed(&[(4, 2.0), (8, 0.5)], 24, 8)
                >= effective_workers_weighted(4, 24, 8, 2.0)
        );
        // Per-group weight sanitisation: a NaN-weight group counts at 1.0
        // instead of poisoning the whole mix.
        assert_eq!(
            effective_workers_mixed(&[(6, f64::NAN), (4, 2.0)], 24, 8),
            effective_workers_mixed(&[(6, 1.0), (4, 2.0)], 24, 8)
        );
        // Degenerate mixes stay serial.
        assert_eq!(effective_workers_mixed(&[], 24, 8), 1);
        assert_eq!(effective_workers_mixed(&[(0, 1.0), (0, 2.0)], 24, 8), 1);
        // Fractional loads round up: sub-query offered load still runs.
        assert_eq!(effective_workers_mixed(&[(1, 0.25)], 24, 8), 1);
    }

    /// Property sweep: the policy never exceeds any cap, never returns 0,
    /// and is monotone in batch size.
    #[test]
    fn policy_respects_caps_and_is_monotone() {
        for parts in [1usize, 2, 3, 8, 24, 64] {
            for cap in [1usize, 2, 4, 8, 16] {
                let mut previous = 0usize;
                for batch in 0..200usize {
                    let w = effective_workers(batch, parts, cap);
                    assert!(w >= 1, "batch {batch} parts {parts} cap {cap}");
                    assert!(w <= cap.max(1), "batch {batch} parts {parts} cap {cap}");
                    if parts >= 2 && cap >= 2 {
                        assert!(w <= parts, "batch {batch} parts {parts} cap {cap}");
                    }
                    assert!(w >= previous || batch == 0, "monotonicity violated at {batch}");
                    previous = w;
                }
            }
        }
    }
}
