//! A small LRU map used for the service's result cache.
//!
//! Recency is tracked with a monotonically increasing stamp per entry;
//! eviction scans for the minimum stamp. That makes eviction O(capacity), but
//! the cache holds at most a few thousand entries and evicts at most once per
//! engine-run result, so the scan is noise next to a graph traversal. In
//! exchange, lookups and inserts are single-HashMap operations with no
//! intrusive list to maintain.

use std::collections::HashMap;
use std::hash::Hash;

pub struct LruCache<K, V> {
    capacity: usize,
    clock: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries; `capacity == 0`
    /// disables it (every `get` misses, every `insert` is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, clock: 0, map: HashMap::with_capacity(capacity.min(4096)) }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry for which `keep` returns `false`, preserving the
    /// recency stamps of the survivors.
    ///
    /// This is the targeted-invalidation primitive: when a kernel
    /// registration is replaced, the serving layer evicts the shadowed
    /// registration's entries eagerly instead of letting them squat in the
    /// capacity budget until normal eviction cycles them out. (Key hygiene
    /// alone already guarantees stale entries can never be *served* — the
    /// new registration has a new id — so this is purely a capacity
    /// reclamation.)
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        self.map.retain(|key, (value, _)| keep(key, value));
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = clock;
                Some(&*value)
            }
            None => None,
        }
    }

    /// Insert or refresh `key`, evicting the least-recently-used entry if the
    /// cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.clock));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // refresh "a"; "b" is now LRU
        cache.insert("c", 3);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.get(&"b"), Some(&2));
    }

    #[test]
    fn retain_drops_only_the_filtered_entries_and_keeps_recency() {
        let mut cache = LruCache::new(3);
        cache.insert("old-a", 1);
        cache.insert("old-b", 2);
        cache.insert("new-c", 3);
        cache.retain(|k, _| !k.starts_with("old"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&"old-a"), None);
        assert_eq!(cache.get(&"new-c"), Some(&3));
        // Freed capacity is reusable without evicting the survivor.
        cache.insert("d", 4);
        cache.insert("e", 5);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&"new-c"), Some(&3));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = LruCache::new(0);
        cache.insert("a", 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"a"), None);
    }
}
