//! The query-serving core: admission control, micro-batching, dispatch.
//!
//! One background *batcher* thread owns a long-lived [`ForkGraphEngine`] and
//! repeatedly: waits for pending submissions, lets a batch accumulate for the
//! configured window (or until the batch-size cap), drains **every ready
//! [`crate::query::BatchKey`] cohort** from the queue (up to
//! [`ServiceConfig::max_kernels_per_run`] cohorts /
//! [`ServiceConfig::max_batch_size`] total queries), runs them all as **one**
//! type-erased engine run — [`ForkGraphEngine::run_dyn`] for a lone cohort,
//! a heterogeneous [`ForkGraphEngine::run_multi`] shared partition pass when
//! different kernels are waiting — and demultiplexes the per-`(cohort,
//! source)` results back to the submitters' tickets. Because dispatch is
//! erased, the batcher is kernel-agnostic: a kernel registered five minutes
//! ago flows through micro-batching, the persistent worker pool, cross-kernel
//! pass sharing, and the result cache exactly like the built-ins.
//!
//! The submit path resolves each query against the service's
//! [`KernelRegistry`] (typed errors for unknown kernels and bad
//! parameters), is admission-controlled by a bounded queue — when full,
//! `submit` fails fast with [`ServiceError::Saturated`] instead of blocking
//! — and fronted by an LRU result cache so repeated hot queries never reach
//! the engine.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use fg_graph::mutation::{EdgeMutation, VersionedGraph};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{Dist, Edge, VertexId, Weight};
use fg_metrics::{BatchRecord, PoolSnapshot, ServiceCounters, ServiceSnapshot};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use fg_trace::{EventKind, TraceSink};
use forkgraph_core::{EngineConfig, ErasedState, ExecutorMode, ForkGraphEngine, WorkerPool};

use crate::adaptive;
use crate::lru::LruCache;
use crate::query::{BatchKey, CacheKey, KernelMismatch, Query, QueryResult, QuerySpec};
use crate::registry::{KernelFactory, KernelId, KernelRegistry, RegistryError, ResolvedKernel};
use crate::ticket::{Slot, Ticket};

/// Tuning knobs of the serving layer.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// How long the batcher lets submissions accumulate after it starts
    /// forming a batch. Larger windows mean fuller batches (better cache
    /// reuse per the paper's batching thesis) at the cost of added latency.
    pub batch_window: Duration,
    /// Hard cap on queries per consolidated engine run.
    pub max_batch_size: usize,
    /// Admission-control bound on the pending queue; submissions beyond it
    /// are shed with [`ServiceError::Saturated`].
    pub max_queue_depth: usize,
    /// Capacity of the LRU result cache in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum number of *distinct kernel cohorts* one dispatched run may
    /// consolidate. With `1` the batcher drains exactly one
    /// [`BatchKey`] cohort per engine run (the pre-multi-kernel behaviour);
    /// above that, every ready cohort — up to this many, within
    /// [`Self::max_batch_size`] total queries — shares a single
    /// heterogeneous partition pass
    /// ([`ForkGraphEngine::run_multi`]), so an SSSP cohort and a PPR cohort
    /// waiting on the same graph no longer pay one sweep each.
    pub max_kernels_per_run: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_window: Duration::from_millis(2),
            max_batch_size: 64,
            max_queue_depth: 1024,
            cache_capacity: 1024,
            max_kernels_per_run: 4,
        }
    }
}

/// Typed failures surfaced to submitters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control shed the query: the pending queue is at capacity.
    /// Callers should back off and retry; blocking here would just move the
    /// queue into the clients.
    Saturated {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// The configured `max_queue_depth`.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The query names a source vertex the graph doesn't have; rejected at
    /// submit time so a bad query can never reach (and panic) the engine.
    InvalidSource {
        /// The offending source vertex.
        source: VertexId,
        /// Number of vertices in the served graph.
        num_vertices: usize,
    },
    /// The query was built without [`Query::source`].
    MissingSource {
        /// The kernel the query named.
        kernel: String,
    },
    /// No kernel is registered under the query's name.
    UnknownKernel {
        /// The name the query asked for.
        name: String,
    },
    /// The named kernel's factory rejected the query's parameters.
    InvalidParams {
        /// The kernel whose factory rejected them.
        kernel: String,
        /// The factory's reason (names the offending parameter).
        reason: String,
    },
    /// A typed [`Ticket`] asked for a state type this result's kernel does
    /// not produce.
    ResultMismatch(KernelMismatch),
    /// The engine panicked while running this query's batch. The batcher
    /// survives and keeps serving subsequent batches.
    EngineFailure,
    /// An edge mutation was rejected before it reached the log (endpoint out
    /// of range, self-loop).
    InvalidMutation {
        /// The store's reason for refusing it.
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Saturated { queue_depth, capacity } => {
                write!(f, "service saturated: {queue_depth} queued of {capacity} capacity")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::InvalidSource { source, num_vertices } => {
                write!(f, "source vertex {source} out of range (graph has {num_vertices} vertices)")
            }
            ServiceError::MissingSource { kernel } => {
                write!(f, "query for kernel {kernel:?} has no source vertex (call .source(v))")
            }
            ServiceError::UnknownKernel { name } => {
                write!(f, "no kernel registered under {name:?}")
            }
            ServiceError::InvalidParams { kernel, reason } => {
                write!(f, "invalid parameters for kernel {kernel:?}: {reason}")
            }
            ServiceError::ResultMismatch(mismatch) => mismatch.fmt(f),
            ServiceError::EngineFailure => write!(f, "engine failed while executing the batch"),
            ServiceError::InvalidMutation { reason } => {
                write!(f, "invalid mutation: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<KernelMismatch> for ServiceError {
    fn from(mismatch: KernelMismatch) -> Self {
        ServiceError::ResultMismatch(mismatch)
    }
}

impl From<RegistryError> for ServiceError {
    fn from(error: RegistryError) -> Self {
        match error {
            RegistryError::UnknownKernel { name } => ServiceError::UnknownKernel { name },
            RegistryError::InvalidParams { kernel, reason } => {
                ServiceError::InvalidParams { kernel, reason }
            }
            // Registration-time-only error; mapped defensively.
            RegistryError::DuplicateName { name } => ServiceError::UnknownKernel { name },
        }
    }
}

/// One admitted query, resolved and keyed, waiting in the pending queue.
struct Pending {
    resolved: ResolvedKernel,
    source: VertexId,
    batch_key: BatchKey,
    slot: Arc<Slot>,
    submitted_at: Instant,
    /// Trace correlation id minted at submit (0 when the service is
    /// untraced); ties this ticket's `Submit → Enqueue → JoinBatch →
    /// Resolve` events into one flow across threads.
    trace_id: u32,
}

struct Inner {
    queue: VecDeque<Pending>,
    shutdown: bool,
    /// Drain mode: new submissions are rejected with
    /// [`ServiceError::ShuttingDown`] while the batcher keeps flushing the
    /// already-admitted backlog. Unlike `shutdown`, draining does not stop
    /// the batcher — a front door can stop admitting, let every in-flight
    /// ticket resolve, and only then tear the service down.
    draining: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled on every submission and on shutdown; the batcher waits here.
    work_ready: Condvar,
    counters: Arc<ServiceCounters>,
    cache: Mutex<LruCache<CacheKey, Arc<QueryResult>>>,
    registry: Arc<KernelRegistry>,
    config: ServiceConfig,
    /// The versioned graph store: mutations are logged here and folded into
    /// a fresh [`PartitionedGraph`] snapshot at the batcher's quiesce points,
    /// so no in-flight engine run ever observes a half-applied batch.
    store: Arc<VersionedGraph>,
    /// Vertex count of the served graph, for submit-time source validation
    /// (mutations never add vertices, so this stays valid across versions).
    num_vertices: usize,
    /// Optional event sink; the whole submit/batch/resolve path is traced
    /// when present ([`ForkGraphService::start_traced`]).
    trace: Option<Arc<TraceSink>>,
}

impl Shared {
    /// One branch when untraced; see [`TraceSink::emit`].
    #[inline]
    fn emit(&self, kind: EventKind, a: u32, b: u32, c: u32) {
        if let Some(trace) = &self.trace {
            trace.emit(kind, a, b, c);
        }
    }

    /// Mint a flow correlation id, or 0 when untraced.
    fn next_trace_id(&self) -> u32 {
        self.trace.as_ref().map_or(0, |trace| trace.next_id())
    }
}

/// Cloneable submission endpoint, safe to hand to many client threads.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Submit an open-API [`Query`]. Returns a [`Ticket`] the caller can
    /// block on (or re-type with [`Ticket::typed`]), or a typed error when
    /// the kernel is unknown, its parameters are invalid, the source is out
    /// of range, or the service is saturated / shutting down. Never blocks
    /// beyond two short critical sections.
    pub fn submit_query(&self, query: Query) -> Result<Ticket, ServiceError> {
        let shared = &*self.shared;

        let source = query
            .source_vertex()
            .ok_or_else(|| ServiceError::MissingSource { kernel: query.kernel_name().into() })?;
        // Validate before anything else: an out-of-range source must never
        // reach the engine (it would panic the batcher thread).
        if source as usize >= shared.num_vertices {
            return Err(ServiceError::InvalidSource { source, num_vertices: shared.num_vertices });
        }

        // Resolve name → registration → instantiated kernel + canonical
        // params. Unknown names and bad params fail here, synchronously.
        let resolved = shared.registry.resolve(query.kernel_name(), query.params())?;
        let batch_key = BatchKey { kernel: resolved.id, params: resolved.params.clone() };
        let trace_id = shared.next_trace_id();
        shared.emit(EventKind::Submit, trace_id, resolved.id.as_u64() as u32, source);

        // Fast path: answer repeated hot queries from the LRU cache. A
        // pending mutation that can reach `source` (per-partition
        // over-approximation) makes any cached entry suspect, so such hits
        // are treated as misses and queued behind the quiesce point. The
        // pending check runs *under the cache lock*, which the batcher also
        // holds across quiesce-and-invalidate: a submission either observes
        // the pending log (miss), or runs after the purge (miss) — a stale
        // hit has no window.
        if shared.config.cache_capacity > 0 {
            let cache_key = CacheKey { key: batch_key.clone(), source };
            let hit = {
                let mut cache = shared.cache.lock();
                if shared.store.pending_affects(source) {
                    None
                } else {
                    cache.get(&cache_key).cloned()
                }
            };
            if let Some(result) = hit {
                shared.counters.on_cache_hit();
                shared.counters.record_latency(Duration::ZERO);
                shared.emit(EventKind::CacheHit, trace_id, resolved.id.as_u64() as u32, 0);
                return Ok(Ticket::ready(Ok(result)));
            }
        }

        let mut inner = shared.inner.lock();
        if inner.shutdown || inner.draining {
            return Err(ServiceError::ShuttingDown);
        }
        let depth = inner.queue.len();
        if depth >= shared.config.max_queue_depth {
            shared.counters.on_reject();
            return Err(ServiceError::Saturated {
                queue_depth: depth,
                capacity: shared.config.max_queue_depth,
            });
        }
        shared.counters.on_cache_miss();
        shared.counters.on_admit(depth + 1);
        shared.emit(EventKind::Enqueue, trace_id, (depth + 1) as u32, 0);
        let slot = Slot::new();
        inner.queue.push_back(Pending {
            resolved,
            source,
            batch_key,
            slot: Arc::clone(&slot),
            submitted_at: Instant::now(),
            trace_id,
        });
        drop(inner);
        shared.work_ready.notify_all();
        Ok(Ticket::new(slot))
    }

    /// Submit a legacy enum [`QuerySpec`] (thin shim over
    /// [`Self::submit_query`]; results are byte-identical).
    pub fn submit(&self, spec: QuerySpec) -> Result<Ticket, ServiceError> {
        self.submit_query(spec.to_query())
    }

    /// Submit-and-wait convenience wrapper for the open API.
    pub fn run_query(&self, query: Query) -> Result<Arc<QueryResult>, ServiceError> {
        self.submit_query(query)?.wait()
    }

    /// Submit-and-wait convenience wrapper for the legacy enum API.
    pub fn query(&self, spec: QuerySpec) -> Result<Arc<QueryResult>, ServiceError> {
        self.submit(spec)?.wait()
    }

    /// Submit an SSSP query from `source`.
    pub fn submit_sssp(&self, source: VertexId) -> Result<Ticket, ServiceError> {
        self.submit_query(Query::kernel("sssp").source(source))
    }

    /// Submit a BFS query from `source`.
    pub fn submit_bfs(&self, source: VertexId) -> Result<Ticket, ServiceError> {
        self.submit_query(Query::kernel("bfs").source(source))
    }

    /// Submit a PPR query seeded at `seed`.
    pub fn submit_ppr(&self, seed: VertexId, config: PprConfig) -> Result<Ticket, ServiceError> {
        self.submit(QuerySpec::Ppr { seed, config })
    }

    /// Submit a random-walk query from `source`.
    pub fn submit_random_walk(
        &self,
        source: VertexId,
        config: RandomWalkConfig,
    ) -> Result<Ticket, ServiceError> {
        self.submit(QuerySpec::RandomWalk { source, config })
    }

    /// The kernel registry queries are resolved against. Register custom
    /// kernels here (or with the [`Self::register_kernel`] convenience) and
    /// they are immediately servable — batching, admission control, pool
    /// dispatch, and caching included.
    pub fn registry(&self) -> &Arc<KernelRegistry> {
        &self.shared.registry
    }

    /// Register a kernel factory under `name` (no shadowing; see
    /// [`KernelRegistry::register`]).
    pub fn register_kernel(
        &self,
        name: &str,
        factory: impl KernelFactory + 'static,
    ) -> Result<KernelId, RegistryError> {
        self.shared.registry.register(name, factory)
    }

    /// Register a kernel factory under `name`, replacing any existing
    /// registration *and* eagerly evicting the replaced registration's
    /// cached results (they could never be served for the new kernel — keys
    /// embed the registration id — but they would squat in the cache's
    /// capacity budget until normal eviction cycled them out).
    pub fn register_kernel_replacing(
        &self,
        name: &str,
        factory: impl KernelFactory + 'static,
    ) -> KernelId {
        let (id, replaced) = self.shared.registry.register_or_replace(name, factory);
        if let Some(old_id) = replaced {
            if self.shared.config.cache_capacity > 0 {
                self.shared.cache.lock().retain(|key, _| key.key.kernel != old_id);
            }
        }
        id
    }

    /// Number of results currently held by the LRU cache (observability for
    /// invalidation and capacity tuning).
    pub fn cached_results(&self) -> usize {
        self.shared.cache.lock().len()
    }

    /// Stop admitting new queries without stopping the batcher: every
    /// subsequent submission that would enter the queue fails with
    /// [`ServiceError::ShuttingDown`], while already-admitted queries keep
    /// flowing through batches and resolve their tickets normally. Cache
    /// hits are still served (they cost no engine work). Idempotent; there
    /// is deliberately no un-drain — drain is the first step of a shutdown
    /// sequence, not a pause button.
    pub fn begin_drain(&self) {
        self.shared.inner.lock().draining = true;
        // Wake the batcher so a drain over an empty queue doesn't leave it
        // parked until the next (now-rejected) submission.
        self.shared.work_ready.notify_all();
    }

    /// Whether [`Self::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.inner.lock().draining
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> ServiceSnapshot {
        sync_epoch_counters(&self.shared.counters, &self.shared.store);
        self.shared.counters.snapshot()
    }

    /// Log an edge insertion (or weight rewrite of an existing edge).
    /// Returns the graph version that will first contain it; the batch is
    /// folded in at the batcher's next quiesce point. Use
    /// [`Self::flush_mutations`] to wait for that version.
    pub fn insert_edge(&self, u: VertexId, v: VertexId, w: Weight) -> Result<u64, ServiceError> {
        self.mutate(EdgeMutation::Insert { u, v, w })
    }

    /// Log an edge deletion (a no-op at apply time if the edge is absent).
    pub fn delete_edge(&self, u: VertexId, v: VertexId) -> Result<u64, ServiceError> {
        self.mutate(EdgeMutation::Delete { u, v })
    }

    /// Log a weight update for the edge `u → v` (inserts it if absent).
    pub fn update_weight(&self, u: VertexId, v: VertexId, w: Weight) -> Result<u64, ServiceError> {
        self.mutate(EdgeMutation::UpdateWeight { u, v, w })
    }

    /// Log one [`EdgeMutation`] against the served graph. Validated (typed
    /// error) and enqueued synchronously; applied — together with every
    /// other pending mutation, atomically — at the batcher's next quiesce
    /// point, between engine runs. Cached results a mutation could reach are
    /// invalidated at that same point.
    pub fn mutate(&self, mutation: EdgeMutation) -> Result<u64, ServiceError> {
        {
            let inner = self.shared.inner.lock();
            if inner.shutdown || inner.draining {
                return Err(ServiceError::ShuttingDown);
            }
        }
        let version = self
            .shared
            .store
            .log(mutation)
            .map_err(|error| ServiceError::InvalidMutation { reason: error.to_string() })?;
        // Wake the batcher: a pending mutation is work even when no queries
        // are queued (an idle service must still fold the batch in).
        self.shared.work_ready.notify_all();
        Ok(version)
    }

    /// The currently published graph version (0 until the first quiesce).
    pub fn graph_version(&self) -> u64 {
        self.shared.store.version()
    }

    /// Number of logged-but-unapplied mutations.
    pub fn pending_mutations(&self) -> usize {
        self.shared.store.pending_mutations()
    }

    /// The current graph snapshot (the store's latest published version).
    pub fn graph(&self) -> Arc<PartitionedGraph> {
        self.shared.store.current()
    }

    /// Block until every mutation logged before this call has been folded
    /// into a published snapshot; returns the version reached. Works during
    /// drain (drain stops admission, not the batcher); call before
    /// `shutdown` if logged mutations must land.
    pub fn flush_mutations(&self) -> u64 {
        loop {
            let version = self.shared.store.version();
            if !self.shared.store.has_pending() {
                return version;
            }
            self.shared.work_ready.notify_all();
            self.shared.store.wait_for_version(version + 1);
        }
    }
}

/// An always-on ForkGraph query server over one shared [`PartitionedGraph`].
///
/// Owns the batcher thread; dropping (or [`shutdown`](Self::shutdown)ting)
/// the service flushes already-admitted queries, then stops.
pub struct ForkGraphService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    /// The persistent engine worker pool batches are dispatched onto (absent
    /// for serial configurations). Shared with the batcher; the last `Arc`
    /// drop — during [`Self::shutdown`]/`Drop` — joins the pool threads, so
    /// a shut-down service leaves no threads behind.
    pool: Option<Arc<WorkerPool>>,
}

impl ForkGraphService {
    /// Start the service over `graph` with the given engine and service
    /// configurations and its own built-ins-only registry (use
    /// [`Self::start_with_registry`] to share or pre-populate one).
    ///
    /// `engine_config.num_threads` is the *cap* on per-batch parallelism:
    /// the batcher sizes each micro-batch's worker count adaptively with
    /// [`adaptive::effective_workers_weighted`] (a 2-query batch runs
    /// serially, a 64-query batch uses the full cap, scaled by the cohort
    /// kernel's declared weight) and dispatches parallel runs onto one
    /// persistent [`WorkerPool`] shared across all batches.
    pub fn start(
        graph: Arc<PartitionedGraph>,
        engine_config: EngineConfig,
        config: ServiceConfig,
    ) -> Self {
        Self::start_with_registry(
            graph,
            engine_config,
            config,
            Arc::new(KernelRegistry::with_builtins()),
        )
    }

    /// Start the service with an explicit kernel registry (e.g. one already
    /// holding custom kernels, or one shared by several services).
    pub fn start_with_registry(
        graph: Arc<PartitionedGraph>,
        engine_config: EngineConfig,
        config: ServiceConfig,
        registry: Arc<KernelRegistry>,
    ) -> Self {
        Self::start_inner(graph, engine_config, config, registry, None)
    }

    /// Start the service with event tracing: every submit, batch formation,
    /// engine run, and ticket resolution is recorded into `sink`, alongside
    /// the engine/executor/pool events of each dispatched run. Read the
    /// stream back through [`Self::trace_handle`].
    pub fn start_traced(
        graph: Arc<PartitionedGraph>,
        engine_config: EngineConfig,
        config: ServiceConfig,
        sink: Arc<TraceSink>,
    ) -> Self {
        Self::start_inner(
            graph,
            engine_config,
            config,
            Arc::new(KernelRegistry::with_builtins()),
            Some(sink),
        )
    }

    fn start_inner(
        graph: Arc<PartitionedGraph>,
        engine_config: EngineConfig,
        config: ServiceConfig,
        registry: Arc<KernelRegistry>,
        trace: Option<Arc<TraceSink>>,
    ) -> Self {
        let store = Arc::new(VersionedGraph::new(Arc::clone(&graph)));
        if let Some(sink) = &trace {
            // Epoch pin/unpin/advance events land in the same stream as the
            // submit/batch/resolve flow.
            store.epochs().attach_trace(Arc::clone(sink));
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), shutdown: false, draining: false }),
            work_ready: Condvar::new(),
            counters: Arc::new(ServiceCounters::new()),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            registry,
            config,
            store,
            num_vertices: graph.graph().num_vertices(),
            trace,
        });
        let max_workers = engine_config.resolved_threads();
        let pool = (max_workers > 1
            && graph.num_partitions() > 1
            && engine_config.resolved_executor() == ExecutorMode::Pool)
            .then(|| {
                let pool = Arc::new(WorkerPool::new(forkgraph_core::pool::crew_size(
                    max_workers,
                    graph.num_partitions(),
                )));
                if let Some(trace) = &shared.trace {
                    pool.attach_trace(Arc::clone(trace));
                }
                pool
            });
        let worker_shared = Arc::clone(&shared);
        let worker_pool = pool.clone();
        let worker = std::thread::Builder::new()
            .name("fg-service-batcher".into())
            .spawn(move || batcher_loop(worker_shared, graph, engine_config, worker_pool))
            .expect("failed to spawn fg-service batcher thread");
        ForkGraphService { shared, worker: Some(worker), pool }
    }

    /// Start with default engine and service configurations.
    pub fn with_defaults(graph: Arc<PartitionedGraph>) -> Self {
        Self::start(graph, EngineConfig::default(), ServiceConfig::default())
    }

    /// Start with default configurations but serve batches through the
    /// inter-partition parallel executor with up to `num_threads` workers
    /// (`0` = one worker per available CPU). `num_threads` caps the
    /// per-batch adaptive sizing; parallel batches share one persistent
    /// [`WorkerPool`], so steady-state serving spawns no threads.
    pub fn with_parallel_defaults(graph: Arc<PartitionedGraph>, num_threads: usize) -> Self {
        Self::start(
            graph,
            EngineConfig::default().with_threads(num_threads),
            ServiceConfig::default(),
        )
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { shared: Arc::clone(&self.shared) }
    }

    /// The kernel registry queries are resolved against.
    pub fn registry(&self) -> &Arc<KernelRegistry> {
        &self.shared.registry
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> ServiceSnapshot {
        sync_epoch_counters(&self.shared.counters, &self.shared.store);
        self.shared.counters.snapshot()
    }

    /// Lifetime metrics of the persistent engine worker pool, or `None` for
    /// serial configurations.
    pub fn pool_metrics(&self) -> Option<PoolSnapshot> {
        self.pool.as_ref().map(|pool| pool.metrics())
    }

    /// Recent per-batch sizing decisions (bounded ring): how many queries
    /// each dispatched batch carried, the worker count the adaptive policy
    /// chose for it, and the kernel registration it ran.
    pub fn batch_records(&self) -> Vec<BatchRecord> {
        self.shared.counters.batch_records()
    }

    /// The service's observability surface: the trace sink plus ready-made
    /// Chrome-trace and Prometheus-exposition renderings over it. `None`
    /// unless the service was started with [`Self::start_traced`].
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.shared.trace.as_ref().map(|sink| TraceHandle {
            sink: Arc::clone(sink),
            counters: Arc::clone(&self.shared.counters),
            pool: self.pool.clone(),
            store: Arc::clone(&self.shared.store),
        })
    }

    /// Stop admitting new queries while the batcher keeps serving the
    /// admitted backlog; see [`ServiceHandle::begin_drain`]. A front door
    /// calls this first, waits for its in-flight tickets to resolve, then
    /// calls [`Self::shutdown`].
    pub fn begin_drain(&self) {
        self.handle().begin_drain();
    }

    /// Whether [`Self::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.inner.lock().draining
    }

    /// Stop accepting queries, flush the already-admitted backlog, join the
    /// batcher thread, and join the worker pool's threads.
    pub fn shutdown(mut self) {
        self.stop();
        // Dropping the last pool Arc joins the pool threads; the batcher's
        // clone was released when `stop` joined it.
        self.pool.take();
    }

    fn stop(&mut self) {
        self.shared.inner.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ForkGraphService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A traced service's observability surface, detached from the service's
/// lifetime (cloneable snapshots of the sink, counters, and pool). Obtained
/// from [`ForkGraphService::trace_handle`]; stays valid — serving its last
/// recorded state — after the service shuts down.
#[derive(Clone)]
pub struct TraceHandle {
    sink: Arc<TraceSink>,
    counters: Arc<ServiceCounters>,
    pool: Option<Arc<WorkerPool>>,
    store: Arc<VersionedGraph>,
}

impl TraceHandle {
    /// The underlying event sink (for direct event access or enable/disable).
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Render the recorded events as Chrome trace-event JSON, loadable in
    /// `chrome://tracing` or Perfetto ([`fg_trace::chrome::export`]).
    pub fn chrome_trace(&self) -> String {
        fg_trace::chrome::export(&self.sink)
    }

    /// Render the current service/pool/trace metrics in the Prometheus text
    /// exposition format ([`fn@fg_trace::expose`]) — a complete `/metrics`
    /// response body.
    pub fn exposition(&self) -> String {
        sync_epoch_counters(&self.counters, &self.store);
        let service = self.counters.snapshot();
        let pool = self.pool.as_ref().map(|pool| pool.metrics());
        let stats = self.sink.stats();
        fg_trace::expose(Some(&service), pool.as_ref(), Some(&stats))
    }
}

/// Mirror the epoch table's statistics into the service counters so one
/// [`ServiceSnapshot`] carries them. The table is the source of truth;
/// callers sync lazily (after each fold, and at metric-read time so the
/// pin-lag gauge and reclamation count stay fresh between folds).
fn sync_epoch_counters(counters: &ServiceCounters, store: &VersionedGraph) {
    let epochs = store.epochs();
    counters.sync_epoch_stats(
        epochs.epochs_advanced(),
        epochs.partitions_rematerialized(),
        epochs.partitions_shared(),
        epochs.snapshots_reclaimed(),
        epochs.oldest_pinned_epoch_lag(),
    );
}

/// Upper bound on retained incremental-restart hints; past it the batcher
/// drops the delta-restart state entirely (correct, just slower) rather than
/// letting an unbounded mutation/query churn grow it without limit.
const INCREMENTAL_HINT_CAP: usize = 4096;

/// The batcher thread body.
fn batcher_loop(
    shared: Arc<Shared>,
    graph: Arc<PartitionedGraph>,
    engine_config: EngineConfig,
    pool: Option<Arc<WorkerPool>>,
) {
    let num_partitions = graph.num_partitions();
    drop(graph); // runs pin epoch snapshots; the start-time Arc is not needed
    let max_workers = engine_config.resolved_threads();
    // Delta-restart bookkeeping carried across quiesce points while every
    // applied batch stays monotone (insertions / weight decreases only):
    // `inc_seeds` accumulates the changed edges at their latest weights, and
    // `inc_hints` holds the cached SSSP/BFS results those batches evicted —
    // a re-query whose `CacheKey` matches resumes from its hint via
    // `run_*_incremental(prev, delta)` instead of from scratch. A
    // non-monotone batch (deletion / weight increase) clears both: its
    // re-queries take the full-re-run fallback.
    let mut inc_seeds: HashMap<(VertexId, VertexId), Weight> = HashMap::new();
    let mut inc_hints: HashMap<CacheKey, Arc<QueryResult>> = HashMap::new();
    loop {
        let mut cohorts = {
            let mut inner = shared.inner.lock();

            // Wait for work — queued queries, pending mutations, or shutdown.
            while inner.queue.is_empty() && !inner.shutdown && !shared.store.has_pending() {
                shared.work_ready.wait(&mut inner);
            }
            if inner.queue.is_empty() && inner.shutdown {
                break;
            }

            // Micro-batch accumulation: give concurrent submitters the
            // window to join this batch. Skipped when flushing at shutdown
            // and on mutation-only wakeups (an empty queue has no batch to
            // fill; the quiesce below should not wait on it).
            if !inner.queue.is_empty() && !inner.shutdown && !shared.config.batch_window.is_zero() {
                let deadline = Instant::now() + shared.config.batch_window;
                while !inner.shutdown && inner.queue.len() < shared.config.max_batch_size {
                    if shared.work_ready.wait_until(&mut inner, deadline).timed_out() {
                        break;
                    }
                }
            }

            // Drain every *ready* cohort — each distinct batch key in
            // arrival order of its oldest member, up to
            // `max_kernels_per_run` cohorts and `max_batch_size` total
            // queries — for one shared engine run. Queries that don't fit
            // keep their queue position and lead the next batch. A kernel
            // that cannot ride a multi-kernel pass (hand-written
            // `DynKernel`, or an operation value exceeding the inline
            // payload) can only run alone: it never joins (and is never
            // joined by) another cohort. Single forward pass (O(queue ×
            // cohorts), cohorts ≤ max_kernels_per_run) — the lock is held,
            // so submitters are stalled while this runs.
            let max_cohorts = shared.config.max_kernels_per_run.max(1);
            let multi_capable = |p: &Pending| p.resolved.kernel.multi().is_some();
            let mut cohorts: Vec<(BatchKey, Vec<Pending>)> = Vec::new();
            let mut mixable = true;
            let mut total = 0usize;
            let mut rest: VecDeque<Pending> = VecDeque::with_capacity(inner.queue.len());
            for pending in inner.queue.drain(..) {
                if total < shared.config.max_batch_size {
                    if let Some((_, members)) =
                        cohorts.iter_mut().find(|(key, _)| *key == pending.batch_key)
                    {
                        members.push(pending);
                        total += 1;
                        continue;
                    }
                    if cohorts.len() < max_cohorts
                        && (cohorts.is_empty() || (mixable && multi_capable(&pending)))
                    {
                        if cohorts.is_empty() {
                            mixable = multi_capable(&pending);
                        }
                        cohorts.push((pending.batch_key.clone(), vec![pending]));
                        total += 1;
                        continue;
                    }
                }
                rest.push_back(pending);
            }
            inner.queue = rest;
            if total > 0 {
                shared.counters.on_batch(total, inner.queue.len());
            }
            cohorts
        };

        // ---- Fold point ----
        // Fold the pending mutation log into the next epoch's snapshot.
        // `prepare` materializes dirty partitions entirely outside the locks
        // — reads stay pinned on the current epoch and the submit fast path
        // keeps admitting (a source the fold can reach misses the cache via
        // `pending_affects`, because the log prefix is *not* drained until
        // publish). Only the cheap `publish` swap runs under the cache lock,
        // keeping invalidation atomic with publication: a submission either
        // observes the still-pending log (miss) or runs after the purge
        // (miss) — a stale hit has no window, same invariant as PR 8's
        // quiesce-under-the-lock, without blocking admission on the rebuild.
        if shared.store.has_pending() {
            if let Some(fold) = shared.store.prepare() {
                shared.emit(
                    EventKind::DeltaFold,
                    fold.mutations() as u32,
                    fold.dirty_partitions().len() as u32,
                    fold.base_version() as u32,
                );
                let mut cache = shared.cache.lock();
                let applied = shared.store.publish(fold);
                shared.counters.on_mutations_applied(applied.mutations);
                if !applied.dirty_partitions.is_empty() {
                    // Evict exactly the keys this batch could reach: sources
                    // in partitions from which some dirty partition is
                    // reachable (per-partition over-approximation).
                    let affected = applied.reach.partitions_reaching(&applied.dirty_partitions);
                    let snapshot = &applied.graph;
                    let capture = applied.monotone;
                    let mut evicted = 0usize;
                    cache.retain(|key, result| {
                        if !affected[snapshot.partition_of(key.source) as usize] {
                            return true;
                        }
                        evicted += 1;
                        // Evicted monotone-kernel results become restart
                        // hints instead of pure losses.
                        if capture
                            && (key.key.kernel == KernelId::SSSP || key.key.kernel == KernelId::BFS)
                        {
                            inc_hints.insert(key.clone(), Arc::clone(result));
                        }
                        false
                    });
                    shared.counters.on_cache_invalidations(evicted);
                }
                if applied.monotone {
                    for &(u, v, w) in &applied.seed_edges {
                        inc_seeds.insert((u, v), w);
                    }
                } else {
                    inc_seeds.clear();
                    inc_hints.clear();
                }
                if inc_hints.len() > INCREMENTAL_HINT_CAP {
                    inc_seeds.clear();
                    inc_hints.clear();
                }
            }
            sync_epoch_counters(&shared.counters, &shared.store);
        }

        // Mutation-only wakeup: nothing to dispatch.
        if cohorts.is_empty() {
            continue;
        }

        // ---- Incremental restarts ----
        // Peel off the cohort members whose exact `CacheKey` has a restart
        // hint and resume them from the delta frontier; the remainder (and
        // every non-SSSP/BFS cohort) takes the normal from-scratch path.
        if !inc_hints.is_empty() {
            for (key, members) in &mut cohorts {
                if key.kernel != KernelId::SSSP && key.kernel != KernelId::BFS {
                    continue;
                }
                let mut hinted = Vec::new();
                let mut rest = Vec::with_capacity(members.len());
                for pending in members.drain(..) {
                    let cache_key =
                        CacheKey { key: pending.batch_key.clone(), source: pending.source };
                    match inc_hints.remove(&cache_key) {
                        Some(hint) => hinted.push((pending, hint)),
                        None => rest.push(pending),
                    }
                }
                *members = rest;
                if !hinted.is_empty() {
                    run_incremental_cohort(
                        &shared,
                        engine_config,
                        &pool,
                        num_partitions,
                        max_workers,
                        key.kernel,
                        hinted,
                        &inc_seeds,
                    );
                }
            }
            if inc_hints.is_empty() {
                // Every hint was consumed; the accumulated delta has no
                // remaining consumer.
                inc_seeds.clear();
            }
            cohorts.retain(|(_, members)| !members.is_empty());
            if cohorts.is_empty() {
                continue;
            }
        }

        let batch_id = shared.next_trace_id();
        if shared.trace.is_some() {
            for (_, members) in &cohorts {
                for pending in members {
                    shared.emit(EventKind::JoinBatch, pending.trace_id, batch_id, 0);
                }
            }
        }

        // Adaptive sizing: pick the worker count for *this* run from the
        // summed per-cohort offered load (cohort size × its kernel's
        // declared weight; pure policy in `adaptive`) and the partition
        // count, then build a per-batch engine — cheap (two refs + a config
        // copy) — that dispatches onto the shared persistent pool when
        // parallel.
        let total: usize = cohorts.iter().map(|(_, members)| members.len()).sum();
        let loads: Vec<(usize, f64)> = cohorts
            .iter()
            .map(|(_, members)| (members.len(), members[0].resolved.kernel.batch_weight()))
            .collect();
        let workers = adaptive::effective_workers_mixed(&loads, num_partitions, max_workers);
        shared.counters.on_batch_workers(
            total,
            workers,
            cohorts[0].1[0].resolved.id.as_u64(),
            cohorts.len(),
        );
        let batch_config = engine_config.with_threads(workers);
        // One pin per run: the guard keeps this epoch's snapshot alive for
        // exactly the engine's lifetime, and the borrow ties the engine to
        // it. A fold publishing the next epoch mid-run never touches the
        // pinned storage; it is reclaimed when the guard drops below.
        let pin = shared.store.pin();
        let engine = match &pool {
            Some(pool) if workers > 1 => {
                ForkGraphEngine::for_snapshot_with_pool(&pin, batch_config, Arc::clone(pool))
            }
            _ => ForkGraphEngine::for_snapshot(&pin, batch_config),
        };
        let engine = match &shared.trace {
            Some(sink) => engine.with_trace_sink(Arc::clone(sink)),
            None => engine,
        };
        shared.emit(EventKind::BatchBegin, batch_id, total as u32, cohorts.len() as u32);

        // One consolidated, type-erased engine run for *all* drained
        // cohorts — this is where concurrent requests turn into the paper's
        // fork-processing pattern, for built-in and registered kernels
        // alike, and (with ≥ 2 cohorts) where different query types start
        // sharing one partition pass. An engine panic must not wedge the
        // service: contain it, fail the run's tickets, and keep serving
        // (submit-time validation makes this unreachable for the known
        // panic class of bad sources, but registered kernels are user
        // code).
        let kernels: Vec<Arc<dyn forkgraph_core::DynKernel>> =
            cohorts.iter().map(|(_, members)| Arc::clone(&members[0].resolved.kernel)).collect();
        let per_cohort_sources: Vec<Vec<VertexId>> =
            cohorts.iter().map(|(_, members)| members.iter().map(|p| p.source).collect()).collect();
        let per_cohort_states = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if kernels.len() == 1 {
                // Single cohort: `run_dyn` is the monomorphized special case
                // of the shared pass.
                vec![engine.run_dyn(&*kernels[0], &per_cohort_sources[0]).per_query]
            } else {
                let groups: Vec<(&dyn forkgraph_core::DynKernel, &[VertexId])> = kernels
                    .iter()
                    .zip(&per_cohort_sources)
                    .map(|(kernel, sources)| (&**kernel, &sources[..]))
                    .collect();
                engine.run_multi(&groups).per_group
            }
        }));
        let per_cohort_states = match per_cohort_states {
            // `DynKernel` is an open trait: a hand-implemented `run_erased`
            // (bypassing `erase`) could return the wrong number of states.
            // Zipping short would strand the surplus submitters on tickets
            // that never resolve, so a length mismatch fails the whole run
            // the same way a kernel panic does — and the batcher keeps
            // serving.
            Ok(states)
                if states.len() == cohorts.len()
                    && states
                        .iter()
                        .zip(&cohorts)
                        .all(|(s, (_, members))| s.len() == members.len()) =>
            {
                states
            }
            _ => {
                shared.emit(EventKind::BatchEnd, batch_id, 0, 0);
                for (_, members) in cohorts {
                    for pending in members {
                        // Emit before fulfil everywhere a ticket resolves: a
                        // waiter woken by `fulfil` may snapshot the trace
                        // immediately, and its Resolve event must already be
                        // in the ring.
                        shared.emit(EventKind::Resolve, pending.trace_id, batch_id, 0);
                        pending.slot.fulfil(Err(ServiceError::EngineFailure));
                    }
                }
                continue;
            }
        };
        shared.emit(EventKind::BatchEnd, batch_id, 0, 0);

        let now = Instant::now();
        for ((_, members), states) in cohorts.into_iter().zip(per_cohort_states) {
            let resolved = &members[0].resolved;
            let kernel_id = resolved.id;
            let kernel_name = Arc::clone(&resolved.name);
            let state_type = resolved.kernel.state_type_name();
            // Don't cache results of a registration that was replaced while
            // this batch was queued/running: the entries could never be
            // served again (future resolves yield the new id) and would only
            // squat in the capacity budget `register_kernel_replacing` just
            // reclaimed. The liveness check happens *under the cache lock*
            // (which the replace path's eviction also takes), so a
            // concurrent replacement either lands before the check — we
            // observe the new id and skip caching — or its eviction runs
            // after our inserts and removes them; there is no window for
            // dead-id entries to survive.
            let mut cache = (shared.config.cache_capacity > 0).then(|| shared.cache.lock());
            if cache.is_some() && shared.registry.id_of(&kernel_name) != Some(kernel_id) {
                cache = None;
            }
            for (pending, state) in members.into_iter().zip(states) {
                let result = Arc::new(QueryResult::new(
                    kernel_id,
                    Arc::clone(&kernel_name),
                    state_type,
                    state,
                ));
                if let Some(cache) = cache.as_mut() {
                    let cache_key = CacheKey { key: pending.batch_key, source: pending.source };
                    cache.insert(cache_key, Arc::clone(&result));
                }
                shared.counters.record_latency(now.saturating_duration_since(pending.submitted_at));
                shared.emit(EventKind::Resolve, pending.trace_id, batch_id, 0);
                pending.slot.fulfil(Ok(result));
            }
        }
    }

    // Reject anything that slipped in after the shutdown flag (submitters
    // racing the flag see ShuttingDown from `submit` itself; this is belt and
    // braces for entries admitted just before it was set).
    let leftovers: Vec<Pending> = shared.inner.lock().queue.drain(..).collect();
    for pending in leftovers {
        shared.emit(EventKind::Resolve, pending.trace_id, 0, 0);
        pending.slot.fulfil(Err(ServiceError::ShuttingDown));
    }
}

/// Resume one cohort's hinted members from the delta frontier: typed
/// [`ForkGraphEngine::run_sssp_incremental`] / `run_bfs_incremental` seeded
/// by the accumulated monotone delta, previous states cloned from the
/// members' evicted cache entries. Demultiplexes (and re-caches) results
/// exactly like the from-scratch path; a panic fails only these tickets.
#[allow(clippy::too_many_arguments)]
fn run_incremental_cohort(
    shared: &Shared,
    engine_config: EngineConfig,
    pool: &Option<Arc<WorkerPool>>,
    num_partitions: usize,
    max_workers: usize,
    kernel: KernelId,
    hinted: Vec<(Pending, Arc<QueryResult>)>,
    seeds: &HashMap<(VertexId, VertexId), Weight>,
) {
    let delta: Vec<Edge> = seeds.iter().map(|(&(u, v), &w)| (u, v, w)).collect();
    let sources: Vec<VertexId> = hinted.iter().map(|(pending, _)| pending.source).collect();
    let weight = hinted[0].0.resolved.kernel.batch_weight();
    let workers =
        adaptive::effective_workers_mixed(&[(sources.len(), weight)], num_partitions, max_workers);
    let batch_config = engine_config.with_threads(workers);
    // An incremental resume is a run like any other: one epoch pin for its
    // duration.
    let pin = shared.store.pin();
    let engine = match pool {
        Some(pool) if workers > 1 => {
            ForkGraphEngine::for_snapshot_with_pool(&pin, batch_config, Arc::clone(pool))
        }
        _ => ForkGraphEngine::for_snapshot(&pin, batch_config),
    };
    let engine = match &shared.trace {
        Some(sink) => engine.with_trace_sink(Arc::clone(sink)),
        None => engine,
    };

    // `(states, resumed)`: when a hint's stored state fails to downcast
    // (defensive; a matching `CacheKey` implies the built-in state type) the
    // whole cohort falls back to a from-scratch typed run — still correct.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if kernel == KernelId::SSSP {
            let prev: Option<Vec<Vec<Dist>>> =
                hinted.iter().map(|(_, hint)| hint.try_sssp().ok().cloned()).collect();
            match prev {
                Some(prev) => {
                    let run = engine.run_sssp_incremental(&sources, prev, &delta);
                    (erase_states(run.per_query), true)
                }
                None => (erase_states(engine.run_sssp(&sources).per_query), false),
            }
        } else {
            let prev: Option<Vec<Vec<u32>>> =
                hinted.iter().map(|(_, hint)| hint.try_bfs().ok().cloned()).collect();
            match prev {
                Some(prev) => {
                    let run = engine.run_bfs_incremental(&sources, prev, &delta);
                    (erase_states(run.per_query), true)
                }
                None => (erase_states(engine.run_bfs(&sources).per_query), false),
            }
        }
    }));

    match outcome {
        Ok((states, resumed)) if states.len() == hinted.len() => {
            if resumed {
                shared.counters.on_incremental_run();
            }
            let resolved = &hinted[0].0.resolved;
            let kernel_id = resolved.id;
            let kernel_name = Arc::clone(&resolved.name);
            let state_type = resolved.kernel.state_type_name();
            let now = Instant::now();
            // Same registration-liveness rule as the from-scratch demux.
            let mut cache = (shared.config.cache_capacity > 0).then(|| shared.cache.lock());
            if cache.is_some() && shared.registry.id_of(&kernel_name) != Some(kernel_id) {
                cache = None;
            }
            for ((pending, _), state) in hinted.into_iter().zip(states) {
                let result = Arc::new(QueryResult::new(
                    kernel_id,
                    Arc::clone(&kernel_name),
                    state_type,
                    state,
                ));
                if let Some(cache) = cache.as_mut() {
                    let cache_key = CacheKey { key: pending.batch_key, source: pending.source };
                    cache.insert(cache_key, Arc::clone(&result));
                }
                shared.counters.record_latency(now.saturating_duration_since(pending.submitted_at));
                shared.emit(EventKind::Resolve, pending.trace_id, 0, 0);
                pending.slot.fulfil(Ok(result));
            }
        }
        _ => {
            for (pending, _) in hinted {
                shared.emit(EventKind::Resolve, pending.trace_id, 0, 0);
                pending.slot.fulfil(Err(ServiceError::EngineFailure));
            }
        }
    }
}

/// Type-erase a typed run's per-query states for [`QueryResult::new`].
fn erase_states<S: std::any::Any + Send + Sync>(states: Vec<S>) -> Vec<ErasedState> {
    states.into_iter().map(|state| Arc::new(state) as ErasedState).collect()
}
