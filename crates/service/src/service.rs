//! The query-serving core: admission control, micro-batching, dispatch.
//!
//! One background *batcher* thread owns a long-lived [`ForkGraphEngine`] and
//! repeatedly: waits for pending submissions, lets a batch accumulate for the
//! configured window (or until the batch-size cap), drains the oldest
//! submission's [`crate::query::BatchKey`] cohort from the queue, runs it as
//! a single
//! consolidated engine run, and demultiplexes the per-source results back to
//! the submitters' tickets. The submit path is admission-controlled by a
//! bounded queue — when full, `submit` fails fast with
//! [`ServiceError::Saturated`] instead of blocking — and fronted by an LRU
//! result cache so repeated hot queries never reach the engine.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use fg_graph::partitioned::PartitionedGraph;
use fg_graph::VertexId;
use fg_metrics::{BatchRecord, PoolSnapshot, ServiceCounters, ServiceSnapshot};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use forkgraph_core::{EngineConfig, ExecutorMode, ForkGraphEngine, WorkerPool};

use crate::adaptive;
use crate::lru::LruCache;
use crate::query::{CacheKey, QueryResult, QuerySpec};
use crate::ticket::{Slot, Ticket};

/// Tuning knobs of the serving layer.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// How long the batcher lets submissions accumulate after it starts
    /// forming a batch. Larger windows mean fuller batches (better cache
    /// reuse per the paper's batching thesis) at the cost of added latency.
    pub batch_window: Duration,
    /// Hard cap on queries per consolidated engine run.
    pub max_batch_size: usize,
    /// Admission-control bound on the pending queue; submissions beyond it
    /// are shed with [`ServiceError::Saturated`].
    pub max_queue_depth: usize,
    /// Capacity of the LRU result cache in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_window: Duration::from_millis(2),
            max_batch_size: 64,
            max_queue_depth: 1024,
            cache_capacity: 1024,
        }
    }
}

/// Typed failures surfaced to submitters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control shed the query: the pending queue is at capacity.
    /// Callers should back off and retry; blocking here would just move the
    /// queue into the clients.
    Saturated {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// The configured `max_queue_depth`.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The query names a source vertex the graph doesn't have; rejected at
    /// submit time so a bad query can never reach (and panic) the engine.
    InvalidSource {
        /// The offending source vertex.
        source: VertexId,
        /// Number of vertices in the served graph.
        num_vertices: usize,
    },
    /// The engine panicked while running this query's batch. The batcher
    /// survives and keeps serving subsequent batches.
    EngineFailure,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Saturated { queue_depth, capacity } => {
                write!(f, "service saturated: {queue_depth} queued of {capacity} capacity")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::InvalidSource { source, num_vertices } => {
                write!(f, "source vertex {source} out of range (graph has {num_vertices} vertices)")
            }
            ServiceError::EngineFailure => write!(f, "engine failed while executing the batch"),
        }
    }
}

impl std::error::Error for ServiceError {}

struct Pending {
    spec: QuerySpec,
    slot: Arc<Slot>,
    submitted_at: Instant,
}

struct Inner {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled on every submission and on shutdown; the batcher waits here.
    work_ready: Condvar,
    counters: Arc<ServiceCounters>,
    cache: Mutex<LruCache<CacheKey, Arc<QueryResult>>>,
    config: ServiceConfig,
    /// Vertex count of the served graph, for submit-time source validation.
    num_vertices: usize,
}

/// Cloneable submission endpoint, safe to hand to many client threads.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Submit a query. Returns a [`Ticket`] the caller can block on, or a
    /// typed error when the service is saturated or shutting down. Never
    /// blocks beyond two short critical sections.
    pub fn submit(&self, spec: QuerySpec) -> Result<Ticket, ServiceError> {
        let shared = &*self.shared;

        // Validate before anything else: an out-of-range source must never
        // reach the engine (it would panic the batcher thread).
        let source = spec.source();
        if source as usize >= shared.num_vertices {
            return Err(ServiceError::InvalidSource { source, num_vertices: shared.num_vertices });
        }

        // Fast path: answer repeated hot queries from the LRU cache.
        if shared.config.cache_capacity > 0 {
            let hit = shared.cache.lock().get(&spec.cache_key()).cloned();
            if let Some(result) = hit {
                shared.counters.on_cache_hit();
                shared.counters.record_latency(Duration::ZERO);
                return Ok(Ticket::ready(Ok(result)));
            }
        }

        let mut inner = shared.inner.lock();
        if inner.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        let depth = inner.queue.len();
        if depth >= shared.config.max_queue_depth {
            shared.counters.on_reject();
            return Err(ServiceError::Saturated {
                queue_depth: depth,
                capacity: shared.config.max_queue_depth,
            });
        }
        shared.counters.on_cache_miss();
        shared.counters.on_admit(depth + 1);
        let slot = Slot::new();
        inner.queue.push_back(Pending {
            spec,
            slot: Arc::clone(&slot),
            submitted_at: Instant::now(),
        });
        drop(inner);
        shared.work_ready.notify_all();
        Ok(Ticket::new(slot))
    }

    /// Submit-and-wait convenience wrapper.
    pub fn query(&self, spec: QuerySpec) -> Result<Arc<QueryResult>, ServiceError> {
        self.submit(spec)?.wait()
    }

    /// Submit an SSSP query from `source`.
    pub fn submit_sssp(&self, source: VertexId) -> Result<Ticket, ServiceError> {
        self.submit(QuerySpec::Sssp { source })
    }

    /// Submit a BFS query from `source`.
    pub fn submit_bfs(&self, source: VertexId) -> Result<Ticket, ServiceError> {
        self.submit(QuerySpec::Bfs { source })
    }

    /// Submit a PPR query seeded at `seed`.
    pub fn submit_ppr(&self, seed: VertexId, config: PprConfig) -> Result<Ticket, ServiceError> {
        self.submit(QuerySpec::Ppr { seed, config })
    }

    /// Submit a random-walk query from `source`.
    pub fn submit_random_walk(
        &self,
        source: VertexId,
        config: RandomWalkConfig,
    ) -> Result<Ticket, ServiceError> {
        self.submit(QuerySpec::RandomWalk { source, config })
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> ServiceSnapshot {
        self.shared.counters.snapshot()
    }
}

/// An always-on ForkGraph query server over one shared [`PartitionedGraph`].
///
/// Owns the batcher thread; dropping (or [`shutdown`](Self::shutdown)ting)
/// the service flushes already-admitted queries, then stops.
pub struct ForkGraphService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    /// The persistent engine worker pool batches are dispatched onto (absent
    /// for serial configurations). Shared with the batcher; the last `Arc`
    /// drop — during [`Self::shutdown`]/`Drop` — joins the pool threads, so
    /// a shut-down service leaves no threads behind.
    pool: Option<Arc<WorkerPool>>,
}

impl ForkGraphService {
    /// Start the service over `graph` with the given engine and service
    /// configurations.
    ///
    /// `engine_config.num_threads` is the *cap* on per-batch parallelism:
    /// the batcher sizes each micro-batch's worker count adaptively with
    /// [`adaptive::effective_workers`] (a 2-query batch runs serially, a
    /// 64-query batch uses the full cap) and dispatches parallel runs onto
    /// one persistent [`WorkerPool`] shared across all batches.
    pub fn start(
        graph: Arc<PartitionedGraph>,
        engine_config: EngineConfig,
        config: ServiceConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            counters: Arc::new(ServiceCounters::new()),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            config,
            num_vertices: graph.graph().num_vertices(),
        });
        let max_workers = engine_config.resolved_threads();
        let pool = (max_workers > 1
            && graph.num_partitions() > 1
            && engine_config.resolved_executor() == ExecutorMode::Pool)
            .then(|| {
                Arc::new(WorkerPool::new(forkgraph_core::pool::crew_size(
                    max_workers,
                    graph.num_partitions(),
                )))
            });
        let worker_shared = Arc::clone(&shared);
        let worker_pool = pool.clone();
        let worker = std::thread::Builder::new()
            .name("fg-service-batcher".into())
            .spawn(move || batcher_loop(worker_shared, graph, engine_config, worker_pool))
            .expect("failed to spawn fg-service batcher thread");
        ForkGraphService { shared, worker: Some(worker), pool }
    }

    /// Start with default engine and service configurations.
    pub fn with_defaults(graph: Arc<PartitionedGraph>) -> Self {
        Self::start(graph, EngineConfig::default(), ServiceConfig::default())
    }

    /// Start with default configurations but serve batches through the
    /// inter-partition parallel executor with up to `num_threads` workers
    /// (`0` = one worker per available CPU). `num_threads` caps the
    /// per-batch adaptive sizing; parallel batches share one persistent
    /// [`WorkerPool`], so steady-state serving spawns no threads.
    pub fn with_parallel_defaults(graph: Arc<PartitionedGraph>, num_threads: usize) -> Self {
        Self::start(
            graph,
            EngineConfig::default().with_threads(num_threads),
            ServiceConfig::default(),
        )
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { shared: Arc::clone(&self.shared) }
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> ServiceSnapshot {
        self.shared.counters.snapshot()
    }

    /// Lifetime metrics of the persistent engine worker pool, or `None` for
    /// serial configurations.
    pub fn pool_metrics(&self) -> Option<PoolSnapshot> {
        self.pool.as_ref().map(|pool| pool.metrics())
    }

    /// Recent per-batch sizing decisions (bounded ring): how many queries
    /// each dispatched batch carried and the worker count the adaptive
    /// policy chose for it.
    pub fn batch_records(&self) -> Vec<BatchRecord> {
        self.shared.counters.batch_records()
    }

    /// Stop accepting queries, flush the already-admitted backlog, join the
    /// batcher thread, and join the worker pool's threads.
    pub fn shutdown(mut self) {
        self.stop();
        // Dropping the last pool Arc joins the pool threads; the batcher's
        // clone was released when `stop` joined it.
        self.pool.take();
    }

    fn stop(&mut self) {
        self.shared.inner.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ForkGraphService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batcher thread body.
fn batcher_loop(
    shared: Arc<Shared>,
    graph: Arc<PartitionedGraph>,
    engine_config: EngineConfig,
    pool: Option<Arc<WorkerPool>>,
) {
    let num_partitions = graph.num_partitions();
    let max_workers = engine_config.resolved_threads();
    loop {
        let batch = {
            let mut inner = shared.inner.lock();

            // Wait for work (or shutdown with an empty backlog).
            while inner.queue.is_empty() && !inner.shutdown {
                shared.work_ready.wait(&mut inner);
            }
            if inner.queue.is_empty() {
                debug_assert!(inner.shutdown);
                break;
            }

            // Micro-batch accumulation: give concurrent submitters the
            // window to join this batch. Skipped when flushing at shutdown.
            if !inner.shutdown && !shared.config.batch_window.is_zero() {
                let deadline = Instant::now() + shared.config.batch_window;
                while !inner.shutdown && inner.queue.len() < shared.config.max_batch_size {
                    if shared.work_ready.wait_until(&mut inner, deadline).timed_out() {
                        break;
                    }
                }
            }

            // Drain the oldest submission's cohort: every queued query with
            // the same batch key, in arrival order, up to the size cap.
            // Queries with other keys keep their queue position and form the
            // next batch. Single forward pass (O(queue)) — the lock is held,
            // so submitters are stalled while this runs.
            let key = inner.queue.front().expect("queue non-empty").spec.batch_key();
            let mut batch: Vec<Pending> = Vec::new();
            let mut rest: VecDeque<Pending> = VecDeque::with_capacity(inner.queue.len());
            for pending in inner.queue.drain(..) {
                if batch.len() < shared.config.max_batch_size && pending.spec.batch_key() == key {
                    batch.push(pending);
                } else {
                    rest.push_back(pending);
                }
            }
            inner.queue = rest;
            shared.counters.on_batch(batch.len(), inner.queue.len());
            batch
        };

        // Adaptive sizing: pick the worker count for *this* batch from its
        // size and the partition count (pure policy in `adaptive`), then
        // build a per-batch engine — cheap (two refs + a config copy) —
        // that dispatches onto the shared persistent pool when parallel.
        let workers = adaptive::effective_workers(batch.len(), num_partitions, max_workers);
        shared.counters.on_batch_workers(batch.len(), workers);
        let batch_config = engine_config.with_threads(workers);
        let engine = match &pool {
            Some(pool) if workers > 1 => {
                ForkGraphEngine::with_pool(&graph, batch_config, Arc::clone(pool))
            }
            _ => ForkGraphEngine::new(&graph, batch_config),
        };

        // One consolidated engine run for the whole cohort — this is where
        // concurrent requests turn into the paper's fork-processing pattern.
        // An engine panic must not wedge the service: contain it, fail the
        // cohort's tickets, and keep serving (submit-time validation makes
        // this unreachable for the known panic class of bad sources).
        let sources: Vec<VertexId> = batch.iter().map(|p| p.spec.source()).collect();
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_batch(&engine, &batch[0].spec, &sources)
        }));
        let results = match results {
            Ok(results) => results,
            Err(_) => {
                for pending in batch {
                    pending.slot.fulfil(Err(ServiceError::EngineFailure));
                }
                continue;
            }
        };
        debug_assert_eq!(results.len(), batch.len());

        let now = Instant::now();
        let mut cache = (shared.config.cache_capacity > 0).then(|| shared.cache.lock());
        for (pending, result) in batch.into_iter().zip(results) {
            let result = Arc::new(result);
            if let Some(cache) = cache.as_mut() {
                cache.insert(pending.spec.cache_key(), Arc::clone(&result));
            }
            shared.counters.record_latency(now.saturating_duration_since(pending.submitted_at));
            pending.slot.fulfil(Ok(result));
        }
    }

    // Reject anything that slipped in after the shutdown flag (submitters
    // racing the flag see ShuttingDown from `submit` itself; this is belt and
    // braces for entries admitted just before it was set).
    let leftovers: Vec<Pending> = shared.inner.lock().queue.drain(..).collect();
    for pending in leftovers {
        pending.slot.fulfil(Err(ServiceError::ShuttingDown));
    }
}

/// Run one homogeneous cohort through the engine and demux per-source results.
///
/// `template` is the first query of the batch; every query in `sources`
/// shares its [`crate::query::BatchKey`], so its configuration is the batch's
/// configuration.
fn execute_batch(
    engine: &ForkGraphEngine<'_>,
    template: &QuerySpec,
    sources: &[VertexId],
) -> Vec<QueryResult> {
    match template {
        QuerySpec::Sssp { .. } => engine
            .run_sssp(sources)
            .into_per_source(sources)
            .into_iter()
            .map(|(_, dist)| QueryResult::Sssp(dist))
            .collect(),
        QuerySpec::Bfs { .. } => engine
            .run_bfs(sources)
            .into_per_source(sources)
            .into_iter()
            .map(|(_, level)| QueryResult::Bfs(level))
            .collect(),
        QuerySpec::Ppr { config, .. } => engine
            .run_ppr(sources, config)
            .into_per_source(sources)
            .into_iter()
            .map(|(_, state)| QueryResult::Ppr(state))
            .collect(),
        QuerySpec::RandomWalk { config, .. } => engine
            .run_random_walks(sources, config)
            .into_per_source(sources)
            .into_iter()
            .map(|(_, state)| QueryResult::RandomWalk(state))
            .collect(),
    }
}
