//! Criterion benchmark behind the §C.3 partition-method comparison: cost of
//! the partitioners themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_graph::datasets;
use fg_graph::partition::{PartitionConfig, PartitionMethod, PartitionPlan};

fn bench_partitioning(c: &mut Criterion) {
    let road = datasets::CA.scaled(0.2);
    let social = datasets::LJ.scaled(0.15);
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    for (graph, label) in [(&road, "road"), (&social, "social")] {
        for method in PartitionMethod::all() {
            group.bench_with_input(BenchmarkId::new(label, method.name()), &method, |b, &m| {
                let config = PartitionConfig::with_partitions(m, 16);
                b.iter(|| PartitionPlan::compute(graph, &config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
