//! Criterion benchmark behind Figure 9: ForkGraph vs the baseline engines on a
//! small multi-source SSSP batch (the LL/BC workload shape).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use fg_baselines::fpp::{ExecutionScheme, FppDriver, QueryKind};
use fg_baselines::{GeminiEngine, GraphItEngine, LigraEngine};
use fg_graph::datasets;
use fg_graph::partition::PartitionConfig;
use fg_graph::partitioned::PartitionedGraph;
use forkgraph_core::{EngineConfig, ForkGraphEngine};

fn bench_engines(c: &mut Criterion) {
    let graph = Arc::new(datasets::CA.generate_weighted(0.03));
    let sources: Vec<u32> = fg_apps::sample_sources(graph.num_vertices(), 8, 7);
    let pg = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(128 * 1024));

    let mut group = c.benchmark_group("sssp_batch_road_graph");
    group.sample_size(10);

    group.bench_function("forkgraph", |b| {
        b.iter(|| ForkGraphEngine::new(&pg, EngineConfig::default()).run_sssp(&sources))
    });
    group.bench_function("ligra_t1", |b| {
        let driver = FppDriver::new(LigraEngine::new(), Arc::clone(&graph));
        b.iter(|| driver.run(&QueryKind::Sssp, &sources, ExecutionScheme::InterQuery))
    });
    group.bench_function("gemini_t1", |b| {
        let driver = FppDriver::new(GeminiEngine::new(), Arc::clone(&graph));
        b.iter(|| driver.run(&QueryKind::Sssp, &sources, ExecutionScheme::InterQuery))
    });
    group.bench_function("graphit_tcores", |b| {
        let driver = FppDriver::new(GraphItEngine::new(), Arc::clone(&graph));
        b.iter(|| driver.run(&QueryKind::Sssp, &sources, ExecutionScheme::IntraQuery))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
