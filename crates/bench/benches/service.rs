//! Closed-loop throughput benchmark of the `fg-service` serving layer.
//!
//! A fixed population of client threads each keeps exactly one query in
//! flight (submit → wait → resubmit), which is the classic closed-loop
//! arrival process: offered load adapts to service capacity, so the measured
//! quantity is sustainable throughput. Three configurations are compared on
//! the same partitioned graph and query stream:
//!
//! * `direct`    — each client runs its query as its own one-shot
//!   `ForkGraphEngine::run` (no consolidation; the seed repo's only mode),
//! * `service`   — clients go through the micro-batching service
//!   (consolidation on, cache off),
//! * `service+cache` — consolidation plus the LRU result cache, with a
//!   skewed source distribution so the cache can help.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_service::{ForkGraphService, QuerySpec, ServiceConfig};
use forkgraph_core::{EngineConfig, ForkGraphEngine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 16;
const HOT_SET: u32 = 4;

fn build_graph() -> Arc<PartitionedGraph> {
    let g = gen::rmat(11, 8, 7).with_random_weights(8, 7);
    Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8),
    ))
}

/// One client's query stream: skewed over a hot set, deterministic per client.
fn sources(client: usize, n: u32) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(0xBEEF + client as u64);
    (0..QUERIES_PER_CLIENT)
        .map(|_| if rng.gen_bool(0.5) { rng.gen_range(0..HOT_SET) } else { rng.gen_range(0..n) })
        .collect()
}

fn run_direct(pg: &Arc<PartitionedGraph>) -> usize {
    let n = pg.graph().num_vertices() as u32;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let pg = Arc::clone(pg);
                scope.spawn(move || {
                    let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
                    let mut done = 0;
                    for source in sources(client, n) {
                        let result = engine.run_sssp(&[source]);
                        assert_eq!(result.per_query.len(), 1);
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

fn run_service(pg: &Arc<PartitionedGraph>, cache_capacity: usize) -> usize {
    let service = ForkGraphService::start(
        Arc::clone(pg),
        EngineConfig::default(),
        ServiceConfig {
            batch_window: Duration::from_micros(500),
            max_batch_size: 64,
            max_queue_depth: 4096,
            cache_capacity,
            ..ServiceConfig::default()
        },
    );
    let n = pg.graph().num_vertices() as u32;
    let answered = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let handle = service.handle();
                scope.spawn(move || {
                    let mut done = 0;
                    for source in sources(client, n) {
                        let ticket = handle.submit(QuerySpec::Sssp { source }).unwrap();
                        ticket.wait().unwrap();
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum::<usize>()
    });
    service.shutdown();
    answered
}

fn bench_service_throughput(c: &mut Criterion) {
    let pg = build_graph();
    let total = CLIENTS * QUERIES_PER_CLIENT;
    let mut group = c.benchmark_group("service_closed_loop_sssp");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("direct", total), &pg, |b, pg| {
        b.iter(|| assert_eq!(run_direct(pg), total))
    });
    group.bench_with_input(BenchmarkId::new("service", total), &pg, |b, pg| {
        b.iter(|| assert_eq!(run_service(pg, 0), total))
    });
    group.bench_with_input(BenchmarkId::new("service+cache", total), &pg, |b, pg| {
        b.iter(|| assert_eq!(run_service(pg, 512), total))
    });
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
