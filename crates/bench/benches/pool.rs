//! Pool-vs-spawn executor micro-benchmark.
//!
//! The persistent `WorkerPool` exists to amortise per-run thread spawn/join
//! and mailbox/queue/scratch allocation — a cost that dominates exactly when
//! batches are small (the fg-service hot path runs one engine run per
//! micro-batch). This bench measures identical SSSP runs through both
//! executors at batch sizes 1, 4, and 32: at small batches pool mode must be
//! no slower than spawn mode, and results are asserted equal to the serial
//! engine every iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fg_bench::smoke::{workload, Scale};
use fg_graph::VertexId;
use forkgraph_core::{EngineConfig, ExecutorMode, ForkGraphEngine};

const BATCH_SIZES: [usize; 3] = [1, 4, 32];
const WORKERS: usize = 4;

fn bench_pool_vs_spawn(c: &mut Criterion) {
    let (pg, sources) = workload(Scale::FULL);
    println!(
        "pool-vs-spawn workload: {} partitions, {WORKERS} workers, cores={}",
        pg.num_partitions(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let serial = ForkGraphEngine::new(&pg, EngineConfig::default());

    for batch in BATCH_SIZES {
        let batch_sources: Vec<VertexId> = sources.iter().copied().take(batch).collect();
        let oracle = serial.run_sssp(&batch_sources).per_query;

        let mut group = c.benchmark_group(format!("sssp_batch{batch}"));
        let spawn_engine = ForkGraphEngine::new(
            &pg,
            EngineConfig::default().with_threads(WORKERS).with_executor(ExecutorMode::Spawn),
        );
        group.bench_function(BenchmarkId::new("spawn", WORKERS), |b| {
            b.iter(|| {
                let result = spawn_engine.run_sssp(&batch_sources);
                assert_eq!(result.per_query, oracle, "spawn executor diverged");
            })
        });

        // One engine for all iterations: the pool is created on the first
        // run and every subsequent run reuses the warm crew — the steady
        // state the bench is about.
        let pool_engine = ForkGraphEngine::new(
            &pg,
            EngineConfig::default().with_threads(WORKERS).with_executor(ExecutorMode::Pool),
        );
        pool_engine.run_sssp(&batch_sources); // warm-up: spawn the pool threads
        group.bench_function(BenchmarkId::new("pool", WORKERS), |b| {
            b.iter(|| {
                let result = pool_engine.run_sssp(&batch_sources);
                assert_eq!(result.per_query, oracle, "pool executor diverged");
            })
        });
        group.finish();

        let pool = pool_engine.worker_pool().expect("pool created by warm-up");
        let metrics = pool.metrics();
        println!(
            "batch {batch}: pool dispatches={} threads_spawned={} mailbox_reuse={:.2}",
            metrics.dispatches,
            metrics.threads_spawned,
            metrics.mailbox_reuse_rate()
        );
        assert_eq!(
            metrics.threads_spawned, WORKERS as u64,
            "steady-state bench iterations must not spawn threads"
        );
    }
}

criterion_group!(benches, bench_pool_vs_spawn);
criterion_main!(benches);
