//! Criterion benchmark for the sequential kernels ForkGraph builds on
//! (the "fastest known sequential algorithms" of Section 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use fg_graph::datasets;
use fg_seq::ppr::PprConfig;

fn bench_sequential(c: &mut Criterion) {
    let road = datasets::CA.generate_weighted(0.05);
    let social = datasets::LJ.scaled(0.08);
    let mut group = c.benchmark_group("sequential_kernels");
    group.sample_size(20);
    group.bench_function("dijkstra_road", |b| b.iter(|| fg_seq::dijkstra::dijkstra(&road, 0)));
    group.bench_function("delta_stepping_road", |b| {
        b.iter(|| fg_seq::delta_stepping::delta_stepping(&road, 0, 8))
    });
    group.bench_function("bfs_social", |b| b.iter(|| fg_seq::bfs::bfs(&social, 0)));
    group.bench_function("dfs_social", |b| b.iter(|| fg_seq::dfs::dfs(&social, 0)));
    group.bench_function("ppr_push_social", |b| {
        let config = PprConfig { epsilon: 1e-5, ..Default::default() };
        b.iter(|| fg_seq::ppr::ppr_push(&social, 1, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
