//! Criterion micro-benchmark behind Table 5: consolidating buffered operations
//! by sorting vs scanning, with and without bucketing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkgraph_core::buffer::{consolidate, ConsolidationMethod, PartitionBuffer};
use forkgraph_core::Operation;

fn make_ops(count: usize, queries: usize) -> Vec<Operation<u64>> {
    (0..count)
        .map(|i| {
            Operation::new(
                ((i * 2654435761) % queries) as u32,
                i as u32,
                i as u64,
                (i as u64 * 37) % 997,
            )
        })
        .collect()
}

fn bench_consolidation(c: &mut Criterion) {
    let ops = make_ops(50_000, 128);
    let mut group = c.benchmark_group("consolidation");
    group.sample_size(20);
    for method in [ConsolidationMethod::Sort, ConsolidationMethod::Scan] {
        group.bench_with_input(
            BenchmarkId::new("flat-buffer", format!("{method:?}")),
            &method,
            |b, &m| b.iter(|| consolidate(&ops, 128, m)),
        );
        for buckets in [16usize, 128] {
            group.bench_with_input(
                BenchmarkId::new(format!("{buckets}-buckets"), format!("{method:?}")),
                &method,
                |b, &m| {
                    b.iter(|| {
                        let mut buffer = PartitionBuffer::new(buckets);
                        buffer.push_batch(ops.iter().copied());
                        buffer.drain_consolidated(m)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_consolidation);
criterion_main!(benches);
