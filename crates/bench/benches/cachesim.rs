//! Criterion benchmark for the LLC simulator substrate: overhead per simulated
//! access for sequential scans vs random access patterns.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_cachesim::{AccessKind, CacheConfig, CacheSim, GraphAccessTracer};

fn bench_cachesim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim");
    group.sample_size(20);
    group.bench_function("sequential_scan_64k_accesses", |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(CacheConfig::scaled_llc());
            for i in 0..65_536u64 {
                sim.access(i * 64, AccessKind::Read);
            }
            sim.stats()
        })
    });
    group.bench_function("random_access_64k_accesses", |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(CacheConfig::scaled_llc());
            let mut x = 0x12345u64;
            for _ in 0..65_536u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.access(x % (1 << 30), AccessKind::Read);
            }
            sim.stats()
        })
    });
    group.bench_function("tracer_adjacency_scans", |b| {
        b.iter(|| {
            let tracer = GraphAccessTracer::new(CacheConfig::scaled_llc());
            for v in 0..8_192u64 {
                tracer.adjacency_scan(v * 16, 16);
            }
            tracer.stats()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cachesim);
criterion_main!(benches);
