//! Scaling benchmark of the inter-partition parallel executor.
//!
//! One workload — a 24-partition RMAT graph (≥16 partitions, so the worker
//! pool has real inter-partition parallelism to exploit) with a 32-query SSSP
//! batch and a 32-query BFS batch — executed by the serial engine and by the
//! parallel executor at 2/4/8 workers. On a multi-core host the 4-worker
//! configuration is the acceptance bar: ≥1.5× the serial engine's
//! throughput. (On a single-core host the parallel rows measure pure executor
//! overhead instead; the printed `cores=` line says which regime a report
//! came from.)
//!
//! Results are verified against the serial engine every iteration — a scaling
//! number from a diverging executor would be meaningless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fg_bench::smoke::{workload, Scale};
use forkgraph_core::{EngineConfig, ForkGraphEngine};

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn bench_parallel_scaling(c: &mut Criterion) {
    // The exact workload the CI perf gate measures (fg_bench::smoke), so this
    // bench's scaling numbers and the gated smoke report stay in lockstep.
    let (pg, sources) = workload(Scale::FULL);
    println!(
        "parallel scaling workload: {} partitions, {} queries, cores={}",
        pg.num_partitions(),
        sources.len(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let serial = ForkGraphEngine::new(&pg, EngineConfig::default());
    let oracle_sssp = serial.run_sssp(&sources).per_query;
    let oracle_bfs = serial.run_bfs(&sources).per_query;

    let mut group = c.benchmark_group("parallel_sssp");
    group.bench_function(BenchmarkId::new("serial", 1), |b| {
        b.iter(|| {
            let result = serial.run_sssp(&sources);
            assert_eq!(result.per_query.len(), sources.len());
        })
    });
    for workers in WORKER_COUNTS {
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(workers));
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let result = engine.run_sssp(&sources);
                assert_eq!(result.per_query, oracle_sssp, "parallel SSSP diverged");
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel_bfs");
    group.bench_function(BenchmarkId::new("serial", 1), |b| {
        b.iter(|| {
            let result = serial.run_bfs(&sources);
            assert_eq!(result.per_query.len(), sources.len());
        })
    });
    for workers in WORKER_COUNTS {
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(workers));
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let result = engine.run_bfs(&sources);
                assert_eq!(result.per_query, oracle_bfs, "parallel BFS diverged");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
