//! Machine-readable performance reports and the CI regression gate.
//!
//! The `repro --smoke` run emits a [`PerfReport`] as JSON (`BENCH_pr.json`);
//! CI compares it against the committed `BENCH_baseline.json` with
//! [`compare`] and fails on any throughput regression beyond the tolerance.
//!
//! The JSON codec is hand-rolled for the subset we emit (a flat
//! `"metrics": { "name": number }` object): the build environment has no
//! `serde_json`, and a 60-line scanner we can unit-test beats a vendored
//! dependency for a format we fully control.

use std::fmt::Write as _;

/// Version stamped into every report so future shape changes can be detected
/// instead of mis-parsed.
pub const SCHEMA_VERSION: u64 = 1;

/// A flat set of named throughput metrics (queries/second; higher is better).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Schema version of the serialized form.
    pub schema_version: u64,
    /// `(metric name, throughput)` pairs, in emission order.
    pub metrics: Vec<(String, f64)>,
}

impl PerfReport {
    /// An empty report with the current schema version.
    pub fn new() -> Self {
        PerfReport { schema_version: SCHEMA_VERSION, metrics: Vec::new() }
    }

    /// Append a metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Fold `other` into this report: metrics new to `self` are appended,
    /// name collisions take `other`'s value (last writer wins — the caller
    /// merging a fresher measurement into an existing file is the common
    /// case, e.g. `repro --wire-smoke --merge-json BENCH_pr.json`).
    pub fn merge(&mut self, other: &PerfReport) {
        for (name, value) in &other.metrics {
            match self.metrics.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 = *value,
                None => self.metrics.push((name.clone(), *value)),
            }
        }
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{name}\": {value:.4}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse the JSON produced by [`Self::to_json`] (tolerating arbitrary
    /// whitespace). Returns a descriptive error on malformed input.
    pub fn from_json(input: &str) -> Result<PerfReport, String> {
        let mut report = PerfReport::new();
        report.schema_version =
            extract_number(input, "schema_version").ok_or("missing \"schema_version\"")? as u64;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} not supported (this binary reads version {SCHEMA_VERSION}); \
                 regenerate the report with a matching `repro --smoke`",
                report.schema_version
            ));
        }
        let metrics_start = input.find("\"metrics\"").ok_or("missing \"metrics\" object")?;
        let rest = &input[metrics_start..];
        let open = rest.find('{').ok_or("\"metrics\" is not an object")?;
        let body = &rest[open + 1..];
        let close = body.find('}').ok_or("unterminated \"metrics\" object")?;
        for pair in body[..close].split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (name, value) =
                pair.split_once(':').ok_or_else(|| format!("malformed metric entry {pair:?}"))?;
            let name = name.trim().trim_matches('"');
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("metric {name:?}: unparsable value ({e})"))?;
            if name.is_empty() {
                return Err(format!("malformed metric entry {pair:?}"));
            }
            report.push(name, value);
        }
        Ok(report)
    }
}

/// The newest entry of a `BENCH_history/` directory: the lexicographically
/// greatest `*.json` file. History entries are named with a zero-padded PR
/// ordinal prefix (`0003-worker-pool.json`), so lexicographic order *is*
/// trajectory order and no filesystem timestamps (which git does not
/// preserve) are involved. Returns `None` for a missing/empty directory.
pub fn newest_history_entry(dir: &std::path::Path) -> Option<std::path::PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file() && p.extension().is_some_and(|ext| ext.eq_ignore_ascii_case("json"))
        })
        .max_by(|a, b| a.file_name().cmp(&b.file_name()))
}

/// Extract the first `"key": <number>` occurrence outside the metrics map.
fn extract_number(input: &str, key: &str) -> Option<f64> {
    let idx = input.find(&format!("\"{key}\""))?;
    let rest = &input[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// One metric that regressed beyond tolerance (or disappeared).
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Metric name.
    pub metric: String,
    /// Baseline throughput.
    pub baseline: f64,
    /// Current throughput (`0.0` when the metric vanished).
    pub current: f64,
}

impl Regression {
    /// `current / baseline`, the survival ratio CI prints.
    pub fn ratio(&self) -> f64 {
        if self.baseline <= 0.0 {
            1.0
        } else {
            self.current / self.baseline
        }
    }
}

/// Compare `current` against `baseline`: every baseline metric must reach at
/// least `(1 - tolerance) * baseline` in the current report. Metrics new in
/// `current` are fine (they seed the next baseline); metrics *missing* from
/// `current` are reported as full regressions so a silently deleted
/// measurement cannot green-wash the gate.
pub fn compare(baseline: &PerfReport, current: &PerfReport, tolerance: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (name, base) in &baseline.metrics {
        let now = current.get(name).unwrap_or(0.0);
        if now < base * (1.0 - tolerance) {
            regressions.push(Regression { metric: name.clone(), baseline: *base, current: now });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        let mut r = PerfReport::new();
        r.push("sssp_serial_qps", 120.5);
        r.push("sssp_parallel4_qps", 401.25);
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let back = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.metrics.len(), 2);
        assert!((back.get("sssp_serial_qps").unwrap() - 120.5).abs() < 1e-9);
        assert!((back.get("sssp_parallel4_qps").unwrap() - 401.25).abs() < 1e-9);
    }

    #[test]
    fn parse_tolerates_whitespace_and_rejects_garbage() {
        let ok =
            "{\n  \"schema_version\": 1,\n  \"metrics\": {\n    \"a\" : 2.5 ,\n    \"b\":3\n  }\n}";
        let r = PerfReport::from_json(ok).unwrap();
        assert_eq!(r.get("a"), Some(2.5));
        assert_eq!(r.get("b"), Some(3.0));
        assert!(PerfReport::from_json("{}").is_err());
        assert!(PerfReport::from_json("{\"schema_version\": 1}").is_err());
        assert!(
            PerfReport::from_json("{\"schema_version\": 1, \"metrics\": {\"a\": zebra}}").is_err()
        );
    }

    #[test]
    fn unknown_schema_versions_are_rejected_not_mis_parsed() {
        let err = PerfReport::from_json("{\"schema_version\": 2, \"metrics\": {\"a\": 1.0}}")
            .unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");
    }

    #[test]
    fn empty_metrics_object_parses() {
        let r = PerfReport::from_json("{\"schema_version\": 1, \"metrics\": {}}").unwrap();
        assert!(r.metrics.is_empty());
        // And round-trips.
        let again = PerfReport::from_json(&r.to_json()).unwrap();
        assert!(again.metrics.is_empty());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let baseline = sample();
        let mut current = PerfReport::new();
        current.push("sssp_serial_qps", 100.0); // -17%: inside 20% tolerance
        current.push("sssp_parallel4_qps", 280.0); // -30%: regression
        current.push("new_metric_qps", 1.0); // new: ignored
        let regressions = compare(&baseline, &current, 0.20);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "sssp_parallel4_qps");
        assert!(regressions[0].ratio() < 0.75);
    }

    #[test]
    fn compare_treats_missing_metrics_as_regressions() {
        let baseline = sample();
        let current = PerfReport::new();
        let regressions = compare(&baseline, &current, 0.20);
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].current, 0.0);
    }

    #[test]
    fn newest_history_entry_is_lexicographically_greatest_json() {
        let dir =
            std::env::temp_dir().join(format!("fg-bench-history-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(newest_history_entry(&dir), None, "missing dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(newest_history_entry(&dir), None, "empty dir");
        std::fs::write(dir.join("README.md"), "not a report").unwrap();
        assert_eq!(newest_history_entry(&dir), None, "non-json ignored");
        std::fs::write(dir.join("0002-executor.json"), "{}").unwrap();
        std::fs::write(dir.join("0010-later.json"), "{}").unwrap();
        std::fs::write(dir.join("0003-pool.json"), "{}").unwrap();
        let newest = newest_history_entry(&dir).unwrap();
        assert_eq!(newest.file_name().unwrap(), "0010-later.json");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_appends_new_metrics_and_overwrites_collisions() {
        let mut base = sample();
        let mut fresh = PerfReport::new();
        fresh.push("wire_qps", 900.0);
        fresh.push("sssp_serial_qps", 130.0); // collision: fresher wins
        base.merge(&fresh);
        assert_eq!(base.get("wire_qps"), Some(900.0));
        assert_eq!(base.get("sssp_serial_qps"), Some(130.0));
        assert_eq!(base.metrics.len(), 3, "collision must not duplicate the entry");
        // Emission order is stable: existing metrics first, merged ones after.
        assert_eq!(base.metrics[0].0, "sssp_serial_qps");
        assert_eq!(base.metrics[2].0, "wire_qps");
    }

    #[test]
    fn improvements_never_trip_the_gate() {
        let baseline = sample();
        let mut current = PerfReport::new();
        current.push("sssp_serial_qps", 500.0);
        current.push("sssp_parallel4_qps", 500.0);
        assert!(compare(&baseline, &current, 0.20).is_empty());
    }
}
