//! The `repro --smoke` workload: a fast, deterministic serial-vs-parallel
//! throughput measurement feeding the CI perf-regression gate.
//!
//! One fixed RMAT workload (8192 vertices, 24 LLC-sized partitions — enough
//! partitions that inter-partition parallelism has real work to distribute),
//! one batch of SSSP queries and one of BFS queries. Every configuration is
//! measured as the **best of three** runs (classic min-of-N noise rejection:
//! throughput can only be under-measured by interference, never
//! over-measured), reported as queries/second.

use std::sync::Arc;

use fg_graph::gen;
use fg_graph::mutation::VersionedGraph;
use fg_graph::partition::{PartitionConfig, PartitionMethod, PartitionPlan};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, Dist, StorageConfig, VertexId, INF_DIST};
use fg_metrics::Table;
use fg_service::{ForkGraphService, Query, ServiceConfig};
use forkgraph_core::kernel::FppKernel;
use forkgraph_core::kernels::SsspKernel;
use forkgraph_core::operation::Priority;
use forkgraph_core::{erase, EngineConfig, ExecutorMode, ForkGraphEngine};

use crate::report::PerfReport;

/// Worker counts measured (and gated) in addition to the serial engine.
pub const SMOKE_WORKER_COUNTS: [usize; 2] = [2, 4];

const REPEATS: usize = 3;

/// Size of the smoke workload. [`Scale::FULL`] is what `repro --smoke` (and
/// therefore the committed baseline) measures; tests use a tiny scale so the
/// debug-mode suite stays fast while exercising the identical code path.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// `log2` of the RMAT vertex count.
    pub rmat_levels: u32,
    /// Partition count (kept ≥ 16 at full scale so the pool has real work).
    pub partitions: usize,
    /// Queries per measured batch.
    pub queries: usize,
}

impl Scale {
    /// The CI-gated workload: 8192 vertices, 24 partitions, 32 queries.
    pub const FULL: Scale = Scale { rmat_levels: 13, partitions: 24, queries: 32 };
    /// A seconds-not-minutes instance for debug-mode tests.
    pub const TINY: Scale = Scale { rmat_levels: 8, partitions: 6, queries: 6 };
}

/// Result of one smoke run: the machine-readable report plus a Markdown table.
pub struct SmokeOutcome {
    /// Metrics for `BENCH_*.json`.
    pub report: PerfReport,
    /// Human-readable rendering of the same numbers.
    pub table: Table,
}

/// The measured workload at `scale`: the partitioned graph and the query
/// sources. The single source of truth shared by `--smoke`, the
/// `parallel_scaling` experiment, and `benches/parallel.rs` — all three must
/// measure the same thing or the CI gate and the scaling bench drift apart.
pub fn workload(scale: Scale) -> (PartitionedGraph, Vec<VertexId>) {
    let graph = gen::rmat(scale.rmat_levels, 8, 42).with_random_weights(9, 42);
    let pg = PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, scale.partitions),
    );
    let n = pg.graph().num_vertices() as u32;
    let sources = (0..scale.queries as u32).map(|i| (i * 251) % n).collect();
    (pg, sources)
}

/// Best-of-`REPEATS` wall time of `run`, in seconds.
fn best_secs(mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`REPEATS` throughput of `run` over a `queries`-sized batch.
fn best_qps(queries: usize, run: impl FnMut()) -> f64 {
    queries as f64 / best_secs(run)
}

/// Run the smoke workload at full scale (what CI gates on).
pub fn run_smoke() -> SmokeOutcome {
    run_smoke_at(Scale::FULL)
}

/// Run the smoke workload at an explicit scale.
pub fn run_smoke_at(scale: Scale) -> SmokeOutcome {
    let (pg, sources) = workload(scale);
    // Arc'd because the dynamic-graph rows below need a `VersionedGraph`
    // (and a service) over the same instance; `&pg` still derefs to
    // `&PartitionedGraph` everywhere an engine borrows it.
    let pg = Arc::new(pg);
    let mut report = PerfReport::new();
    let mut table = Table::new(
        "Bench smoke: serial vs inter-partition parallel throughput (queries/s)",
        &["configuration", "sssp qps", "bfs qps"],
    );

    let mut measure = |label: &str, config: EngineConfig| {
        let engine = ForkGraphEngine::new(&pg, config);
        let sssp = best_qps(scale.queries, || {
            engine.run_sssp(&sources);
        });
        let bfs = best_qps(scale.queries, || {
            engine.run_bfs(&sources);
        });
        report.push(format!("sssp_{label}_qps"), sssp);
        report.push(format!("bfs_{label}_qps"), bfs);
        table.push_row([label.to_string(), format!("{sssp:.1}"), format!("{bfs:.1}")]);
    };

    measure("serial", EngineConfig::default());
    for workers in SMOKE_WORKER_COUNTS {
        measure(&format!("parallel{workers}"), EngineConfig::default().with_threads(workers));
    }

    // Small-batch pool-vs-spawn overhead: the fg-service hot path runs one
    // engine run per micro-batch, so per-run setup cost dominates exactly
    // when batches are small. Measure a ≤4-query SSSP batch through (a) the
    // per-run spawn executor and (b) one engine with a warm persistent
    // pool. Pool mode must not be slower than spawn mode — the pool's whole
    // point is amortising the spawn/join + allocation cost this workload is
    // dominated by.
    let small_sources: Vec<VertexId> = sources.iter().copied().take(4).collect();
    let spawn_engine = ForkGraphEngine::new(
        &pg,
        EngineConfig::default().with_threads(2).with_executor(ExecutorMode::Spawn),
    );
    let small_spawn = best_qps(small_sources.len(), || {
        spawn_engine.run_sssp(&small_sources);
    });
    let pool_engine = ForkGraphEngine::new(
        &pg,
        EngineConfig::default().with_threads(2).with_executor(ExecutorMode::Pool),
    );
    pool_engine.run_sssp(&small_sources); // warm the pool (spawns its threads)
    let small_pool = best_qps(small_sources.len(), || {
        pool_engine.run_sssp(&small_sources);
    });
    report.push("sssp_small4_spawn_qps", small_spawn);
    report.push("sssp_small4_pool_qps", small_pool);
    report.push("small4_pool_vs_spawn", small_pool / small_spawn);
    table.push_row([
        "small-batch (4q, 2w) spawn".to_string(),
        format!("{small_spawn:.1}"),
        "-".to_string(),
    ]);
    table.push_row([
        "small-batch (4q, 2w) pool".to_string(),
        format!("{small_pool:.1}"),
        "-".to_string(),
    ]);
    if small_pool < small_spawn * 0.95 {
        eprintln!(
            "[smoke] WARNING: small-batch pool throughput {small_pool:.1} qps below spawn \
             {small_spawn:.1} qps — the persistent pool is losing to per-run thread spawning"
        );
    }

    // Erasure-layer overhead: the open kernel registry dispatches through
    // `run_dyn` (one virtual call in, one Arc per query state out) instead
    // of the monomorphized direct call. The serving layer rides this path
    // for *every* query, so the smoke gates it: dyn-vs-direct on the same
    // serial engine must stay within noise (the redesign's <5% budget).
    let direct_engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    let sssp_direct = best_qps(scale.queries, || {
        direct_engine.run_sssp(&sources);
    });
    let erased_sssp = erase(SsspKernel);
    let sssp_dyn = best_qps(scale.queries, || {
        direct_engine.run_dyn(&*erased_sssp, &sources);
    });
    report.push("sssp_dyn_qps", sssp_dyn);
    report.push("sssp_dyn_vs_direct", sssp_dyn / sssp_direct);
    table.push_row(["erased sssp (run_dyn)".to_string(), format!("{sssp_dyn:.1}"), "-".into()]);
    if sssp_dyn < sssp_direct * 0.95 {
        eprintln!(
            "[smoke] WARNING: erased-kernel SSSP {sssp_dyn:.1} qps is more than 5% below the \
             direct path's {sssp_direct:.1} qps — the erasure layer is no longer free"
        );
    }

    // Custom-kernel serving smoke: a kernel that exists only in this bench
    // (weighted 4-hop reachability) through the same erased path the
    // registry uses. Guards the open-kernel promise with a number: custom
    // kernels run at engine speed, not at a degraded compatibility speed.
    let khop = erase(KHopBenchKernel { k: 4 });
    let khop_qps = best_qps(scale.queries, || {
        direct_engine.run_dyn(&*khop, &sources);
    });
    report.push("custom_khop_qps", khop_qps);
    table.push_row(["custom k-hop (erased)".to_string(), format!("{khop_qps:.1}"), "-".into()]);

    // Cross-kernel pass sharing: two cohorts of different kernels (16 SSSP +
    // 16 BFS queries) through ONE `run_multi` shared partition pass versus
    // two back-to-back `run_dyn` sweeps. The ratio gates the multi-kernel
    // refactor: the erased inline payload costs per operation, the
    // shared pass saves per partition visit, and the bargain must not lose
    // ≥ 5% even on a 1-core box (on cache-constrained hardware the shared
    // pass additionally halves cold LLC traffic — see the mixed-run
    // cachesim test).
    let mixed_cohort = scale.queries.div_ceil(2).max(1);
    let sssp_half: Vec<VertexId> = sources.iter().copied().take(mixed_cohort).collect();
    let n = pg.graph().num_vertices() as u32;
    let bfs_half: Vec<VertexId> = (0..mixed_cohort as u32).map(|i| (i * 509 + 13) % n).collect();
    let erased_bfs = erase(forkgraph_core::kernels::BfsKernel);
    let mixed_queries = sssp_half.len() + bfs_half.len();
    // The two sides are *interleaved* (seq, mixed, seq, mixed, …) instead of
    // measured as two adjacent best-of-N blocks: the ratio is the gated
    // quantity, and block measurement lets slow clock drift (thermal /
    // frequency scaling) bias it by several percent in either direction.
    let mut best_sequential_secs = f64::INFINITY;
    let mut best_mixed_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        direct_engine.run_dyn(&*erased_sssp, &sssp_half);
        direct_engine.run_dyn(&*erased_bfs, &bfs_half);
        best_sequential_secs = best_sequential_secs.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        direct_engine.run_multi(&[(&*erased_sssp, &sssp_half[..]), (&*erased_bfs, &bfs_half[..])]);
        best_mixed_secs = best_mixed_secs.min(start.elapsed().as_secs_f64());
    }
    let sequential = mixed_queries as f64 / best_sequential_secs;
    let mixed = mixed_queries as f64 / best_mixed_secs;
    report.push("mixed2_qps", mixed);
    report.push("mixed2_vs_sequential", mixed / sequential);
    table.push_row([
        format!("2-kernel sequential ({mixed_cohort}q+{mixed_cohort}q)"),
        format!("{sequential:.1}"),
        "-".to_string(),
    ]);
    table.push_row([
        format!("2-kernel run_multi ({mixed_cohort}q+{mixed_cohort}q)"),
        format!("{mixed:.1}"),
        "-".to_string(),
    ]);
    if mixed < sequential * 0.95 {
        eprintln!(
            "[smoke] WARNING: mixed 2-kernel run {mixed:.1} qps is more than 5% below two \
             sequential sweeps at {sequential:.1} qps — the shared-pass bargain is losing \
             (gate: mixed2_vs_sequential >= 0.95)"
        );
    } else if mixed < sequential {
        eprintln!(
            "[smoke] note: mixed 2-kernel run {mixed:.1} qps trails two sequential sweeps at \
             {sequential:.1} qps — within budget, but the shared pass should win on \
             cache-constrained hardware"
        );
    }

    // Tracing-disabled overhead: the fg-trace promise is that an *attached
    // but disabled* sink costs one predicted branch per would-be event, so
    // services can keep a sink wired permanently and flip it on only when
    // debugging. Gate that promise: serial SSSP through an engine with a
    // disabled sink versus one with no sink at all, interleaved (like the
    // mixed-run pair above) so clock drift cannot bias the ratio.
    let traced_sink = fg_trace::TraceSink::new();
    traced_sink.set_enabled(false);
    let traced_engine = ForkGraphEngine::new(&pg, EngineConfig::default())
        .with_trace_sink(std::sync::Arc::clone(&traced_sink));
    let mut best_untraced_secs = f64::INFINITY;
    let mut best_traced_off_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        direct_engine.run_sssp(&sources);
        best_untraced_secs = best_untraced_secs.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        traced_engine.run_sssp(&sources);
        best_traced_off_secs = best_traced_off_secs.min(start.elapsed().as_secs_f64());
    }
    let untraced = scale.queries as f64 / best_untraced_secs;
    let traced_off = scale.queries as f64 / best_traced_off_secs;
    report.push("sssp_traced_off_qps", traced_off);
    report.push("traced_off_vs_untraced", traced_off / untraced);
    table.push_row([
        "sssp, disabled trace sink".to_string(),
        format!("{traced_off:.1}"),
        "-".to_string(),
    ]);
    if traced_off < untraced * 0.98 {
        eprintln!(
            "[smoke] WARNING: sssp with a disabled trace sink runs at {traced_off:.1} qps, \
             more than 2% below the untraced {untraced:.1} qps — the disabled-tracing fast \
             path is no longer one branch (gate: traced_off_vs_untraced >= 0.98)"
        );
    }

    // Delta-frontier incremental restart vs full recompute: after a monotone
    // insertion batch, re-seeding SSSP from the changed edges plus the prior
    // distances must beat — or at the very worst match — rerunning from
    // scratch on the new graph; that ratio is the whole point of the
    // incremental path. Interleaved like the pairs above so clock drift
    // cannot bias the gated ratio.
    let store = VersionedGraph::new(Arc::clone(&pg));
    let n_verts = pg.graph().num_vertices() as u32;
    let mut inserted = 0u32;
    let mut probe = 0u32;
    while inserted < 16 {
        let u = (probe * 131) % n_verts;
        let v = (probe * 577 + 7) % n_verts;
        probe += 1;
        if u == v {
            continue;
        }
        // Weight 1 is the generator's minimum, so every effective change is
        // a new edge or a decrease — the batch stays monotone by design.
        store.insert_edge(u, v, 1).expect("endpoints in range");
        inserted += 1;
    }
    let applied = store.quiesce().expect("a pending batch");
    assert!(applied.monotone, "weight-1 insertions can never be an increase");
    let prev = direct_engine.run_sssp(&sources).per_query;
    let delta_engine = ForkGraphEngine::new(&applied.graph, EngineConfig::default());
    let mut best_full_secs = f64::INFINITY;
    let mut best_delta_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        delta_engine.run_sssp(&sources);
        best_full_secs = best_full_secs.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        delta_engine.run_sssp_incremental(&sources, prev.clone(), &applied.seed_edges);
        best_delta_secs = best_delta_secs.min(start.elapsed().as_secs_f64());
    }
    // The ratio is only honest if both sides compute the same answer.
    let full_result = delta_engine.run_sssp(&sources);
    let delta_result =
        delta_engine.run_sssp_incremental(&sources, prev.clone(), &applied.seed_edges);
    assert_eq!(
        delta_result.per_query, full_result.per_query,
        "incremental SSSP diverged from the full recompute"
    );
    let full_qps = scale.queries as f64 / best_full_secs;
    let delta_qps = scale.queries as f64 / best_delta_secs;
    report.push("delta_sssp_qps", delta_qps);
    report.push("delta_sssp_vs_full", delta_qps / full_qps);
    table.push_row([
        "post-mutation full rerun".to_string(),
        format!("{full_qps:.1}"),
        "-".to_string(),
    ]);
    table.push_row([
        "post-mutation delta restart".to_string(),
        format!("{delta_qps:.1}"),
        "-".to_string(),
    ]);
    if delta_qps < full_qps {
        eprintln!(
            "[smoke] WARNING: incremental SSSP restart {delta_qps:.1} qps is below the \
             from-scratch rerun's {full_qps:.1} qps — the delta frontier is costing more \
             than it saves (gate: delta_sssp_vs_full >= 1.0)"
        );
    }

    // Service-level mutation throughput: log a batch of insertions through
    // the handle and flush once — the log + quiesce + CSR-rebuild write path
    // a wire `Mutate` frame rides, measured per mutation.
    let mutation_batch = (scale.queries * 2).max(8);
    let service =
        ForkGraphService::start(Arc::clone(&pg), EngineConfig::default(), ServiceConfig::default());
    let handle = service.handle();
    let mutate_qps = best_qps(mutation_batch, || {
        for i in 0..mutation_batch as u32 {
            let u = (i * 37) % n_verts;
            let v = (u + 1 + (i * 101) % (n_verts - 1)) % n_verts;
            handle.insert_edge(u, v, 1 + i % 7).expect("endpoints in range, never a self-loop");
        }
        handle.flush_mutations();
    });
    service.shutdown();
    report.push("mutate_qps", mutate_qps);
    table.push_row([
        format!("service mutations ({mutation_batch}/flush)"),
        format!("{mutate_qps:.1}"),
        "-".to_string(),
    ]);

    // Mutate-while-read overlap: the epoch-snapshot payoff. Identical work
    // under two schedules — *serialized* waits for every mutation batch to
    // fold into a published version before querying (the pre-MVCC shape,
    // where the fold quiesced readers), *overlapped* logs the batch and
    // queries immediately, letting the batcher fold under the in-flight
    // reads, which keep their pinned snapshots. Overlap must never lose
    // (gate: mutate_while_read_vs_serialized >= 1.0).
    let overlap_rounds = 3usize;
    let overlap_muts = 8usize;
    let run_schedule = |overlap: bool, salt: u32| -> f64 {
        let service = ForkGraphService::start(
            Arc::clone(&pg),
            EngineConfig::default(),
            ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
        );
        let handle = service.handle();
        let start = std::time::Instant::now();
        for round in 0..overlap_rounds {
            for i in 0..overlap_muts as u32 {
                let u = (salt + round as u32 * 71 + i * 37) % n_verts;
                let v = (u + 1 + (i * 101) % (n_verts - 1)) % n_verts;
                handle.insert_edge(u, v, 1 + i % 7).expect("in range, never a self-loop");
            }
            if !overlap {
                handle.flush_mutations();
            }
            let tickets: Vec<_> = sources
                .iter()
                .map(|&s| handle.submit_query(Query::kernel("sssp").source(s)).expect("submit"))
                .collect();
            for ticket in tickets {
                ticket.wait().expect("service answered");
            }
        }
        handle.flush_mutations();
        let secs = start.elapsed().as_secs_f64();
        service.shutdown();
        (overlap_rounds * sources.len()) as f64 / secs
    };
    // Interleaved best-of-N, like the other gated ratios, so clock drift
    // cannot bias the comparison. Distinct salts keep each run's edge batch
    // fresh (every service gets its own VersionedGraph over the shared pg).
    let mut serialized_qps = 0f64;
    let mut overlapped_qps = 0f64;
    for repeat in 0..REPEATS as u32 {
        serialized_qps = serialized_qps.max(run_schedule(false, repeat * 1009));
        overlapped_qps = overlapped_qps.max(run_schedule(true, 50_000 + repeat * 1009));
    }
    report.push("mutate_while_read_qps", overlapped_qps);
    report.push("mutate_while_read_vs_serialized", overlapped_qps / serialized_qps);
    table.push_row([
        "mutate+read serialized".to_string(),
        format!("{serialized_qps:.1}"),
        "-".to_string(),
    ]);
    table.push_row([
        "mutate+read overlapped".to_string(),
        format!("{overlapped_qps:.1}"),
        "-".to_string(),
    ]);
    if overlapped_qps < serialized_qps {
        eprintln!(
            "[smoke] WARNING: overlapped mutate+read {overlapped_qps:.1} qps is below the \
             serialized schedule's {serialized_qps:.1} qps — folding is blocking readers \
             again (gate: mutate_while_read_vs_serialized >= 1.0)"
        );
    }

    // Localized fold cost: a mutation burst confined to one partition must
    // re-materialize only that partition; every other store is Arc-shared
    // with the previous epoch. 1.0 here would mean each fold rebuilds the
    // whole snapshot — the dirty-partition sharing is broken.
    let frac_store = VersionedGraph::new(Arc::clone(&pg));
    let snapshot = frac_store.current();
    let p0_sources: Vec<u32> =
        (0..n_verts).filter(|&v| snapshot.partition_of(v) == 0).take(8).collect();
    assert!(!p0_sources.is_empty(), "partition 0 owns at least one vertex");
    for (i, &u) in p0_sources.iter().enumerate() {
        // Targets may land anywhere: dirtiness follows the *source* side.
        let v = (u + 1 + i as u32 * 13) % n_verts;
        if v != u {
            frac_store.insert_edge(u, v, 1).expect("in range");
        }
    }
    let localized = frac_store.quiesce().expect("a pending localized burst");
    let slots = localized.partitions_rematerialized + localized.partitions_shared;
    let dirty_frac = localized.partitions_rematerialized as f64 / slots as f64;
    report.push("dirty_rematerialize_frac", dirty_frac);
    table.push_row([
        format!(
            "localized fold ({} dirty / {} partitions)",
            localized.partitions_rematerialized, slots
        ),
        format!("{dirty_frac:.4}"),
        "-".to_string(),
    ]);
    if dirty_frac >= 1.0 {
        eprintln!(
            "[smoke] WARNING: a single-partition mutation burst re-materialized the whole \
             snapshot (dirty_rematerialize_frac {dirty_frac:.2}) — epoch advances are no \
             longer sharing clean partitions (gate: dirty_rematerialize_frac < 1.0)"
        );
    }

    // Compressed partition storage: decode-on-visit replaces raw CSR slice
    // reads with a streaming delta/varint decode — ~2-3 payload bytes per
    // edge instead of 8, paid for with decode arithmetic per visit. The gate
    // holds that arithmetic to ≤10% of raw throughput
    // (compressed_vs_raw_qps >= 0.9); on cache-constrained hardware the
    // smaller footprint wins outright (see the multi_cachesim study). Both
    // stores come from ONE partition plan: the Multilevel partitioner's
    // tie-breaking is not deterministic across separate builds, and a
    // different membership would change the workload being compared.
    let storage_base =
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, scale.partitions);
    let storage_graph = Arc::new(gen::rmat(scale.rmat_levels, 8, 42).with_random_weights(9, 42));
    let storage_plan = PartitionPlan::compute(&storage_graph, &storage_base);
    let raw_store =
        PartitionedGraph::from_plan(Arc::clone(&storage_graph), storage_plan.clone(), storage_base);
    let compressed_store = PartitionedGraph::from_plan(
        Arc::clone(&storage_graph),
        storage_plan,
        storage_base.with_storage(StorageConfig::Compressed),
    );
    let raw_engine = ForkGraphEngine::new(&raw_store, EngineConfig::default());
    let compressed_engine = ForkGraphEngine::new(&compressed_store, EngineConfig::default());
    // The ratio is only honest if both stores compute the same answer.
    assert_eq!(
        raw_engine.run_sssp(&sources).per_query,
        compressed_engine.run_sssp(&sources).per_query,
        "storage modes diverged on the smoke workload"
    );
    // Interleaved best-of-N, like the other gated ratios, so clock drift
    // cannot bias the comparison.
    let mut best_raw_secs = f64::INFINITY;
    let mut best_compressed_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        raw_engine.run_sssp(&sources);
        best_raw_secs = best_raw_secs.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        compressed_engine.run_sssp(&sources);
        best_compressed_secs = best_compressed_secs.min(start.elapsed().as_secs_f64());
    }
    let raw_storage_qps = scale.queries as f64 / best_raw_secs;
    let compressed_qps = scale.queries as f64 / best_compressed_secs;
    let raw_bpe = raw_store.bytes_per_edge();
    let compressed_bpe = compressed_store.bytes_per_edge();
    report.push("sssp_compressed_qps", compressed_qps);
    report.push("compressed_vs_raw_qps", compressed_qps / raw_storage_qps);
    report.push("raw_bytes_per_edge", raw_bpe);
    report.push("compressed_bytes_per_edge", compressed_bpe);
    table.push_row([
        "sssp, raw partition storage".to_string(),
        format!("{raw_storage_qps:.1}"),
        "-".to_string(),
    ]);
    table.push_row([
        format!("sssp, compressed storage ({compressed_bpe:.2} vs {raw_bpe:.2} B/edge)"),
        format!("{compressed_qps:.1}"),
        "-".to_string(),
    ]);
    if compressed_qps < raw_storage_qps * 0.9 {
        eprintln!(
            "[smoke] WARNING: compressed-storage SSSP {compressed_qps:.1} qps is more than 10% \
             below raw storage's {raw_storage_qps:.1} qps — decode-on-visit is costing more than \
             its footprint saves (gate: compressed_vs_raw_qps >= 0.9)"
        );
    }
    if compressed_bpe > raw_bpe * 0.6 {
        eprintln!(
            "[smoke] WARNING: compressed payload at {compressed_bpe:.2} B/edge exceeds 0.6x the \
             raw {raw_bpe:.2} B/edge — the delta/varint encoding has lost its density"
        );
    }

    // Machine-normalised scaling ratios: parallel-vs-serial on the *same*
    // host. Unlike raw qps these survive runner-hardware changes, so the
    // regression gate catches "the executor silently serialised" even when
    // absolute throughput moved for unrelated reasons.
    for kernel in ["sssp", "bfs"] {
        let serial = report.get(&format!("{kernel}_serial_qps")).expect("measured above");
        let parallel4 = report.get(&format!("{kernel}_parallel4_qps")).expect("measured above");
        report.push(format!("{kernel}_speedup4"), parallel4 / serial);
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= 4 {
        for kernel in ["sssp", "bfs"] {
            let speedup = report.get(&format!("{kernel}_speedup4")).expect("pushed above");
            if speedup < 1.5 {
                eprintln!(
                    "[smoke] WARNING: {kernel} 4-worker speedup {speedup:.2}x < 1.5x on a \
                     {cores}-core host — the executor may have lost inter-partition scaling"
                );
            }
        }
    } else {
        eprintln!(
            "[smoke] note: {cores}-core host — parallel rows measure executor overhead, \
             not scaling; the >=1.5x bar applies on >=4 cores"
        );
    }

    SmokeOutcome { report, table }
}

/// A custom kernel that exists only in this bench crate: weighted k-hop
/// reachability (`state[v*(k+1)+h]` = best distance to `v` over ≤ `h`
/// edges), the same shape as `examples/custom_kernel.rs` and the service
/// acceptance test's kernel. Deliberately *not* shared with them: those two
/// copies are load-bearing proof that a kernel defined outside workspace
/// `src/` works end-to-end, and the bench keeps its measured workload
/// self-contained so the smoke numbers can't drift under test refactors.
/// Exercised through the erased path to keep the open-kernel promise
/// measurable.
struct KHopBenchKernel {
    k: u32,
}

impl FppKernel for KHopBenchKernel {
    type Value = (Dist, u32);
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "khop-bench"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![INF_DIST; graph.num_vertices() * (self.k as usize + 1)]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        ((0, 0), 0)
    }

    fn process(
        &self,
        graph: &fg_graph::AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        (dist, hops): Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        let stride = self.k as usize + 1;
        let base = vertex as usize * stride;
        if dist >= state[base + hops as usize] {
            return 0;
        }
        for h in hops as usize..stride {
            if dist < state[base + h] {
                state[base + h] = dist;
            }
        }
        if hops == self.k {
            return 0;
        }
        let mut edges = 0u64;
        for (t, w) in graph.out_edges(vertex) {
            edges += 1;
            let nd = dist + w as Dist;
            if nd < state[t as usize * stride + hops as usize + 1] {
                emit(t, (nd, hops + 1), nd);
            }
        }
        edges
    }
}

/// The `parallel_scaling` experiment: wall time and speedup of the parallel
/// executor over the serial engine at 1/2/4/8 workers on the smoke workload.
pub fn parallel_scaling() -> Vec<Table> {
    let (pg, sources) = workload(Scale::FULL);
    let mut table = Table::new(
        "Inter-partition parallel executor scaling (SSSP, 24 partitions, 32 queries)",
        &["workers", "wall ms", "speedup", "visits", "steals", "idle waits"],
    );
    let serial_engine = ForkGraphEngine::new(&pg, EngineConfig::default());
    let serial_secs = best_secs(|| {
        serial_engine.run_sssp(&sources);
    });
    let serial_result = serial_engine.run_sssp(&sources);
    table.push_row([
        "serial".to_string(),
        format!("{:.1}", serial_secs * 1e3),
        "1.00x".to_string(),
        serial_result.work().partition_visits.to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    for workers in [2usize, 4, 8] {
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(workers));
        let best = best_secs(|| {
            engine.run_sssp(&sources);
        });
        let result = engine.run_sssp(&sources);
        assert_eq!(
            result.per_query, serial_result.per_query,
            "parallel executor diverged from serial results"
        );
        let work = result.work();
        table.push_row([
            workers.to_string(),
            format!("{:.1}", best * 1e3),
            format!("{:.2}x", serial_secs / best),
            work.partition_visits.to_string(),
            work.steals.to_string(),
            work.idle_waits.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The report with values rounded to the JSON emission precision, for
    /// round-trip comparisons.
    fn report_rounded(report: &PerfReport) -> PerfReport {
        let mut rounded = PerfReport::new();
        for (name, value) in &report.metrics {
            rounded.push(name.clone(), (value * 1e4).round() / 1e4);
        }
        rounded
    }

    #[test]
    fn smoke_report_contains_every_gated_metric() {
        let outcome = run_smoke_at(Scale::TINY);
        for kernel in ["sssp", "bfs"] {
            assert!(outcome.report.get(&format!("{kernel}_serial_qps")).unwrap() > 0.0);
            for workers in SMOKE_WORKER_COUNTS {
                assert!(
                    outcome.report.get(&format!("{kernel}_parallel{workers}_qps")).unwrap() > 0.0
                );
            }
        }
        assert!(outcome.report.get("sssp_small4_spawn_qps").unwrap() > 0.0);
        assert!(outcome.report.get("sssp_small4_pool_qps").unwrap() > 0.0);
        assert!(outcome.report.get("small4_pool_vs_spawn").unwrap() > 0.0);
        assert!(outcome.report.get("sssp_dyn_qps").unwrap() > 0.0);
        assert!(outcome.report.get("sssp_dyn_vs_direct").unwrap() > 0.0);
        assert!(outcome.report.get("custom_khop_qps").unwrap() > 0.0);
        assert!(outcome.report.get("mixed2_qps").unwrap() > 0.0);
        assert!(outcome.report.get("mixed2_vs_sequential").unwrap() > 0.0);
        assert!(outcome.report.get("sssp_traced_off_qps").unwrap() > 0.0);
        assert!(outcome.report.get("traced_off_vs_untraced").unwrap() > 0.0);
        assert!(outcome.report.get("delta_sssp_qps").unwrap() > 0.0);
        assert!(outcome.report.get("delta_sssp_vs_full").unwrap() > 0.0);
        assert!(outcome.report.get("mutate_qps").unwrap() > 0.0);
        assert!(outcome.report.get("mutate_while_read_qps").unwrap() > 0.0);
        assert!(outcome.report.get("mutate_while_read_vs_serialized").unwrap() > 0.0);
        assert!(outcome.report.get("sssp_compressed_qps").unwrap() > 0.0);
        assert!(outcome.report.get("compressed_vs_raw_qps").unwrap() > 0.0);
        let raw_bpe = outcome.report.get("raw_bytes_per_edge").unwrap();
        let compressed_bpe = outcome.report.get("compressed_bytes_per_edge").unwrap();
        assert!(
            compressed_bpe > 0.0 && compressed_bpe <= raw_bpe * 0.6,
            "compressed payload must stay within 0.6x of raw: {compressed_bpe} vs {raw_bpe} B/edge"
        );
        let dirty_frac = outcome.report.get("dirty_rematerialize_frac").unwrap();
        assert!(
            dirty_frac > 0.0 && dirty_frac < 1.0,
            "a localized burst must rebuild some but not all partitions, got {dirty_frac}"
        );
        let json = outcome.report.to_json();
        let back = PerfReport::from_json(&json).unwrap();
        assert_eq!(back, report_rounded(&outcome.report));
    }
}
