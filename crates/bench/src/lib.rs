//! # fg-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation at laptop scale. The `repro` binary dispatches to the
//! experiment functions in [`experiments`]; each returns Markdown tables that
//! are printed and written under `target/repro/`.
//!
//! Workloads are scaled-down versions of the paper's (see DESIGN.md §5 and
//! §6): smaller synthetic graphs, fewer queries, and a proportionally smaller
//! simulated LLC. Absolute numbers therefore differ from the paper; the
//! comparisons (which system wins, by roughly what factor, where the trends
//! cross) are what the harness reproduces.

pub mod experiments;
pub mod report;
pub mod runner;
pub mod smoke;
pub mod wire;

use std::io::Write;
use std::path::PathBuf;

use fg_metrics::Table;

/// Where experiment reports are written.
pub fn report_dir() -> PathBuf {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("repro");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Print tables to stdout and write them to `target/repro/<name>.md`.
pub fn emit_report(name: &str, tables: &[Table]) {
    let mut content = String::new();
    for t in tables {
        content.push_str(&t.to_markdown());
        content.push('\n');
    }
    println!("{content}");
    let path = report_dir().join(format!("{name}.md"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(content.as_bytes());
        eprintln!("[repro] wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_dir_is_creatable_and_reports_are_written() {
        let mut t = Table::new("smoke", &["a"]);
        t.push_row(["1"]);
        emit_report("smoke_test", &[t]);
        assert!(report_dir().join("smoke_test.md").exists());
    }
}
