//! Shared experiment runner: executes one (system, scheme, application,
//! dataset) combination and returns its [`Measurement`].

use std::sync::Arc;

use fg_baselines::fpp::{ExecutionScheme, FppDriver, QueryKind};
use fg_baselines::{GeminiEngine, GpsEngine, GraphItEngine, LigraEngine};
use fg_cachesim::CacheConfig;
use fg_graph::partition::PartitionConfig;
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, VertexId};
use fg_metrics::Measurement;
use fg_seq::ppr::PprConfig;
use forkgraph_core::{EngineConfig, ForkGraphEngine, YieldPolicy};

/// The simulated LLC used throughout the harness (scaled from the paper's
/// 13.75 MiB to match the scaled datasets).
pub fn scaled_llc() -> CacheConfig {
    CacheConfig { capacity_bytes: 256 * 1024, line_bytes: 64, associativity: 16 }
}

/// The systems compared in the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Ligra-like engine.
    Ligra,
    /// Gemini-like engine.
    Gemini,
    /// GraphIt-like engine.
    GraphIt,
    /// ForkGraph.
    ForkGraph,
}

impl System {
    /// The three baseline systems.
    pub fn baselines() -> [System; 3] {
        [System::Ligra, System::Gemini, System::GraphIt]
    }

    /// All four systems.
    pub fn all() -> [System; 4] {
        [System::Ligra, System::Gemini, System::GraphIt, System::ForkGraph]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Ligra => "Ligra",
            System::Gemini => "Gemini",
            System::GraphIt => "GraphIt",
            System::ForkGraph => "ForkGraph",
        }
    }
}

/// An FPP workload: the query kind plus its source vertices.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Query kind (SSSP / BFS / PPR).
    pub kind: QueryKind,
    /// Source vertices (one query each).
    pub sources: Vec<VertexId>,
}

impl Workload {
    /// An SSSP workload (used by BC and LL).
    pub fn sssp(sources: Vec<VertexId>) -> Self {
        Workload { kind: QueryKind::Sssp, sources }
    }

    /// A BFS workload.
    pub fn bfs(sources: Vec<VertexId>) -> Self {
        Workload { kind: QueryKind::Bfs, sources }
    }

    /// A PPR workload (used by NCP).
    pub fn ppr(sources: Vec<VertexId>, config: PprConfig) -> Self {
        Workload { kind: QueryKind::Ppr(config), sources }
    }
}

/// Run `workload` on a baseline system under `scheme`.
pub fn run_baseline(
    system: System,
    graph: &Arc<CsrGraph>,
    workload: &Workload,
    scheme: ExecutionScheme,
    cache: Option<CacheConfig>,
) -> Measurement {
    fn drive<E: GpsEngine>(
        engine: E,
        graph: &Arc<CsrGraph>,
        workload: &Workload,
        scheme: ExecutionScheme,
        cache: Option<CacheConfig>,
    ) -> Measurement {
        let mut driver = FppDriver::new(engine, Arc::clone(graph));
        if let Some(c) = cache {
            driver = driver.with_cache(c);
        }
        driver.run(&workload.kind, &workload.sources, scheme).measurement
    }
    match system {
        System::Ligra => drive(LigraEngine::new(), graph, workload, scheme, cache),
        System::Gemini => drive(GeminiEngine::new(), graph, workload, scheme, cache),
        System::GraphIt => drive(GraphItEngine::new(), graph, workload, scheme, cache),
        System::ForkGraph => panic!("use run_forkgraph for ForkGraph"),
    }
}

/// Run `workload` on ForkGraph over `llc_bytes`-sized partitions.
pub fn run_forkgraph(
    graph: &CsrGraph,
    workload: &Workload,
    llc_bytes: usize,
    mut config: EngineConfig,
    cache: Option<CacheConfig>,
) -> Measurement {
    let pg = PartitionedGraph::build(graph, PartitionConfig::llc_sized(llc_bytes));
    if let Some(c) = cache {
        config = config.with_cache(c);
    }
    let engine = ForkGraphEngine::new(&pg, config);
    match &workload.kind {
        QueryKind::Sssp => engine.run_sssp(&workload.sources).measurement,
        QueryKind::Bfs => engine.run_bfs(&workload.sources).measurement,
        QueryKind::Ppr(ppr) => engine.run_ppr(&workload.sources, ppr).measurement,
    }
}

/// The ForkGraph engine configuration used for PPR/NCP workloads (yielding
/// heuristic 1 with a 100µ budget, Section 6.4 of the paper).
pub fn forkgraph_ppr_config() -> EngineConfig {
    EngineConfig::default().with_yield_policy(YieldPolicy::EdgeBudgetAuto { factor: 100.0 })
}

/// The ForkGraph engine configuration used for SSSP/BFS workloads (BC, LL).
pub fn forkgraph_sssp_config() -> EngineConfig {
    EngineConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    #[test]
    fn baseline_and_forkgraph_runners_produce_measurements() {
        let graph = Arc::new(gen::rmat(8, 5, 1).with_random_weights(6, 1));
        let workload = Workload::sssp(vec![0, 3, 9]);
        let base =
            run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::InterQuery, None);
        assert!(base.work.edges_processed > 0);
        let fork = run_forkgraph(&graph, &workload, 64 * 1024, forkgraph_sssp_config(), None);
        assert!(fork.work.edges_processed > 0);
        assert_eq!(fork.label, "ForkGraph");
    }

    #[test]
    fn cache_instrumented_runs_report_cache_numbers() {
        let graph = Arc::new(gen::rmat(8, 5, 2));
        let workload = Workload::bfs(vec![0, 1, 2, 3]);
        let llc = scaled_llc();
        let base = run_baseline(
            System::GraphIt,
            &graph,
            &workload,
            ExecutionScheme::InterQuery,
            Some(llc),
        );
        assert!(base.cache.unwrap().misses > 0);
        let fork = run_forkgraph(
            &graph,
            &workload,
            llc.capacity_bytes,
            forkgraph_sssp_config(),
            Some(llc),
        );
        assert!(fork.cache.unwrap().accesses > 0);
    }

    #[test]
    fn system_metadata() {
        assert_eq!(System::all().len(), 4);
        assert_eq!(System::baselines().len(), 3);
        assert_eq!(System::ForkGraph.name(), "ForkGraph");
    }
}
