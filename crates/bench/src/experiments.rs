//! One function per table / figure of the paper's evaluation.
//!
//! Every function returns the Markdown tables that the `repro` binary prints
//! and writes under `target/repro/`. Workloads are scaled down (see DESIGN.md
//! §5/§6); each experiment states its scaled parameters in the table title.

use std::sync::Arc;
use std::time::Instant;

use fg_baselines::atomic_free::atomic_free_sssp;
use fg_baselines::fpp::ExecutionScheme;
use fg_cachesim::StallModel;
use fg_graph::datasets::{self, DatasetSpec};
use fg_graph::partition::{PartitionConfig, PartitionMethod, PartitionPlan};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, VertexId};
use fg_metrics::report::fmt_f64;
use fg_metrics::{Measurement, Table, WorkCounters};
use fg_seq::ppr::PprConfig;
use forkgraph_core::buffer::{consolidate, ConsolidationMethod};
use forkgraph_core::{
    AblationLevel, EngineConfig, ForkGraphEngine, Operation, SchedulingPolicy, YieldPolicy,
};

use crate::runner::{
    forkgraph_ppr_config, forkgraph_sssp_config, run_baseline, run_forkgraph, scaled_llc, System,
    Workload,
};

// Scales used throughout; small enough that `repro all` finishes in minutes.
const ROAD_SCALE: f64 = 0.05;
const SOCIAL_SCALE: f64 = 0.08;

fn scale_for(spec: &DatasetSpec) -> f64 {
    if spec.is_road() {
        ROAD_SCALE
    } else {
        SOCIAL_SCALE
    }
}

fn weighted(spec: &DatasetSpec) -> CsrGraph {
    spec.generate_weighted(scale_for(spec))
}

fn unweighted(spec: &DatasetSpec) -> CsrGraph {
    spec.scaled(scale_for(spec))
}

fn sources(graph: &CsrGraph, count: usize, seed: u64) -> Vec<VertexId> {
    fg_apps::sample_sources(graph.num_vertices(), count, seed)
}

fn ppr_config() -> PprConfig {
    PprConfig { epsilon: 1e-4, ..Default::default() }
}

fn secs(m: &Measurement) -> String {
    fmt_f64(m.seconds())
}

// ---------------------------------------------------------------------------
// Table 1 & Figure 1: profiling the baselines on an NCP-style PPR batch
// ---------------------------------------------------------------------------

/// Table 1: profiling of a PPR batch on the LiveJournal stand-in for the three
/// baselines under single-threaded, intra-query (t = cores), and inter-query
/// (t = 1) schemes — edges processed (instruction proxy), simulated LLC loads,
/// miss ratio, and runtime.
pub fn table1() -> Vec<Table> {
    let graph = Arc::new(unweighted(&datasets::LJ));
    let workload = Workload::ppr(sources(&graph, 32, 1), ppr_config());
    let llc = scaled_llc();
    let mut table = Table::new(
        format!(
            "Table 1 — profiling {} PPR queries on Lj-scaled ({} vertices, {} edges)",
            workload.sources.len(),
            graph.num_vertices(),
            graph.num_edges()
        ),
        &["system", "scheme", "edges processed", "LLC loads", "LLC miss ratio", "runtime (s)"],
    );
    for system in System::baselines() {
        for scheme in [
            ExecutionScheme::SingleThreaded,
            ExecutionScheme::IntraQuery,
            ExecutionScheme::InterQuery,
        ] {
            let m = run_baseline(system, &graph, &workload, scheme, Some(llc));
            let cache = m.cache.unwrap();
            table.push_row([
                system.name().to_string(),
                scheme.label(),
                m.work.edges_processed.to_string(),
                cache.loads.to_string(),
                format!("{:.1}%", cache.miss_ratio() * 100.0),
                secs(&m),
            ]);
        }
    }
    vec![table]
}

/// Figure 1: normalised execution time and normalised LLC misses as the number
/// of threads per query varies (t = cores, 2, 1).
pub fn figure1() -> Vec<Table> {
    let graph = Arc::new(unweighted(&datasets::LJ));
    let workload = Workload::ppr(sources(&graph, 32, 1), ppr_config());
    let llc = scaled_llc();
    let schemes = [
        ("t=cores", ExecutionScheme::IntraQuery),
        ("t=2", ExecutionScheme::Hybrid { threads_per_query: 2 }),
        ("t=1", ExecutionScheme::InterQuery),
    ];
    let mut time_table = Table::new(
        "Figure 1a — normalised execution time vs threads per query (lower is better)",
        &["system", "t=cores", "t=2", "t=1"],
    );
    let mut miss_table = Table::new(
        "Figure 1b — normalised #LLC misses vs threads per query",
        &["system", "t=cores", "t=2", "t=1"],
    );
    for system in System::baselines() {
        let runs: Vec<Measurement> = schemes
            .iter()
            .map(|(_, scheme)| run_baseline(system, &graph, &workload, *scheme, Some(llc)))
            .collect();
        let base_time = runs[0].seconds().max(1e-9);
        let base_miss = runs[0].cache.unwrap().misses.max(1) as f64;
        time_table.push_row(
            std::iter::once(system.name().to_string())
                .chain(runs.iter().map(|m| fmt_f64(m.seconds() / base_time))),
        );
        miss_table.push_row(
            std::iter::once(system.name().to_string())
                .chain(runs.iter().map(|m| fmt_f64(m.cache.unwrap().misses as f64 / base_miss))),
        );
    }
    vec![time_table, miss_table]
}

// ---------------------------------------------------------------------------
// Figure 8: scheduling-policy worked example
// ---------------------------------------------------------------------------

/// Figure 8: number of operations processed under the four scheduling methods
/// for a small multi-source SSSP workload on a road-like graph.
pub fn figure8() -> Vec<Table> {
    let graph = datasets::CA.generate_weighted(0.02);
    let pg = PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
    );
    let srcs = sources(&graph, 2, 8);
    let mut table = Table::new(
        "Figure 8 — operations processed under different scheduling methods (2 SSSP queries)",
        &["scheduling", "operations processed", "partition visits"],
    );
    for policy in SchedulingPolicy::all() {
        let config =
            EngineConfig::default().with_scheduling(policy).with_yield_policy(YieldPolicy::None);
        let result = ForkGraphEngine::new(&pg, config).run_sssp(&srcs);
        table.push_row([
            policy.name().to_string(),
            result.work().operations_processed.to_string(),
            result.work().partition_visits.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Figure 9: overall performance on BC / NCP / LL
// ---------------------------------------------------------------------------

fn normalised_table(label: &str) -> Table {
    Table::new(
        label,
        &[
            "graph",
            "Ligra (t=1)",
            "Gemini (t=1)",
            "GraphIt",
            "ForkGraph",
            "ForkGraph speedup vs best GPS",
        ],
    )
}

/// Figure 9: overall execution time of BC, NCP, and LL, normalised to
/// Ligra (t = 1), for the four systems.
pub fn figure9() -> Vec<Table> {
    let mut tables = Vec::new();

    // (a) BC on all eight graphs: a batch of SSSPs from sampled sources.
    {
        let mut table =
            normalised_table("Figure 9a — BC (normalised to Ligra t=1, lower is better)");
        for spec in datasets::all() {
            let graph = Arc::new(weighted(&spec));
            let workload = Workload::sssp(sources(&graph, 8, 9));
            let ligra =
                run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::InterQuery, None);
            let gemini =
                run_baseline(System::Gemini, &graph, &workload, ExecutionScheme::InterQuery, None);
            let graphit =
                run_baseline(System::GraphIt, &graph, &workload, ExecutionScheme::IntraQuery, None);
            let fork = run_forkgraph(
                &graph,
                &workload,
                scaled_llc().capacity_bytes,
                forkgraph_sssp_config(),
                None,
            );
            let base = ligra.seconds().max(1e-9);
            let best_gps = ligra.seconds().min(gemini.seconds()).min(graphit.seconds());
            table.push_row([
                spec.name.to_string(),
                "1.00".to_string(),
                fmt_f64(gemini.seconds() / base),
                fmt_f64(graphit.seconds() / base),
                fmt_f64(fork.seconds() / base),
                format!("{}x", fmt_f64(best_gps / fork.seconds().max(1e-9))),
            ]);
        }
        tables.push(table);
    }

    // (b) NCP on the five social/web graphs: a batch of PPRs.
    {
        let mut table = normalised_table("Figure 9b — NCP (normalised to Ligra t=1)");
        for spec in datasets::ncp_graphs() {
            let graph = Arc::new(unweighted(&spec));
            let workload = Workload::ppr(sources(&graph, 16, 11), ppr_config());
            let ligra =
                run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::InterQuery, None);
            let gemini =
                run_baseline(System::Gemini, &graph, &workload, ExecutionScheme::InterQuery, None);
            let graphit =
                run_baseline(System::GraphIt, &graph, &workload, ExecutionScheme::InterQuery, None);
            let fork = run_forkgraph(
                &graph,
                &workload,
                scaled_llc().capacity_bytes,
                forkgraph_ppr_config(),
                None,
            );
            let base = ligra.seconds().max(1e-9);
            let best_gps = ligra.seconds().min(gemini.seconds()).min(graphit.seconds());
            table.push_row([
                spec.name.to_string(),
                "1.00".to_string(),
                fmt_f64(gemini.seconds() / base),
                fmt_f64(graphit.seconds() / base),
                fmt_f64(fork.seconds() / base),
                format!("{}x", fmt_f64(best_gps / fork.seconds().max(1e-9))),
            ]);
        }
        tables.push(table);
    }

    // (c) LL on the road networks + Wk/Pt: a batch of SSSPs from landmarks.
    {
        let mut table = normalised_table("Figure 9c — LL (normalised to Ligra t=1)");
        for spec in [datasets::CA, datasets::US, datasets::EU, datasets::WK, datasets::PT] {
            let graph = Arc::new(weighted(&spec));
            let workload = Workload::sssp(sources(&graph, 16, 13));
            let ligra =
                run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::InterQuery, None);
            let gemini =
                run_baseline(System::Gemini, &graph, &workload, ExecutionScheme::InterQuery, None);
            let graphit =
                run_baseline(System::GraphIt, &graph, &workload, ExecutionScheme::IntraQuery, None);
            let fork = run_forkgraph(
                &graph,
                &workload,
                scaled_llc().capacity_bytes,
                forkgraph_sssp_config(),
                None,
            );
            let base = ligra.seconds().max(1e-9);
            let best_gps = ligra.seconds().min(gemini.seconds()).min(graphit.seconds());
            table.push_row([
                spec.name.to_string(),
                "1.00".to_string(),
                fmt_f64(gemini.seconds() / base),
                fmt_f64(graphit.seconds() / base),
                fmt_f64(fork.seconds() / base),
                format!("{}x", fmt_f64(best_gps / fork.seconds().max(1e-9))),
            ]);
        }
        tables.push(table);
    }
    tables
}

// ---------------------------------------------------------------------------
// Table 3: NCP execution time and memory consumption
// ---------------------------------------------------------------------------

/// Table 3: NCP execution time (A) and memory consumption (B) per system and
/// dataset.
pub fn table3() -> Vec<Table> {
    let mut time_table = Table::new(
        "Table 3A — NCP execution time (seconds, scaled workload)",
        &["system", "Or", "Wk", "Lj", "Pt", "Tw"],
    );
    let mut mem_table = Table::new(
        "Table 3B — memory consumption (MiB, scaled workload)",
        &["system", "Or", "Wk", "Lj", "Pt", "Tw"],
    );
    let specs = datasets::ncp_graphs();
    let graphs: Vec<Arc<CsrGraph>> = specs.iter().map(|s| Arc::new(unweighted(s))).collect();
    let workloads: Vec<Workload> =
        graphs.iter().map(|g| Workload::ppr(sources(g, 16, 17), ppr_config())).collect();

    let mut rows: Vec<(String, Vec<Measurement>)> = Vec::new();
    for system in System::baselines() {
        for (label, scheme) in
            [("t=cores", ExecutionScheme::IntraQuery), ("t=1", ExecutionScheme::InterQuery)]
        {
            let runs: Vec<Measurement> = graphs
                .iter()
                .zip(workloads.iter())
                .map(|(g, w)| run_baseline(system, g, w, scheme, None))
                .collect();
            rows.push((format!("{} ({label})", system.name()), runs));
        }
    }
    let fork_runs: Vec<Measurement> = graphs
        .iter()
        .zip(workloads.iter())
        .map(|(g, w)| {
            run_forkgraph(g, w, scaled_llc().capacity_bytes, forkgraph_ppr_config(), None)
        })
        .collect();
    rows.push(("ForkGraph".to_string(), fork_runs));

    for (label, runs) in &rows {
        time_table.push_row(std::iter::once(label.clone()).chain(runs.iter().map(secs)));
        mem_table.push_row(std::iter::once(label.clone()).chain(runs.iter().map(|m| {
            fmt_f64(m.memory.map(|mem| mem.total_bytes() as f64 / (1024.0 * 1024.0)).unwrap_or(0.0))
        })));
    }
    vec![time_table, mem_table]
}

// ---------------------------------------------------------------------------
// Figure 10: LLC misses and edges processed
// ---------------------------------------------------------------------------

/// Figure 10: simulated LLC misses (a) and edges processed (b) for LL on road
/// graphs and NCP on social graphs, across all systems plus the sequential
/// algorithm.
pub fn figure10() -> Vec<Table> {
    let llc = scaled_llc();
    let cases: Vec<(String, Arc<CsrGraph>, Workload, EngineConfig)> = vec![
        {
            let g = Arc::new(datasets::CA.generate_weighted(ROAD_SCALE));
            let w = Workload::sssp(sources(&g, 8, 21));
            ("LL on Ca".to_string(), g, w, forkgraph_sssp_config())
        },
        {
            let g = Arc::new(datasets::US.generate_weighted(0.03));
            let w = Workload::sssp(sources(&g, 8, 22));
            ("LL on Us".to_string(), g, w, forkgraph_sssp_config())
        },
        {
            let g = Arc::new(datasets::LJ.scaled(0.06));
            let w = Workload::ppr(sources(&g, 8, 23), ppr_config());
            ("NCP on Lj".to_string(), g, w, forkgraph_ppr_config())
        },
        {
            let g = Arc::new(datasets::TW.scaled(0.04));
            let w = Workload::ppr(sources(&g, 8, 24), ppr_config());
            ("NCP on Tw".to_string(), g, w, forkgraph_ppr_config())
        },
    ];
    let mut miss_table = Table::new(
        "Figure 10a — simulated #LLC misses",
        &[
            "workload",
            "Ligra (t=cores)",
            "Ligra (t=1)",
            "Gemini (t=1)",
            "GraphIt (t=1)",
            "ForkGraph",
            "Sequential",
        ],
    );
    let mut work_table = Table::new(
        "Figure 10b — #edges processed",
        &[
            "workload",
            "Ligra (t=cores)",
            "Ligra (t=1)",
            "Gemini (t=1)",
            "GraphIt (t=1)",
            "ForkGraph",
            "Sequential",
        ],
    );
    for (label, graph, workload, fork_config) in cases {
        let runs = [
            run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::IntraQuery, Some(llc)),
            run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::InterQuery, Some(llc)),
            run_baseline(System::Gemini, &graph, &workload, ExecutionScheme::InterQuery, Some(llc)),
            run_baseline(
                System::GraphIt,
                &graph,
                &workload,
                ExecutionScheme::InterQuery,
                Some(llc),
            ),
            run_forkgraph(&graph, &workload, llc.capacity_bytes, fork_config, Some(llc)),
        ];
        // Sequential baseline: the best sequential algorithm per query.
        let seq_edges: u64 = workload
            .sources
            .iter()
            .map(|&s| match &workload.kind {
                fg_baselines::fpp::QueryKind::Sssp => {
                    fg_seq::dijkstra::dijkstra(&graph, s).edges_processed
                }
                fg_baselines::fpp::QueryKind::Bfs => fg_seq::bfs::bfs(&graph, s).edges_processed,
                fg_baselines::fpp::QueryKind::Ppr(c) => {
                    fg_seq::ppr::ppr_push(&graph, s, c).edges_processed
                }
            })
            .sum();
        miss_table.push_row(
            std::iter::once(label.clone())
                .chain(runs.iter().map(|m| m.cache.unwrap().misses.to_string()))
                .chain(std::iter::once("—".to_string())),
        );
        work_table.push_row(
            std::iter::once(label)
                .chain(runs.iter().map(|m| m.work.edges_processed.to_string()))
                .chain(std::iter::once(seq_edges.to_string())),
        );
    }
    vec![miss_table, work_table]
}

// ---------------------------------------------------------------------------
// Figure 11: cumulative optimisation ablation
// ---------------------------------------------------------------------------

/// Figure 11: speedups over Ligra (t = cores) as the ForkGraph optimisations
/// are enabled cumulatively (+buffer, +consolidation, +priority scheduling,
/// +yielding).
pub fn figure11() -> Vec<Table> {
    let cases: Vec<(String, Arc<CsrGraph>, Workload)> = vec![
        {
            let g = Arc::new(datasets::CA.generate_weighted(ROAD_SCALE));
            let w = Workload::sssp(sources(&g, 8, 31));
            ("LL on Ca".to_string(), g, w)
        },
        {
            let g = Arc::new(datasets::US.generate_weighted(0.03));
            let w = Workload::sssp(sources(&g, 8, 32));
            ("LL on Us".to_string(), g, w)
        },
        {
            let g = Arc::new(datasets::LJ.scaled(0.06));
            let w = Workload::ppr(sources(&g, 8, 33), ppr_config());
            ("NCP on Lj".to_string(), g, w)
        },
        {
            let g = Arc::new(datasets::TW.scaled(0.04));
            let w = Workload::ppr(sources(&g, 8, 34), ppr_config());
            ("NCP on Tw".to_string(), g, w)
        },
    ];
    let mut table = Table::new(
        "Figure 11 — speedups over Ligra (t=cores) with cumulative optimisations",
        &["workload", "+buffer", "+consolidation", "+priority scheduling", "+yielding"],
    );
    for (label, graph, workload) in cases {
        let baseline =
            run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::IntraQuery, None);
        let mut cells = vec![label];
        for level in AblationLevel::all() {
            let mut config = EngineConfig::for_ablation(level);
            if matches!(workload.kind, fg_baselines::fpp::QueryKind::Ppr(_))
                && level == AblationLevel::Full
            {
                config = config.with_yield_policy(YieldPolicy::EdgeBudgetAuto { factor: 100.0 });
            }
            let m = run_forkgraph(&graph, &workload, scaled_llc().capacity_bytes, config, None);
            cells.push(format!("{}x", fmt_f64(baseline.seconds() / m.seconds().max(1e-9))));
        }
        table.push_row(cells);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Table 4: scheduling and yielding parameter sweeps
// ---------------------------------------------------------------------------

fn bc_on_us() -> (Arc<CsrGraph>, Workload) {
    let g = Arc::new(datasets::US.generate_weighted(0.03));
    let w = Workload::sssp(sources(&g, 16, 41));
    (g, w)
}

/// Table 4A: impact of the priority functor / scheduling policy on BC.
pub fn table4a() -> Vec<Table> {
    let (graph, workload) = bc_on_us();
    let mut table = Table::new(
        "Table 4A — impact of inter-partition scheduling (BC on Us-scaled, yielding enabled)",
        &["priority functor", "execution time (s)", "edges processed"],
    );
    for policy in SchedulingPolicy::all() {
        let config = EngineConfig::default().with_scheduling(policy);
        let m = run_forkgraph(&graph, &workload, scaled_llc().capacity_bytes, config, None);
        table.push_row([
            match policy {
                SchedulingPolicy::Priority => "Shortest".to_string(),
                other => other.name().to_string(),
            },
            secs(&m),
            m.work.edges_processed.to_string(),
        ]);
    }
    vec![table]
}

/// Table 4B: yielding heuristic 1 (edge budget) threshold sweep.
pub fn table4b() -> Vec<Table> {
    let (graph, workload) = bc_on_us();
    let mut table = Table::new(
        "Table 4B — yielding heuristic 1 (edge budget, multiples of mu = |E_P|/|Q|)",
        &["threshold", "execution time (s)", "edges processed", "yields"],
    );
    let factors = [("0.25mu", 0.25), ("0.5mu", 0.5), ("mu", 1.0), ("2mu", 2.0), ("4mu", 4.0)];
    for (label, factor) in factors {
        let config =
            EngineConfig::default().with_yield_policy(YieldPolicy::EdgeBudgetAuto { factor });
        let m = run_forkgraph(&graph, &workload, scaled_llc().capacity_bytes, config, None);
        table.push_row([
            label.to_string(),
            secs(&m),
            m.work.edges_processed.to_string(),
            m.work.yields.to_string(),
        ]);
    }
    let none = run_forkgraph(
        &graph,
        &workload,
        scaled_llc().capacity_bytes,
        EngineConfig::default().with_yield_policy(YieldPolicy::None),
        None,
    );
    table.push_row([
        "No yielding".to_string(),
        secs(&none),
        none.work.edges_processed.to_string(),
        "0".to_string(),
    ]);
    vec![table]
}

/// Table 4C: yielding heuristic 2 (value range, multiples of Δ) sweep.
pub fn table4c() -> Vec<Table> {
    let (graph, workload) = bc_on_us();
    // Base Δ: a few multiples of the maximum edge weight, in the spirit of
    // Δ-stepping's tuning on road networks.
    let base_delta: u64 = 16;
    let mut table = Table::new(
        "Table 4C — yielding heuristic 2 (value range, multiples of delta)",
        &["threshold", "execution time (s)", "edges processed", "yields"],
    );
    for (label, mult) in
        [("0.25delta", 0.25), ("0.5delta", 0.5), ("delta", 1.0), ("2delta", 2.0), ("4delta", 4.0)]
    {
        let delta = ((base_delta as f64) * mult).ceil() as u64;
        let config = EngineConfig::default().with_yield_policy(YieldPolicy::ValueRange { delta });
        let m = run_forkgraph(&graph, &workload, scaled_llc().capacity_bytes, config, None);
        table.push_row([
            label.to_string(),
            secs(&m),
            m.work.edges_processed.to_string(),
            m.work.yields.to_string(),
        ]);
    }
    let none = run_forkgraph(
        &graph,
        &workload,
        scaled_llc().capacity_bytes,
        EngineConfig::default().with_yield_policy(YieldPolicy::None),
        None,
    );
    table.push_row([
        "No yielding".to_string(),
        secs(&none),
        none.work.edges_processed.to_string(),
        "0".to_string(),
    ]);
    vec![table]
}

// ---------------------------------------------------------------------------
// Table 5: consolidation complexity
// ---------------------------------------------------------------------------

/// Table 5: time to consolidate a buffer of R operations by sorting vs
/// scanning, with a single buffer vs K buckets.
pub fn table5() -> Vec<Table> {
    let num_ops = 200_000usize;
    let num_queries = 256usize;
    let ops: Vec<Operation<u64>> = (0..num_ops)
        .map(|i| {
            let q = ((i * 2654435761) % num_queries) as u32;
            Operation::new(q, i as u32, i as u64, (i as u64 * 37) % 1000)
        })
        .collect();
    let mut table = Table::new(
        format!("Table 5 — consolidation of {num_ops} operations over {num_queries} queries (milliseconds)"),
        &["method", "single buffer", "K=16 buckets", "K=|Q| buckets"],
    );
    let time_it = |method: ConsolidationMethod, buckets: usize| -> f64 {
        // Split operations into buckets by query id, then consolidate each
        // bucket independently, as the multi-bucket buffer does.
        let start = Instant::now();
        let mut grouped = 0usize;
        if buckets <= 1 {
            grouped += consolidate(&ops, num_queries, method).len();
        } else {
            let mut parts: Vec<Vec<Operation<u64>>> = vec![Vec::new(); buckets];
            for op in &ops {
                parts[(op.query as usize) % buckets].push(*op);
            }
            for part in &parts {
                grouped += consolidate(part, num_queries, method).len();
            }
        }
        assert!(grouped >= num_queries.min(num_ops));
        start.elapsed().as_secs_f64() * 1e3
    };
    for (label, method) in
        [("Sort", ConsolidationMethod::Sort), ("Scan", ConsolidationMethod::Scan)]
    {
        table.push_row([
            label.to_string(),
            fmt_f64(time_it(method, 1)),
            fmt_f64(time_it(method, 16)),
            fmt_f64(time_it(method, num_queries)),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Figure 13: memory stall breakdown
// ---------------------------------------------------------------------------

/// Figure 13: fraction of memory-unit time stalled, per system, on the NCP
/// workload (derived from the simulated cache counters and the stall model).
pub fn figure13() -> Vec<Table> {
    let graph = Arc::new(datasets::LJ.scaled(0.06));
    let workload = Workload::ppr(sources(&graph, 16, 51), ppr_config());
    let llc = scaled_llc();
    let model = StallModel::default();
    let mut table = Table::new(
        "Figure 13 — memory-unit stall breakdown (NCP on Lj-scaled)",
        &["system", "LLC miss ratio", "stalled fraction of memory time"],
    );
    let mut push = |label: String, m: &Measurement| {
        let cache = m.cache.unwrap();
        let stats = fg_cachesim::CacheStats {
            accesses: cache.accesses,
            hits: cache.accesses - cache.misses,
            misses: cache.misses,
            loads: cache.loads,
            stores: cache.accesses - cache.loads,
        };
        let breakdown = model.breakdown(&stats);
        table.push_row([
            label,
            format!("{:.1}%", cache.miss_ratio() * 100.0),
            format!("{:.1}%", breakdown.stalled_fraction() * 100.0),
        ]);
    };
    for system in System::baselines() {
        for (label, scheme) in
            [("t=cores", ExecutionScheme::IntraQuery), ("t=1", ExecutionScheme::InterQuery)]
        {
            let m = run_baseline(system, &graph, &workload, scheme, Some(llc));
            push(format!("{} ({label})", system.name()), &m);
        }
    }
    let fork =
        run_forkgraph(&graph, &workload, llc.capacity_bytes, forkgraph_ppr_config(), Some(llc));
    push("ForkGraph".to_string(), &fork);
    vec![table]
}

// ---------------------------------------------------------------------------
// Figure 14: thread scalability
// ---------------------------------------------------------------------------

/// Figure 14: ForkGraph speedup as the number of worker threads grows.
pub fn figure14() -> Vec<Table> {
    let specs = [datasets::OR, datasets::LJ, datasets::PT];
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let mut headers: Vec<String> = vec!["graph".to_string()];
    headers.extend((1..=max_threads).map(|t| format!("{t} thread(s)")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 14 — ForkGraph speedup vs number of threads (NCP workload)",
        &header_refs,
    );
    for spec in specs {
        let graph = unweighted(&spec);
        let workload = Workload::ppr(sources(&graph, 16, 61), ppr_config());
        let mut times = Vec::new();
        for threads in 1..=max_threads {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let elapsed = pool.install(|| {
                run_forkgraph(
                    &graph,
                    &workload,
                    scaled_llc().capacity_bytes,
                    forkgraph_ppr_config(),
                    None,
                )
                .seconds()
            });
            times.push(elapsed);
        }
        let base = times[0].max(1e-9);
        table.push_row(
            std::iter::once(spec.name.to_string())
                .chain(times.iter().map(|t| format!("{}x", fmt_f64(base / t.max(1e-9))))),
        );
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Figure 15: throughput vs number of queries
// ---------------------------------------------------------------------------

/// Figure 15: normalised throughput (queries per second, relative to a single
/// query) as the number of FPP queries grows, for five query types.
pub fn figure15() -> Vec<Table> {
    let counts = [1usize, 4, 16, 64];
    let mut headers: Vec<String> = vec!["query type".to_string()];
    headers.extend(counts.iter().map(|c| format!("|Q|={c}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table =
        Table::new("Figure 15 — normalised throughput vs number of queries", &header_refs);

    let social = datasets::LJ.scaled(0.06);
    let road = datasets::US.generate_weighted(0.03);
    let pg_social =
        PartitionedGraph::build(&social, PartitionConfig::llc_sized(scaled_llc().capacity_bytes));
    let pg_road =
        PartitionedGraph::build(&road, PartitionConfig::llc_sized(scaled_llc().capacity_bytes));

    let mut run_series = |label: &str, run: &mut dyn FnMut(&[VertexId]) -> f64| {
        let graph_n =
            if label.contains("Us") { road.num_vertices() } else { social.num_vertices() };
        let mut throughputs = Vec::new();
        for &count in &counts {
            let srcs: Vec<VertexId> = fg_apps::sample_sources(graph_n, count, 71);
            let secs = run(&srcs).max(1e-9);
            throughputs.push(count as f64 / secs);
        }
        let base = throughputs[0].max(1e-9);
        table.push_row(
            std::iter::once(label.to_string()).chain(throughputs.iter().map(|t| fmt_f64(t / base))),
        );
    };

    let ppr = ppr_config();
    run_series("PPR on Lj", &mut |srcs| {
        ForkGraphEngine::new(&pg_social, forkgraph_ppr_config())
            .run_ppr(srcs, &ppr)
            .measurement
            .seconds()
    });
    run_series("DFS on Lj", &mut |srcs| {
        ForkGraphEngine::new(&pg_social, forkgraph_sssp_config())
            .run_dfs(srcs)
            .measurement
            .seconds()
    });
    run_series("RW on Us", &mut |srcs| {
        let config = fg_seq::random_walk::RandomWalkConfig {
            num_walks: 8,
            walk_length: 32,
            restart_prob: 0.0,
            seed: 5,
        };
        ForkGraphEngine::new(&pg_road, forkgraph_sssp_config())
            .run_random_walks(srcs, &config)
            .measurement
            .seconds()
    });
    run_series("SSSP on Us", &mut |srcs| {
        ForkGraphEngine::new(&pg_road, forkgraph_sssp_config()).run_sssp(srcs).measurement.seconds()
    });
    run_series("BFS on Lj", &mut |srcs| {
        ForkGraphEngine::new(&pg_social, forkgraph_sssp_config())
            .run_bfs(srcs)
            .measurement
            .seconds()
    });
    vec![table]
}

// ---------------------------------------------------------------------------
// Figure 16: partition size sweep
// ---------------------------------------------------------------------------

/// Figure 16: execution time of ForkGraph with partition sizes of ¼×, ½×, 1×,
/// 2×, and 4× the simulated LLC, normalised to the 1× setting.
pub fn figure16() -> Vec<Table> {
    let llc_bytes = scaled_llc().capacity_bytes;
    let cases: Vec<(String, CsrGraph, Workload, EngineConfig)> = vec![
        {
            let g = datasets::CA.generate_weighted(ROAD_SCALE);
            let w = Workload::sssp(sources(&g, 8, 81));
            ("LL on Ca".to_string(), g, w, forkgraph_sssp_config())
        },
        {
            let g = datasets::US.generate_weighted(0.03);
            let w = Workload::sssp(sources(&g, 8, 82));
            ("LL on Us".to_string(), g, w, forkgraph_sssp_config())
        },
        {
            let g = datasets::LJ.scaled(0.06);
            let w = Workload::ppr(sources(&g, 8, 83), ppr_config());
            ("NCP on Lj".to_string(), g, w, forkgraph_ppr_config())
        },
        {
            let g = datasets::TW.scaled(0.04);
            let w = Workload::ppr(sources(&g, 8, 84), ppr_config());
            ("NCP on Tw".to_string(), g, w, forkgraph_ppr_config())
        },
    ];
    let mut table = Table::new(
        "Figure 16 — normalised execution time vs partition size (1.0 = LLC-sized)",
        &["workload", "1/4 LLC", "1/2 LLC", "LLC", "2x LLC", "4x LLC"],
    );
    for (label, graph, workload, config) in cases {
        let times: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|factor| {
                let bytes = ((llc_bytes as f64) * factor) as usize;
                run_forkgraph(&graph, &workload, bytes.max(4096), config, None).seconds()
            })
            .collect();
        let base = times[2].max(1e-9);
        table.push_row(std::iter::once(label).chain(times.iter().map(|t| fmt_f64(t / base))));
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// §C.3: partitioning methods, and Appendix E: atomic-free sanity check
// ---------------------------------------------------------------------------

/// Partition-method comparison (§C.3): execution time and edge cut of
/// ForkGraph under different partitioners.
pub fn partition_methods() -> Vec<Table> {
    let graph = datasets::CA.generate_weighted(ROAD_SCALE);
    let shared = Arc::new(graph.clone());
    let workload = Workload::sssp(sources(&graph, 8, 91));
    let llc_bytes = scaled_llc().capacity_bytes;
    let k = PartitionConfig::llc_sized(llc_bytes).resolve_num_partitions(&graph);
    let mut table = Table::new(
        "Partition methods (LL on Ca-scaled)",
        &["method", "edge cut", "cut ratio", "execution time (s)", "edges processed"],
    );
    for method in PartitionMethod::all() {
        let config = PartitionConfig::with_partitions(method, k);
        let plan = PartitionPlan::compute(&graph, &config);
        let cut = plan.edge_cut(&graph);
        let pg = PartitionedGraph::from_plan(Arc::clone(&shared), plan, config);
        let engine = ForkGraphEngine::new(&pg, forkgraph_sssp_config());
        let start = Instant::now();
        let result = engine.run_sssp(&workload.sources);
        let elapsed = start.elapsed().as_secs_f64();
        table.push_row([
            method.name().to_string(),
            cut.to_string(),
            format!("{:.1}%", cut as f64 / graph.num_edges() as f64 * 100.0),
            fmt_f64(elapsed),
            result.work().edges_processed.to_string(),
        ]);
    }
    vec![table]
}

/// Appendix E: atomic-free (topology-driven) SSSP sanity check against the
/// frontier-based Ligra SSSP and the sequential Dijkstra baseline.
pub fn atomic_free() -> Vec<Table> {
    let graph = Arc::new(datasets::WK.scaled(SOCIAL_SCALE).with_random_weights(10, 3));
    let srcs = sources(&graph, 8, 95);
    let mut table = Table::new(
        "Appendix E — atomic-free SSSP sanity check",
        &["implementation", "execution time (s)", "edges processed"],
    );
    // Atomic-based frontier SSSP (Ligra).
    let workload = Workload::sssp(srcs.clone());
    let ligra = run_baseline(System::Ligra, &graph, &workload, ExecutionScheme::InterQuery, None);
    table.push_row([
        "Ligra frontier (atomic, t=1)".to_string(),
        secs(&ligra),
        ligra.work.edges_processed.to_string(),
    ]);
    // Atomic-free topology-driven SSSP.
    let counters = WorkCounters::new();
    let start = Instant::now();
    for &s in &srcs {
        let _ = atomic_free_sssp(&graph, s, true, &counters);
    }
    let elapsed = start.elapsed().as_secs_f64();
    table.push_row([
        "Atomic-free Bellman-Ford (topology-driven)".to_string(),
        fmt_f64(elapsed),
        counters.snapshot().edges_processed.to_string(),
    ]);
    // Sequential Dijkstra.
    let start = Instant::now();
    let seq_edges: u64 =
        srcs.iter().map(|&s| fg_seq::dijkstra::dijkstra(&graph, s).edges_processed).sum();
    table.push_row([
        "Sequential Dijkstra".to_string(),
        fmt_f64(start.elapsed().as_secs_f64()),
        seq_edges.to_string(),
    ]);
    vec![table]
}

/// Table 2 counterpart: the scaled dataset registry actually used by the
/// harness.
pub fn table2() -> Vec<Table> {
    let mut table = Table::new(
        "Table 2 — scaled synthetic stand-ins for the paper's datasets",
        &["graph", "family", "|V|", "|E|", "avg degree", "size (MiB)"],
    );
    for spec in datasets::all() {
        let g = unweighted(&spec);
        table.push_row([
            spec.name.to_string(),
            format!("{:?}", spec.family),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            fmt_f64(g.avg_degree()),
            fmt_f64(g.size_bytes() as f64 / (1024.0 * 1024.0)),
        ]);
    }
    vec![table]
}

/// A named paper-reproduction experiment.
pub type Experiment = (&'static str, fn() -> Vec<Table>);

/// All experiments with their canonical names, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("table1", table1),
        ("figure1", figure1),
        ("table2", table2),
        ("figure8", figure8),
        ("figure9", figure9),
        ("table3", table3),
        ("figure10", figure10),
        ("figure11", figure11),
        ("table4a", table4a),
        ("table4b", table4b),
        ("table4c", table4c),
        ("table5", table5),
        ("figure13", figure13),
        ("figure14", figure14),
        ("figure15", figure15),
        ("figure16", figure16),
        ("partition_methods", partition_methods),
        ("atomic_free", atomic_free),
        ("parallel_scaling", crate::smoke::parallel_scaling),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete_and_named_uniquely() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 19);
        let mut names: Vec<&str> = experiments.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn fast_experiments_produce_tables() {
        // Exercise the cheapest experiments end-to-end; the expensive ones are
        // covered by the repro binary run recorded in EXPERIMENTS.md.
        for (name, f) in
            [("figure8", figure8 as fn() -> Vec<Table>), ("table5", table5), ("table2", table2)]
        {
            let tables = f();
            assert!(!tables.is_empty(), "{name}");
            assert!(tables.iter().all(|t| t.num_rows() > 0), "{name}");
        }
    }
}
