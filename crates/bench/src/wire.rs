//! The `repro --wire-smoke` workload: a multi-connection, closed-loop load
//! generator driving a [`fg_server::ForkGraphServer`] over loopback TCP and
//! measuring **queries per second over the wire** against the in-process
//! service path on the identical workload.
//!
//! Two modes:
//!
//! * **Self-hosted** (default): start a service + server over the standard
//!   smoke workload ([`crate::smoke::workload`]) in this process and hammer
//!   it over `127.0.0.1`.
//! * **External** (`--addr host:port`): drive an already-running server —
//!   e.g. `examples/server.rs --listen` — which must be serving the same
//!   deterministic smoke workload, because the generator verifies every
//!   warm-up response against a locally rebuilt serial oracle.
//!
//! The headline ratio is `wire_vs_inproc`: wire qps over in-process service
//! qps, measured with the result cache **off** on both sides so engine work
//! dominates and the ratio isolates the loopback + framing + thread-handoff
//! overhead. At smoke scale a query costs ~1 ms of engine time while a
//! loopback round trip costs tens of microseconds, so the ratio sits near
//! 1.0 and is stable enough for the CI regression gate; raw `wire_qps` moves
//! with runner hardware like every other absolute metric.

use std::sync::Arc;
use std::time::Duration;

use fg_graph::VertexId;
use fg_metrics::Table;
use fg_server::{ForkGraphServer, Response, ServerConfig, WireClient, WirePayload};
use fg_service::{ForkGraphService, Query, ServiceConfig, Ticket};
use forkgraph_core::{EngineConfig, ForkGraphEngine};

use crate::report::PerfReport;
use crate::smoke::{workload, Scale};

/// Concurrent connections the generator drives (the acceptance floor is 4).
pub const WIRE_CLIENTS: usize = 4;

/// Timed sweeps; like the smoke's best-of-N, throughput can only be
/// under-measured by interference, so best-of wins reject noise.
const REPEATS: usize = 3;

/// Result of one wire-smoke run.
pub struct WireSmokeOutcome {
    /// Metrics for `BENCH_*.json` (`wire_qps`, `inproc_qps`,
    /// `wire_vs_inproc`).
    pub report: PerfReport,
    /// Human-readable rendering of the same numbers.
    pub table: Table,
}

/// The service configuration both sides of the comparison use: caching off
/// (so every query costs real engine work and the ratio is stable) and a
/// short batch window (so closed-loop clients aren't dominated by window
/// latency). Public so `examples/server.rs --listen` serves the exact
/// configuration the generator's in-process denominator measures.
pub fn smoke_service_config() -> ServiceConfig {
    ServiceConfig {
        batch_window: Duration::from_millis(1),
        cache_capacity: 0,
        ..ServiceConfig::default()
    }
}

/// Start a self-hosted (untraced) server over the smoke workload — what the
/// generator hammers in self-hosted mode.
pub fn start_smoke_server(scale: Scale, addr: &str) -> std::io::Result<ForkGraphServer> {
    let (pg, _) = workload(scale);
    let service = ForkGraphService::start(
        Arc::new(pg),
        EngineConfig::default().with_threads(2),
        smoke_service_config(),
    );
    ForkGraphServer::start(
        service,
        ServerConfig { addr: addr.to_string(), ..ServerConfig::default() },
    )
}

/// Start a **traced** server over the same workload and configuration — what
/// `examples/server.rs --listen` serves, so the CI front-door job can pull a
/// real Chrome dump off the live server's `/trace` endpoint and validate it
/// structurally. Sharing this constructor with the generator's own
/// [`smoke_service_config`] keeps the served configuration and the in-process
/// denominator from drifting apart.
pub fn start_traced_smoke_server(scale: Scale, addr: &str) -> std::io::Result<ForkGraphServer> {
    let (pg, _) = workload(scale);
    let service = ForkGraphService::start_traced(
        Arc::new(pg),
        EngineConfig::default().with_threads(2),
        smoke_service_config(),
        fg_trace::TraceSink::new(),
    );
    ForkGraphServer::start(
        service,
        ServerConfig { addr: addr.to_string(), ..ServerConfig::default() },
    )
}

/// The query mix: alternating SSSP/BFS over the smoke sources, split
/// round-robin across clients.
fn client_share(sources: &[VertexId], client: usize) -> Vec<(&'static str, VertexId)> {
    sources
        .iter()
        .enumerate()
        .filter(|(i, _)| i % WIRE_CLIENTS == client)
        .map(|(i, &source)| (if i % 2 == 0 { "sssp" } else { "bfs" }, source))
        .collect()
}

/// One closed-loop sweep on an open connection: pipeline the share, then
/// drain all responses (backing off on retry-after frames). Returns the
/// responses in request order for oracle checking.
fn sweep(client: &mut WireClient, share: &[(&'static str, VertexId)]) -> Vec<Response> {
    let mut pending: Vec<u32> = Vec::with_capacity(share.len());
    for (kernel, source) in share {
        pending.push(client.send(kernel, *source).expect("send over wire"));
    }
    client.flush().expect("flush");
    let mut responses: std::collections::HashMap<u32, Response> =
        std::collections::HashMap::with_capacity(share.len());
    let mut outstanding = pending.clone();
    while !outstanding.is_empty() {
        let response = client.recv().expect("recv over wire");
        match response {
            Response::RetryAfter { correlation, retry_after_ms, .. } => {
                // Closed-loop backoff: resubmit the shed query after the
                // server's hint. The correlation changes; track the swap.
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
                let position = pending
                    .iter()
                    .position(|&c| c == correlation)
                    .expect("retry for a correlation we sent");
                let (kernel, source) = share[position];
                let fresh = client.send(kernel, source).expect("resend");
                client.flush().expect("flush resend");
                for slot in [&mut pending, &mut outstanding] {
                    if let Some(c) = slot.iter_mut().find(|c| **c == correlation) {
                        *c = fresh;
                    }
                }
            }
            other => {
                let correlation = other.correlation();
                outstanding.retain(|&c| c != correlation);
                responses.insert(correlation, other);
            }
        }
    }
    pending
        .iter()
        .map(|correlation| responses.remove(correlation).expect("answered correlation"))
        .collect()
}

/// Run the wire smoke against `addr` (external mode) or a self-hosted
/// server.
pub fn run_wire_smoke(addr: Option<&str>) -> WireSmokeOutcome {
    run_wire_smoke_at(Scale::FULL, addr)
}

/// Run the wire smoke at an explicit scale (tests use [`Scale::TINY`]).
pub fn run_wire_smoke_at(scale: Scale, addr: Option<&str>) -> WireSmokeOutcome {
    let (pg, sources) = workload(scale);
    let pg = Arc::new(pg);

    // Self-host unless pointed at an external server.
    let own_server = match addr {
        Some(_) => None,
        None => Some(start_smoke_server(scale, "127.0.0.1:0").expect("bind loopback")),
    };
    let target = match (addr, &own_server) {
        (Some(addr), _) => addr.to_string(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    // Serial oracle for verification (identical workload on both sides —
    // external servers must serve `smoke::workload` for this to hold).
    let oracle_engine = ForkGraphEngine::new(&pg, EngineConfig::default());

    // --- Wire side: warm-up + verify, then timed closed-loop sweeps. ------
    let total_queries = sources.len();
    let mut clients: Vec<(WireClient, Vec<(&'static str, VertexId)>)> = (0..WIRE_CLIENTS)
        .map(|c| {
            let client = WireClient::connect(target.as_str())
                .unwrap_or_else(|e| panic!("cannot connect to {target}: {e}"));
            (client, client_share(&sources, c))
        })
        .collect();

    // Warm-up sweep, verified against the oracle: a load generator that can
    // silently measure wrong answers is worse than no generator.
    let mut verified = 0usize;
    for (client, share) in &mut clients {
        for ((kernel, source), response) in share.iter().zip(sweep(client, share)) {
            let payload = match response {
                Response::Result { payload, .. } => payload,
                other => panic!("warm-up {kernel}({source}) failed: {other:?}"),
            };
            match *kernel {
                "sssp" => assert_eq!(
                    payload,
                    WirePayload::U64s(oracle_engine.run_sssp(&[*source]).per_query[0].clone()),
                    "wire sssp({source}) diverged from the serial oracle"
                ),
                _ => assert_eq!(
                    payload,
                    WirePayload::U32s(oracle_engine.run_bfs(&[*source]).per_query[0].clone()),
                    "wire bfs({source}) diverged from the serial oracle"
                ),
            }
            verified += 1;
        }
    }
    assert_eq!(verified, total_queries, "every warm-up response verified");

    // Timed sweeps: all clients run concurrently; a sweep ends when every
    // connection has drained its share.
    let mut best_wire_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for (client, share) in &mut clients {
                scope.spawn(move || {
                    sweep(client, share);
                });
            }
        });
        best_wire_secs = best_wire_secs.min(start.elapsed().as_secs_f64());
    }
    let wire_qps = total_queries as f64 / best_wire_secs;
    drop(clients);
    if let Some(server) = own_server {
        server.shutdown();
    }

    // --- In-process side: same workload, same service config, no socket. --
    let inproc = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default().with_threads(2),
        smoke_service_config(),
    );
    let handle = inproc.handle();
    let shares: Vec<Vec<(&'static str, VertexId)>> =
        (0..WIRE_CLIENTS).map(|c| client_share(&sources, c)).collect();
    let mut best_inproc_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for share in &shares {
                let handle = handle.clone();
                scope.spawn(move || {
                    let tickets: Vec<Ticket> = share
                        .iter()
                        .map(|(kernel, source)| {
                            handle
                                .submit_query(Query::kernel(*kernel).source(*source))
                                .expect("in-process submit")
                        })
                        .collect();
                    for ticket in tickets {
                        ticket.wait().expect("in-process result");
                    }
                });
            }
        });
        best_inproc_secs = best_inproc_secs.min(start.elapsed().as_secs_f64());
    }
    let inproc_qps = total_queries as f64 / best_inproc_secs;
    inproc.shutdown();

    let ratio = wire_qps / inproc_qps;
    let mut report = PerfReport::new();
    report.push("wire_qps", wire_qps);
    report.push("inproc_qps", inproc_qps);
    report.push("wire_vs_inproc", ratio);

    let mut table = Table::new(
        format!(
            "Wire smoke: {WIRE_CLIENTS} pipelined loopback connections vs in-process service \
             ({total_queries} mixed SSSP/BFS queries, cache off)"
        )
        .as_str(),
        &["path", "qps", "vs in-process"],
    );
    table.push_row([
        "wire (loopback TCP)".to_string(),
        format!("{wire_qps:.1}"),
        format!("{ratio:.3}"),
    ]);
    table.push_row([
        "in-process service".to_string(),
        format!("{inproc_qps:.1}"),
        "1.000".to_string(),
    ]);
    if ratio < 0.5 {
        eprintln!(
            "[wire-smoke] WARNING: wire throughput {wire_qps:.1} qps is below half the \
             in-process {inproc_qps:.1} qps — loopback + framing overhead should be a few \
             percent at smoke scale, not a 2x tax"
        );
    }

    WireSmokeOutcome { report, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_smoke_produces_all_gated_metrics_and_verifies_the_oracle() {
        let outcome = run_wire_smoke_at(Scale::TINY, None);
        assert!(outcome.report.get("wire_qps").unwrap() > 0.0);
        assert!(outcome.report.get("inproc_qps").unwrap() > 0.0);
        assert!(outcome.report.get("wire_vs_inproc").unwrap() > 0.0);
        let json = outcome.report.to_json();
        assert!(PerfReport::from_json(&json).is_ok());
    }

    #[test]
    fn external_mode_drives_a_separately_started_server() {
        // Simulates the CI server-smoke job: a detached smoke-workload
        // server, then the generator pointed at it by address.
        let server = start_smoke_server(Scale::TINY, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr().to_string();
        let outcome = run_wire_smoke_at(Scale::TINY, Some(&addr));
        assert!(outcome.report.get("wire_vs_inproc").unwrap() > 0.0);
        server.shutdown();
    }
}
