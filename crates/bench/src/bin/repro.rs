//! `repro` — regenerate the paper's tables and figures at laptop scale, and
//! drive the CI perf-regression gate.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fg-bench --bin repro -- list
//! cargo run --release -p fg-bench --bin repro -- table1 figure9
//! cargo run --release -p fg-bench --bin repro -- all
//!
//! # CI perf gate (a directory baseline means "newest BENCH_history entry,
//! # else BENCH_baseline.json"):
//! cargo run --release -p fg-bench --bin repro -- --smoke --json BENCH_pr.json
//! cargo run --release -p fg-bench --bin repro -- --compare BENCH_history BENCH_pr.json
//! ```
//!
//! Each experiment prints its Markdown tables and writes them under
//! `target/repro/<name>.md`. `--smoke` measures serial vs parallel throughput
//! on a fixed workload and (with `--json`) writes the machine-readable
//! report; `--compare` exits non-zero when any baseline metric regressed more
//! than the tolerance (default 20%, override with `--tolerance 0.35`).

use fg_bench::report::{compare, newest_history_entry, PerfReport};
use fg_bench::{emit_report, experiments, smoke};

fn usage(registry: &[experiments::Experiment]) {
    eprintln!("usage: repro [list | all | <experiment>...]");
    eprintln!("       repro --smoke [--json <out.json>]");
    eprintln!(
        "       repro --wire-smoke [--addr <host:port>] [--json <out.json> | --merge-json <in-out.json>]"
    );
    eprintln!(
        "       repro --compare <baseline.json|history-dir> <current.json> [--tolerance <frac>]"
    );
    eprintln!("       repro --validate-trace <trace.json>");
    eprintln!("experiments:");
    for (name, _) in registry {
        eprintln!("  {name}");
    }
}

fn read_report(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    PerfReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

/// Resolve the baseline argument of `--compare`: a file is used as-is; a
/// directory (the tracked `BENCH_history/`) resolves to its newest entry,
/// falling back to the committed `BENCH_baseline.json` while the history is
/// still empty.
fn resolve_baseline(path: &str) -> String {
    let dir = std::path::Path::new(path);
    if !dir.is_dir() {
        return path.to_string();
    }
    match newest_history_entry(dir) {
        Some(entry) => {
            let entry = entry.display().to_string();
            eprintln!("[repro] baseline: newest history entry {entry}");
            entry
        }
        None => {
            // Resolve the fallback next to the history directory, not the
            // CWD, so the gate works from any working directory.
            let fallback = dir
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
                .map(|p| p.join("BENCH_baseline.json"))
                .unwrap_or_else(|| std::path::PathBuf::from("BENCH_baseline.json"));
            let fallback = fallback.display().to_string();
            eprintln!("[repro] history {path} is empty; falling back to {fallback}");
            fallback
        }
    }
}

/// `--smoke [--json PATH]`: measure and optionally write the JSON report.
fn run_smoke(args: &[String]) {
    let outcome = smoke::run_smoke();
    println!("{}", outcome.table.to_markdown());
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--json requires a path");
            std::process::exit(1);
        };
        std::fs::write(path, outcome.report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[repro] wrote {path}");
    }
}

/// `--wire-smoke [--addr HOST:PORT] [--json PATH | --merge-json PATH]`:
/// drive a server (self-hosted unless `--addr` points at one) with the
/// multi-connection closed-loop load generator. `--merge-json` folds the
/// wire metrics into an existing report file — the CI bench job uses it to
/// produce ONE `BENCH_pr.json` carrying both the smoke and the wire
/// families, so a baseline containing wire metrics never trips the
/// missing-metric gate.
fn run_wire_smoke(args: &[String]) {
    let addr = args.iter().position(|a| a == "--addr").map(|pos| {
        args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--addr requires host:port");
            std::process::exit(1);
        })
    });
    let outcome = fg_bench::wire::run_wire_smoke(addr.as_deref());
    println!("{}", outcome.table.to_markdown());
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--json requires a path");
            std::process::exit(1);
        };
        std::fs::write(path, outcome.report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[repro] wrote {path}");
    }
    if let Some(pos) = args.iter().position(|a| a == "--merge-json") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--merge-json requires a path to an existing report");
            std::process::exit(1);
        };
        let mut merged = read_report(path);
        merged.merge(&outcome.report);
        std::fs::write(path, merged.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[repro] merged wire metrics into {path}");
    }
}

/// `--compare BASELINE CURRENT [--tolerance FRAC]`: the CI regression gate.
fn run_compare(args: &[String]) {
    let pos = args.iter().position(|a| a == "--compare").expect("checked by caller");
    let (Some(baseline_path), Some(current_path)) = (args.get(pos + 1), args.get(pos + 2)) else {
        eprintln!("--compare requires <baseline.json> <current.json>");
        std::process::exit(1);
    };
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        Some(tpos) => args
            .get(tpos + 1)
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|t| (0.0..1.0).contains(t))
            .unwrap_or_else(|| {
                eprintln!("--tolerance requires a fraction in [0, 1)");
                std::process::exit(1);
            }),
        None => 0.20,
    };
    let baseline_path = &resolve_baseline(baseline_path);
    let baseline = read_report(baseline_path);
    let current = read_report(current_path);
    let regressions = compare(&baseline, &current, tolerance);
    for (name, value) in &current.metrics {
        let base = baseline.get(name);
        let delta = base
            .map(|b| format!("{:+.1}% vs baseline {b:.1}", (value / b - 1.0) * 100.0))
            .unwrap_or_else(|| "new metric".to_string());
        println!("{name}: {value:.1} ({delta})");
        if base.is_none() {
            // Visible but non-fatal: a metric only the newer entry has is
            // usually a freshly added measurement seeding the next baseline,
            // but it deserves a reviewer's glance — if it was supposed to
            // exist in the baseline, the gate isn't actually covering it.
            eprintln!(
                "WARN {name}: present only in {current_path}, absent from baseline \
                 {baseline_path} — ungated until it lands in BENCH_history"
            );
        }
    }
    if regressions.is_empty() {
        println!(
            "perf gate OK: no metric regressed more than {:.0}% against {baseline_path}",
            tolerance * 100.0
        );
        return;
    }
    for r in &regressions {
        eprintln!(
            "REGRESSION {}: {:.1} -> {:.1} qps ({:.0}% of baseline; floor is {:.0}%)",
            r.metric,
            r.baseline,
            r.current,
            r.ratio() * 100.0,
            (1.0 - tolerance) * 100.0
        );
    }
    std::process::exit(1);
}

/// `--validate-trace PATH`: the CI observability gate. Parses an exported
/// Chrome trace-event JSON file with the same structural parser
/// `fg_trace::chrome` tests against, and fails when the file is unreadable,
/// unparseable, or empty — so the traced example in CI cannot silently start
/// writing garbage that `chrome://tracing` would reject.
fn run_validate_trace(args: &[String]) {
    let pos = args.iter().position(|a| a == "--validate-trace").expect("checked by caller");
    let Some(path) = args.get(pos + 1) else {
        eprintln!("--validate-trace requires a path to an exported trace JSON file");
        std::process::exit(1);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let events = fg_trace::chrome::parse(&text).unwrap_or_else(|e| {
        eprintln!("INVALID Chrome trace {path}: {e}");
        std::process::exit(1);
    });
    if events.is_empty() {
        eprintln!("INVALID Chrome trace {path}: no events");
        std::process::exit(1);
    }
    let spans = events.iter().filter(|e| e.ph == "B").count();
    let flows = events.iter().filter(|e| e.ph == "s").count();
    println!(
        "trace OK: {path} parses as Chrome trace-event JSON ({} events, {spans} spans, \
         {flows} flows)",
        events.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::all_experiments();

    if args.iter().any(|a| a == "--validate-trace") {
        run_validate_trace(&args);
        return;
    }
    if args.iter().any(|a| a == "--compare") {
        run_compare(&args);
        return;
    }
    if args.iter().any(|a| a == "--wire-smoke") {
        run_wire_smoke(&args);
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        run_smoke(&args);
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "help") {
        usage(&registry);
        return;
    }

    if args.iter().any(|a| a == "list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return;
    }

    let selected: Vec<&fg_bench::experiments::Experiment> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut chosen = Vec::new();
        for arg in &args {
            match registry.iter().find(|(name, _)| name == arg) {
                Some(entry) => chosen.push(entry),
                None => {
                    eprintln!("unknown experiment '{arg}' (use `repro list`)");
                    std::process::exit(1);
                }
            }
        }
        chosen
    };

    for (name, run) in selected {
        eprintln!("[repro] running {name} ...");
        let start = std::time::Instant::now();
        let tables = run();
        eprintln!("[repro] {name} finished in {:.1?}", start.elapsed());
        emit_report(name, &tables);
    }
}
