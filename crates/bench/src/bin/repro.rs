//! `repro` — regenerate the paper's tables and figures at laptop scale.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fg-bench --bin repro -- list
//! cargo run --release -p fg-bench --bin repro -- table1 figure9
//! cargo run --release -p fg-bench --bin repro -- all
//! ```
//!
//! Each experiment prints its Markdown tables and writes them under
//! `target/repro/<name>.md`.

use fg_bench::{emit_report, experiments};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::all_experiments();

    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "help") {
        eprintln!("usage: repro [list | all | <experiment>...]");
        eprintln!("experiments:");
        for (name, _) in &registry {
            eprintln!("  {name}");
        }
        return;
    }

    if args.iter().any(|a| a == "list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return;
    }

    let selected: Vec<&fg_bench::experiments::Experiment> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        let mut chosen = Vec::new();
        for arg in &args {
            match registry.iter().find(|(name, _)| name == arg) {
                Some(entry) => chosen.push(entry),
                None => {
                    eprintln!("unknown experiment '{arg}' (use `repro list`)");
                    std::process::exit(1);
                }
            }
        }
        chosen
    };

    for (name, run) in selected {
        eprintln!("[repro] running {name} ...");
        let start = std::time::Instant::now();
        let tables = run();
        eprintln!("[repro] {name} finished in {:.1?}", start.elapsed());
        emit_report(name, &tables);
    }
}
