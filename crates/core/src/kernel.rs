//! The query-kernel interface of ForkGraph.
//!
//! A kernel defines, for one query type (SSSP, BFS, PPR, …):
//!
//! * the per-query dense **state** (e.g. the distance array),
//! * the **value** carried by an operation ⟨query, vertex, value⟩,
//! * the **priority functor** mapping values to scheduling priorities (lower
//!   priority values are processed first — shorter distances, higher
//!   residuals),
//! * the sequential **processing** of one operation against the state, which
//!   may emit new operations to neighbouring vertices.
//!
//! The engine guarantees that a query's state is only ever accessed by one
//! thread at a time (query-centric consolidation, Section 4.2), so kernels are
//! written as plain sequential code with no atomics.
//!
//! This trait is deliberately generic (unboxed `Copy` values in the hot
//! loop); systems that need to handle *arbitrary registered* kernels behind
//! one interface — like `fg-service`'s kernel registry — use the object-safe
//! erasure layer in [`crate::dynkernel`] instead.

use fg_graph::{CsrGraph, VertexId};

use crate::operation::Priority;

/// A fork-processing-pattern query kernel.
pub trait FppKernel: Sync {
    /// Payload carried by this kernel's operations. (`'static` so per-run
    /// executor storage for the value type can be recycled through the
    /// type-erased arena of a persistent [`crate::pool::WorkerPool`].)
    type Value: Copy + Send + Sync + 'static;
    /// Per-query state; the final state is the query's result.
    type State: Send;

    /// Query-type name ("sssp", "ppr", …).
    fn name(&self) -> &'static str;

    /// Allocate the initial per-query state.
    fn init_state(&self, graph: &CsrGraph) -> Self::State;

    /// The operation that seeds a query at its source vertex:
    /// `(value, priority)`.
    fn source_op(&self, source: VertexId) -> (Self::Value, Priority);

    /// Process one operation at `vertex` carrying `value` against `state`.
    ///
    /// New operations are handed to `emit(target_vertex, value, priority)`;
    /// the engine routes them to the right partition buffer. Returns the
    /// number of edges processed (0 when the operation was pruned), which
    /// feeds both the work counters and the yielding heuristics.
    fn process(
        &self,
        graph: &CsrGraph,
        state: &mut Self::State,
        vertex: VertexId,
        value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64;

    /// Relative per-query work weight, used by serving layers to size the
    /// worker crew for a micro-batch of these queries (see
    /// `fg_service::adaptive`). The default `1.0` means "a built-in-style
    /// graph traversal"; kernels whose queries do markedly less
    /// parallelizable work (e.g. tightly radius-bounded probes) can return
    /// less than one to bias their batches toward smaller crews, and heavy
    /// kernels can return more than one. Purely advisory — correctness never
    /// depends on it.
    fn batch_weight(&self) -> f64 {
        1.0
    }
}
