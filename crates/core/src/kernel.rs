//! The query-kernel interface of ForkGraph.
//!
//! A kernel defines, for one query type (SSSP, BFS, PPR, …):
//!
//! * the per-query dense **state** (e.g. the distance array),
//! * the **value** carried by an operation ⟨query, vertex, value⟩,
//! * the **priority functor** mapping values to scheduling priorities (lower
//!   priority values are processed first — shorter distances, higher
//!   residuals),
//! * the sequential **processing** of one operation against the state, which
//!   may emit new operations to neighbouring vertices.
//!
//! The engine guarantees that a query's state is only ever accessed by one
//! thread at a time (query-centric consolidation, Section 4.2), so kernels are
//! written as plain sequential code with no atomics.
//!
//! This trait is deliberately generic (unboxed `Copy` values in the hot
//! loop); systems that need to handle *arbitrary registered* kernels behind
//! one interface — like `fg-service`'s kernel registry — use the object-safe
//! erasure layer in [`crate::dynkernel`] instead.

use fg_graph::{AdjacencyView, CsrGraph, VertexId, Weight};

use crate::operation::Priority;

/// A fork-processing-pattern query kernel.
pub trait FppKernel: Sync {
    /// Payload carried by this kernel's operations. (`'static` so per-run
    /// executor storage for the value type can be recycled through the
    /// type-erased arena of a persistent [`crate::pool::WorkerPool`].)
    type Value: Copy + Send + Sync + 'static;
    /// Per-query state; the final state is the query's result.
    type State: Send;

    /// Query-type name ("sssp", "ppr", …).
    fn name(&self) -> &'static str;

    /// Allocate the initial per-query state.
    fn init_state(&self, graph: &CsrGraph) -> Self::State;

    /// The operation that seeds a query at its source vertex:
    /// `(value, priority)`.
    fn source_op(&self, source: VertexId) -> (Self::Value, Priority);

    /// Process one operation at `vertex` carrying `value` against `state`.
    ///
    /// Adjacency is read through `graph`, an [`AdjacencyView`] over the visit's
    /// partition: raw partitions borrow the monolithic CSR slices, compressed
    /// partitions stream-decode their varint payload — kernels never
    /// materialise a compressed adjacency list.
    ///
    /// New operations are handed to `emit(target_vertex, value, priority)`;
    /// the engine routes them to the right partition buffer. Returns the
    /// number of edges processed (0 when the operation was pruned), which
    /// feeds both the work counters and the yielding heuristics.
    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64;

    /// Relative per-query work weight, used by serving layers to size the
    /// worker crew for a micro-batch of these queries (see
    /// `fg_service::adaptive`). The default `1.0` means "a built-in-style
    /// graph traversal"; kernels whose queries do markedly less
    /// parallelizable work (e.g. tightly radius-bounded probes) can return
    /// less than one to bias their batches toward smaller crews, and heavy
    /// kernels can return more than one. Purely advisory — correctness never
    /// depends on it.
    fn batch_weight(&self) -> f64 {
        1.0
    }
}

/// A kernel whose converged state can be *restarted* from an edge delta
/// instead of recomputed from scratch.
///
/// This is sound exactly for monotone relaxation kernels (SSSP, BFS): if
/// `prev` is the fixpoint on graph `G` and `G'` adds edges or decreases
/// weights, then re-seeding the run with one operation per changed edge —
/// the relaxation that edge would now trigger — converges to the exact
/// fixpoint on `G'`, byte-identical to a from-scratch run, because a
/// monotone min-fixpoint is independent of relaxation order. Deletions and
/// weight *increases* break the precondition (the old fixpoint may be too
/// small); callers detect that case upstream (see
/// `fg_graph::mutation::AppliedDeltas::monotone`) and fall back to a full
/// re-run.
pub trait IncrementalKernel: FppKernel {
    /// The operation a changed edge `u → v` (new weight `w`) seeds at `v`,
    /// given the previous converged state: `Some((value, priority))`, or
    /// `None` when the edge cannot improve anything (e.g. `u` unreached).
    fn delta_seed(
        &self,
        prev: &Self::State,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Option<(Self::Value, Priority)>;
}

/// What one engine run actually executes: the seam between the run pipeline
/// (buffers, scheduling, executors) and the kernel code one partition visit
/// drives.
///
/// The pipeline used to be generic over [`FppKernel`] directly, which welds
/// "one run" to "one kernel". A driver generalises the contract to "one run,
/// one *value type*, per-**query** kernel dispatch", at **visit
/// granularity**: the unit a driver executes is one query's whole
/// consolidated operation group within one partition visit
/// ([`KernelDriver::process_visit`]), not one operation. Visit granularity
/// is what keeps heterogeneous runs fast — the erased payload of a mixed
/// run is converted to the kernel's native operations once per visit, and
/// the hot intra-visit loop (priority heap, yield checks, per-edge
/// relaxation) always runs monomorphized, never behind a per-operation
/// virtual call.
///
/// * [`crate::engine::SingleDriver`] wraps one `&K` and ignores the query
///   index — the monomorphized single-kernel run, compiled to exactly the
///   code the pre-driver pipeline produced (inlined forwards to
///   [`crate::engine::ForkGraphEngine::process_query_visit`]).
/// * [`crate::multi::MultiDriver`] maps each query to its group's
///   type-erased [`crate::dynkernel::DynKernel`] and carries
///   inline erased payloads ([`crate::operation::MultiValue8`] /
///   [`crate::operation::MultiValue16`]) between visits — the
///   heterogeneous multi-kernel run behind
///   [`crate::engine::ForkGraphEngine::run_multi`].
///
/// `pub(crate)`: drivers are an engine-internal seam, not an extension
/// point — external code extends the system through [`FppKernel`] and
/// [`crate::dynkernel::DynKernel`].
pub(crate) trait KernelDriver: Sync {
    /// Payload carried by this run's operations (all groups share it).
    type Value: Copy + Send + Sync + 'static;
    /// Per-query state; `per_query[q]` of the run result.
    type State: Send;

    /// Allocate query `query`'s initial state.
    fn init_state(&self, graph: &CsrGraph, query: u32) -> Self::State;

    /// The operation seeding `query` at its source vertex.
    fn source_op(&self, query: u32, source: VertexId) -> (Self::Value, Priority);

    /// Emit the operations that seed `query`. The default — one
    /// [`source_op`](Self::source_op) at the source vertex — is the
    /// from-scratch run; incremental drivers override this to seed from a
    /// delta frontier instead (possibly many operations, possibly none).
    fn seed_ops(
        &self,
        query: u32,
        source: VertexId,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) {
        let (value, priority) = self.source_op(query, source);
        emit(source, value, priority);
    }

    /// Process query `query`'s consolidated operations within one partition
    /// visit; see
    /// [`crate::engine::ForkGraphEngine::process_query_visit`] for the visit
    /// contract (ordering, yielding, and the returned leftover/remote
    /// routing).
    #[allow(clippy::too_many_arguments)]
    fn process_visit(
        &self,
        engine: &crate::engine::ForkGraphEngine<'_>,
        graph: &CsrGraph,
        partition: fg_graph::partition::PartitionId,
        query: u32,
        ops: Vec<crate::operation::Operation<Self::Value>>,
        state: &mut Self::State,
        partition_edges: u64,
        num_queries: usize,
        tracer: &fg_cachesim::GraphAccessTracer,
        counters: &fg_metrics::WorkCounters,
    ) -> crate::engine::VisitOutcome<Self::Value>;
}
