//! Heterogeneous multi-kernel runs: one partition pass serves several kernel
//! *groups* at once.
//!
//! The paper's economics come from amortising each LLC-resident partition
//! pass across as many concurrent queries as possible. With only
//! [`ForkGraphEngine::run`]/[`run_dyn`](ForkGraphEngine::run_dyn), that
//! amortisation stops at the kernel-type boundary: an SSSP batch and a BFS
//! batch over the same graph each sweep every partition. This module removes
//! the boundary:
//!
//! * Queries are grouped by kernel; group `g`'s queries occupy a contiguous
//!   range of the run's global query ids, so query-centric consolidation,
//!   per-query state locks, and result demultiplexing need no new machinery.
//! * Operations carry inline erased payloads *between* visits — the
//!   group's concrete kernel value erased inline
//!   ([`crate::operation::MultiValue8`] / [`crate::operation::MultiValue16`],
//!   picked per run) (operations stay
//!   `Copy`, so the existing [`crate::buffer::PartitionBuffer`]s, executor
//!   mailboxes, and claim protocol carry mixed-kernel operations verbatim;
//!   an operation's group is derived from its query id, never stored).
//! * `MultiDriver` implements the engine's internal `KernelDriver` seam at
//!   **visit granularity**: each query's
//!   consolidated operation group is handed to its group's sealed
//!   [`MultiKernelHooks`] in one virtual call
//!   ([`MultiKernelHooks::process_visit_multi`]), which de-erases the group
//!   once, runs the identical monomorphized intra-visit loop the
//!   single-kernel path uses (native value types in the priority heap,
//!   devirtualized per-edge processing), and re-erases only the
//!   leftover/remote operations that leave the visit. Erasure cost is two
//!   value conversions per operation *lifetime*, not a virtual call per
//!   operation touch.
//!
//! Scheduling sees the union of all groups. Priorities are kernel-specific
//! (an SSSP distance and a BFS level are not commensurable), but priorities
//! only ever *order* work — they never gate correctness — so mixing them
//! degrades at worst the schedule's work efficiency, never the fixpoint:
//! monotone kernels (SSSP, BFS, random walks, and any min-relaxation custom
//! kernel) produce byte-identical results to their solo runs, and PPR keeps
//! its documented epsilon/mass approximation contract (its lazy push is
//! non-confluent even between two *serial* solo schedules).
//!
//! A persistent [`crate::pool::WorkerPool`] recycles multi-run storage under
//! one arena key per payload width (`TypeId::of::<MultiValue8>()` /
//! `TypeId::of::<MultiValue16>()`): every multi run of a width shares one
//! mailbox set regardless of which kernel groups it mixes, so alternating
//! mixes never rebuild per-run storage.

use std::any::Any;

use fg_cachesim::GraphAccessTracer;
use fg_graph::partition::PartitionId;
use fg_graph::{CsrGraph, VertexId};
use fg_metrics::{Measurement, WorkCounters, WorkSnapshot};
use fg_trace::{EventKind, RunProfile};

use crate::dynkernel::{DynKernel, ErasedState, MultiKernelHooks};
use crate::engine::{ForkGraphEngine, VisitOutcome};
use crate::kernel::{FppKernel, KernelDriver};
use crate::operation::{MultiValue16, MultiValue8, PayloadOps};
use crate::operation::{Operation, Priority};

/// Result of one heterogeneous [`ForkGraphEngine::run_multi`] run.
#[derive(Clone, Debug)]
pub struct MultiRunResult {
    /// Per-group, per-query final states: `per_group[g][i]` is the erased
    /// state of group `g`'s `i`-th source, exactly what
    /// [`ForkGraphEngine::run_dyn`] would have produced for that group.
    pub per_group: Vec<Vec<ErasedState>>,
    /// Timing, work, cache, and memory measurement of the whole shared pass.
    pub measurement: Measurement,
    /// Per-run profile of the shared pass, present iff
    /// [`crate::EngineConfig::profile`] was set.
    pub profile: Option<RunProfile>,
}

impl MultiRunResult {
    /// Number of kernel groups the run carried.
    pub fn num_groups(&self) -> usize {
        self.per_group.len()
    }

    /// Work counters of the shared pass.
    pub fn work(&self) -> &WorkSnapshot {
        &self.measurement.work
    }

    /// Pair group `group`'s states with the sources they were launched from
    /// (the demultiplexing primitive serving layers use per cohort).
    ///
    /// # Panics
    /// Panics if `group` is out of range or `sources` is not the slice the
    /// group was launched with (length mismatch).
    pub fn group_per_source<'a>(
        &'a self,
        group: usize,
        sources: &'a [VertexId],
    ) -> impl ExactSizeIterator<Item = (VertexId, &'a ErasedState)> + 'a {
        let states = &self.per_group[group];
        assert_eq!(
            sources.len(),
            states.len(),
            "group_per_source: {} sources for {} states in group {group}",
            sources.len(),
            states.len()
        );
        sources.iter().copied().zip(states.iter())
    }
}

/// One partition visit of a heterogeneous run, as seen by a group's erased
/// kernel ([`MultiKernelHooks::process_visit_multi`]): an opaque handle bundling
/// the engine and the visit's bookkeeping (partition, yield inputs, tracer,
/// counters). Erased kernels de-erase their operations and hand them to
/// [`Self::process_native`] — the same monomorphized visit loop the
/// single-kernel path runs.
pub struct MultiVisit<'a, 'g> {
    pub(crate) engine: &'a ForkGraphEngine<'g>,
    pub(crate) graph: &'a CsrGraph,
    pub(crate) partition: PartitionId,
    pub(crate) partition_edges: u64,
    pub(crate) num_queries: usize,
    pub(crate) tracer: &'a GraphAccessTracer,
    pub(crate) counters: &'a WorkCounters,
}

impl MultiVisit<'_, '_> {
    /// Run the engine's monomorphized intra-visit loop (the same
    /// `process_query_visit` the single-kernel path uses) over de-erased
    /// operations:
    /// identical ordering, yielding, tracing, and counter semantics as a
    /// single-kernel run's visit.
    pub fn process_native<K: FppKernel>(
        &self,
        kernel: &K,
        query: u32,
        ops: impl IntoIterator<Item = Operation<K::Value>>,
        state: &mut K::State,
    ) -> VisitOutcome<K::Value> {
        self.engine.process_query_visit(
            kernel,
            self.graph,
            self.partition,
            query,
            ops,
            state,
            self.partition_edges,
            self.num_queries,
            self.tracer,
            self.counters,
        )
    }
}

/// The heterogeneous [`KernelDriver`] on payload width `P`: maps each
/// global query id to its group's sealed [`MultiKernelHooks`] and shuttles
/// erased payloads across the per-visit kernel boundary. See the
/// [module docs](self).
pub(crate) struct MultiDriver<'k, P: PayloadOps> {
    kernels: Vec<&'k dyn MultiKernelHooks<P>>,
    /// Global query id → group index (queries are grouped contiguously, but
    /// the flat table keeps the lookup branch-free).
    query_group: Vec<u16>,
    /// Per-group query counts: the `|Q|` each group's yield budget sees.
    group_sizes: Vec<u32>,
}

impl<P: PayloadOps> KernelDriver for MultiDriver<'_, P> {
    type Value = P;
    type State = Box<dyn Any + Send + Sync>;

    fn init_state(&self, graph: &CsrGraph, query: u32) -> Self::State {
        self.kernels[self.query_group[query as usize] as usize].init_state_any(graph)
    }

    fn source_op(&self, query: u32, source: VertexId) -> (P, Priority) {
        let group = self.query_group[query as usize];
        self.kernels[group as usize].source_op_multi(source)
    }

    fn process_visit(
        &self,
        engine: &ForkGraphEngine<'_>,
        graph: &CsrGraph,
        partition: PartitionId,
        query: u32,
        ops: Vec<Operation<P>>,
        state: &mut Self::State,
        partition_edges: u64,
        num_queries: usize,
        tracer: &GraphAccessTracer,
        counters: &WorkCounters,
    ) -> VisitOutcome<P> {
        let group = self.query_group[query as usize];
        engine.emit_trace(EventKind::QueryGroupVisit, query, group as u32, partition);
        // Yield budgets scale with `|Q|` (`EdgeBudgetAuto` is
        // `factor · |E_P| / |Q|`): give each group the budget of *its own*
        // cohort size, not the union's, so a query makes exactly the
        // per-visit progress it would make in a solo run of its cohort.
        // Budgeting on the union was measured to double yield counts on the
        // smoke workload — every yield recycles the query's remaining
        // operations through another buffer/consolidation round, which is
        // precisely the churn the shared pass exists to avoid. (For a
        // single-group run this is the run's query count, keeping the
        // single-group path byte-identical to `run_dyn`.)
        let _ = num_queries;
        let visit = MultiVisit {
            engine,
            graph,
            partition,
            partition_edges,
            num_queries: self.group_sizes[group as usize] as usize,
            tracer,
            counters,
        };
        self.kernels[group as usize].process_visit_multi(&visit, query, ops, &mut **state)
    }
}

/// Execute `groups` as one shared partition pass; the implementation behind
/// [`ForkGraphEngine::run_multi`] (see there for the contract).
///
/// The run is driven on the narrowest payload width every group supports:
/// [`MultiValue8`] when all kernels have word-sized values (operations then
/// match native `u64`-valued operations byte-for-byte in size — the common
/// SSSP/BFS/PPR service mixes pay no per-operation size tax), otherwise
/// [`MultiValue16`].
pub(crate) fn run_multi(
    engine: &ForkGraphEngine<'_>,
    groups: &[(&dyn DynKernel, &[VertexId])],
) -> MultiRunResult {
    assert!(
        groups.len() <= u16::MAX as usize + 1,
        "run_multi supports at most {} kernel groups, got {}",
        u16::MAX as usize + 1,
        groups.len()
    );
    let hooks: Vec<crate::dynkernel::MultiHooks<'_>> = groups
        .iter()
        .map(|(kernel, _)| {
            kernel.multi().unwrap_or_else(|| {
                panic!(
                    "kernel {:?} cannot join a multi-kernel run (hand-written DynKernel \
                     without multi hooks, or an operation value exceeding the inline payload) \
                     — run it through run_dyn instead",
                    kernel.name()
                )
            })
        })
        .collect();
    if hooks.iter().all(|h| h.narrow.is_some()) {
        let kernels = hooks.iter().map(|h| h.narrow.expect("checked above")).collect();
        run_width::<MultiValue8>(engine, kernels, groups)
    } else {
        let kernels = hooks.iter().map(|h| h.wide).collect();
        run_width::<MultiValue16>(engine, kernels, groups)
    }
}

/// Drive one heterogeneous run on a fixed payload width.
fn run_width<P: PayloadOps>(
    engine: &ForkGraphEngine<'_>,
    kernels: Vec<&dyn MultiKernelHooks<P>>,
    groups: &[(&dyn DynKernel, &[VertexId])],
) -> MultiRunResult {
    let total: usize = groups.iter().map(|(_, sources)| sources.len()).sum();
    let mut query_group: Vec<u16> = Vec::with_capacity(total);
    let mut group_sizes: Vec<u32> = Vec::with_capacity(groups.len());
    let mut sources: Vec<VertexId> = Vec::with_capacity(total);
    for (g, (_, group_sources)) in groups.iter().enumerate() {
        query_group.extend(std::iter::repeat_n(g as u16, group_sources.len()));
        group_sizes.push(group_sources.len() as u32);
        sources.extend_from_slice(group_sources);
    }

    let driver = MultiDriver { kernels, query_group, group_sizes };
    let result = engine.run_driver(&driver, &sources);

    // Split the flat per-query states back into per-group vectors (queries
    // were laid out contiguously per group above).
    let mut states = result.per_query.into_iter();
    let per_group: Vec<Vec<ErasedState>> = groups
        .iter()
        .map(|(_, group_sources)| {
            states.by_ref().take(group_sources.len()).map(ErasedState::from).collect()
        })
        .collect();
    debug_assert!(states.next().is_none(), "every query state is handed to exactly one group");
    MultiRunResult { per_group, measurement: result.measurement, profile: result.profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::partitioned::PartitionedGraph;
    use fg_graph::{gen, Dist};

    use crate::dynkernel::erase;
    use crate::engine::{EngineConfig, ExecutorMode};
    use crate::kernels::{BfsKernel, SsspKernel};

    fn partitioned(parts: usize) -> PartitionedGraph {
        let g = gen::rmat(8, 6, 91).with_random_weights(8, 91);
        PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
        )
    }

    #[test]
    fn two_group_run_matches_solo_runs() {
        let pg = partitioned(5);
        let engine =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_executor(ExecutorMode::Serial));
        let sssp = erase(SsspKernel);
        let bfs = erase(BfsKernel);
        let sssp_sources = [0u32, 17, 140];
        let bfs_sources = [3u32, 99];

        let mixed = engine.run_multi(&[(&*sssp, &sssp_sources[..]), (&*bfs, &bfs_sources[..])]);
        assert_eq!(mixed.num_groups(), 2);
        assert_eq!(mixed.per_group[0].len(), 3);
        assert_eq!(mixed.per_group[1].len(), 2);

        let solo_sssp = engine.run_dyn(&*sssp, &sssp_sources);
        let solo_bfs = engine.run_dyn(&*bfs, &bfs_sources);
        for (mixed_state, solo_state) in mixed.per_group[0].iter().zip(&solo_sssp.per_query) {
            assert_eq!(
                mixed_state.downcast_ref::<Vec<Dist>>().unwrap(),
                solo_state.downcast_ref::<Vec<Dist>>().unwrap()
            );
        }
        for (mixed_state, solo_state) in mixed.per_group[1].iter().zip(&solo_bfs.per_query) {
            assert_eq!(
                mixed_state.downcast_ref::<Vec<u32>>().unwrap(),
                solo_state.downcast_ref::<Vec<u32>>().unwrap()
            );
        }

        // One shared pass does the union of the work in fewer partition
        // visits than the two solo sweeps combined.
        assert!(mixed.work().operations_processed >= 1);
        assert!(
            mixed.work().partition_visits
                < solo_sssp.work().partition_visits + solo_bfs.work().partition_visits,
            "shared pass should visit partitions fewer times than two solo sweeps ({} vs {} + {})",
            mixed.work().partition_visits,
            solo_sssp.work().partition_visits,
            solo_bfs.work().partition_visits
        );

        let paired: Vec<_> = mixed.group_per_source(1, &bfs_sources).collect();
        assert_eq!(paired.len(), 2);
        assert_eq!(paired[0].0, 3);
    }

    #[test]
    fn empty_and_single_group_edge_cases() {
        let pg = partitioned(3);
        let engine =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_executor(ExecutorMode::Serial));
        let empty = engine.run_multi(&[]);
        assert_eq!(empty.num_groups(), 0);

        let sssp = erase(SsspKernel);
        let none: [u32; 0] = [];
        let with_empty_group = engine.run_multi(&[(&*sssp, &none[..]), (&*sssp, &[5u32][..])]);
        assert_eq!(with_empty_group.per_group[0].len(), 0);
        assert_eq!(with_empty_group.per_group[1].len(), 1);
        let solo = engine.run_dyn(&*sssp, &[5]);
        assert_eq!(
            with_empty_group.per_group[1][0].downcast_ref::<Vec<Dist>>().unwrap(),
            solo.per_query[0].downcast_ref::<Vec<Dist>>().unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "cannot join a multi-kernel run")]
    fn oversized_value_kernels_are_rejected_up_front() {
        use crate::kernel::FppKernel;
        use crate::operation::Priority;

        struct FatValueKernel;
        impl FppKernel for FatValueKernel {
            type Value = [u64; 5];
            type State = Vec<u64>;
            fn name(&self) -> &'static str {
                "fat"
            }
            fn init_state(&self, graph: &CsrGraph) -> Self::State {
                vec![0; graph.num_vertices()]
            }
            fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
                ([0; 5], 0)
            }
            fn process(
                &self,
                _graph: &fg_graph::AdjacencyView<'_>,
                _state: &mut Self::State,
                _vertex: VertexId,
                _value: Self::Value,
                _emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
            ) -> u64 {
                0
            }
        }

        let pg = partitioned(2);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let fat = erase(FatValueKernel);
        engine.run_multi(&[(&*fat, &[0u32][..])]);
    }
}
