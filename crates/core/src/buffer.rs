//! Per-partition operation buffers with multi-bucket consolidation
//! (Section 6.1 "buffer management" and Appendix B.1 of the paper).
//!
//! Each partition owns a [`PartitionBuffer`]: `K` independent buckets, with
//! query `q` always stored in bucket `q % K`. Bucketing makes query-centric
//! consolidation cheap: each bucket only has to be grouped over `|Q| / K`
//! queries (Table 5 of the paper compares the complexities).

use crate::operation::{Operation, Priority};

/// How operations are grouped by query during consolidation; the two methods
/// of Appendix B.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsolidationMethod {
    /// Sort the bucket by query id (`O(R log R)` per bucket).
    Sort,
    /// Scan the bucket once per distinct query it contains (`O(|Q| R / K²)`).
    Scan,
}

/// A multi-bucket operation buffer attached to one graph partition.
#[derive(Clone, Debug)]
pub struct PartitionBuffer<V> {
    buckets: Vec<Vec<Operation<V>>>,
    len: usize,
    min_priority: Priority,
    /// First-in order stamp used by the FIFO scheduler: the engine tick at
    /// which this buffer last became non-empty.
    pub fifo_stamp: u64,
}

impl<V: Copy> PartitionBuffer<V> {
    /// Create a buffer with `num_buckets` buckets (clamped to at least 1).
    pub fn new(num_buckets: usize) -> Self {
        PartitionBuffer {
            buckets: vec![Vec::new(); num_buckets.max(1)],
            len: 0,
            min_priority: Priority::MAX,
            fifo_stamp: 0,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no operation is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Best (lowest) priority among the buffered operations, or
    /// `Priority::MAX` when empty — the partition priority used by the
    /// priority-based scheduler.
    pub fn min_priority(&self) -> Priority {
        self.min_priority
    }

    /// Append one operation.
    pub fn push(&mut self, op: Operation<V>) {
        let bucket = (op.query as usize) % self.buckets.len();
        self.min_priority = self.min_priority.min(op.priority);
        self.buckets[bucket].push(op);
        self.len += 1;
    }

    /// Append a batch of operations.
    pub fn push_batch(&mut self, ops: impl IntoIterator<Item = Operation<V>>) {
        for op in ops {
            self.push(op);
        }
    }

    /// Remove and return all buffered operations grouped by query
    /// (query-centric consolidation). The groups are sorted by query id;
    /// operations within a group keep their buffer order (the kernel applies
    /// its own priority ordering).
    pub fn drain_consolidated(
        &mut self,
        method: ConsolidationMethod,
    ) -> Vec<(u32, Vec<Operation<V>>)> {
        let mut groups: Vec<(u32, Vec<Operation<V>>)> = Vec::new();
        for bucket in &mut self.buckets {
            if bucket.is_empty() {
                continue;
            }
            match method {
                ConsolidationMethod::Sort => {
                    bucket.sort_by_key(|op| op.query);
                    let mut current: Option<(u32, Vec<Operation<V>>)> = None;
                    for op in bucket.drain(..) {
                        match &mut current {
                            Some((q, ops)) if *q == op.query => ops.push(op),
                            _ => {
                                if let Some(done) = current.take() {
                                    groups.push(done);
                                }
                                current = Some((op.query, vec![op]));
                            }
                        }
                    }
                    if let Some(done) = current.take() {
                        groups.push(done);
                    }
                }
                ConsolidationMethod::Scan => {
                    let mut queries: Vec<u32> = bucket.iter().map(|op| op.query).collect();
                    queries.sort_unstable();
                    queries.dedup();
                    for q in queries {
                        let ops: Vec<Operation<V>> =
                            bucket.iter().filter(|op| op.query == q).copied().collect();
                        groups.push((q, ops));
                    }
                    bucket.clear();
                }
            }
        }
        groups.sort_by_key(|(q, _)| *q);
        self.len = 0;
        self.min_priority = Priority::MAX;
        groups
    }

    /// Remove and return all buffered operations in arrival (FIFO) order,
    /// *without* query-centric grouping — the "+buffer only" ablation mode.
    pub fn drain_unconsolidated(&mut self) -> Vec<Operation<V>> {
        let mut ops = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            ops.append(bucket);
        }
        self.len = 0;
        self.min_priority = Priority::MAX;
        ops
    }
}

/// Group a flat operation list by query using the given method; exposed for
/// the consolidation micro-benchmark (Table 5).
pub fn consolidate<V: Copy>(
    ops: &[Operation<V>],
    num_queries: usize,
    method: ConsolidationMethod,
) -> Vec<(u32, Vec<Operation<V>>)> {
    match method {
        ConsolidationMethod::Sort => {
            let mut sorted: Vec<Operation<V>> = ops.to_vec();
            sorted.sort_by_key(|op| op.query);
            let mut groups: Vec<(u32, Vec<Operation<V>>)> = Vec::new();
            for op in sorted {
                match groups.last_mut() {
                    Some((q, list)) if *q == op.query => list.push(op),
                    _ => groups.push((op.query, vec![op])),
                }
            }
            groups
        }
        ConsolidationMethod::Scan => {
            let mut groups = Vec::new();
            for q in 0..num_queries as u32 {
                let list: Vec<Operation<V>> =
                    ops.iter().filter(|op| op.query == q).copied().collect();
                if !list.is_empty() {
                    groups.push((q, list));
                }
            }
            groups
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(query: u32, vertex: u32, priority: u64) -> Operation<u64> {
        Operation::new(query, vertex, priority, priority)
    }

    #[test]
    fn push_and_len_and_min_priority() {
        let mut b = PartitionBuffer::new(4);
        assert!(b.is_empty());
        assert_eq!(b.min_priority(), u64::MAX);
        b.push(op(0, 1, 30));
        b.push(op(5, 2, 10));
        b.push(op(2, 3, 20));
        assert_eq!(b.len(), 3);
        assert_eq!(b.min_priority(), 10);
        assert_eq!(b.num_buckets(), 4);
    }

    #[test]
    fn drain_consolidated_groups_by_query() {
        for method in [ConsolidationMethod::Sort, ConsolidationMethod::Scan] {
            let mut b = PartitionBuffer::new(3);
            b.push_batch([op(1, 10, 5), op(0, 11, 2), op(1, 12, 7), op(7, 13, 1), op(0, 14, 9)]);
            let groups = b.drain_consolidated(method);
            assert!(b.is_empty());
            assert_eq!(b.min_priority(), u64::MAX);
            let queries: Vec<u32> = groups.iter().map(|(q, _)| *q).collect();
            assert_eq!(queries, vec![0, 1, 7], "{method:?}");
            let q0 = &groups[0].1;
            assert_eq!(q0.len(), 2);
            assert!(q0.iter().all(|o| o.query == 0));
            let total: usize = groups.iter().map(|(_, ops)| ops.len()).sum();
            assert_eq!(total, 5);
        }
    }

    #[test]
    fn sort_and_scan_produce_the_same_grouping() {
        let ops: Vec<Operation<u64>> =
            (0..200).map(|i| op(i % 7, i, (i as u64 * 37) % 100)).collect();
        let mut by_sort = consolidate(&ops, 7, ConsolidationMethod::Sort);
        let mut by_scan = consolidate(&ops, 7, ConsolidationMethod::Scan);
        let normalize = |groups: &mut Vec<(u32, Vec<Operation<u64>>)>| {
            for (_, list) in groups.iter_mut() {
                list.sort_by_key(|o| (o.vertex, o.priority));
            }
        };
        normalize(&mut by_sort);
        normalize(&mut by_scan);
        assert_eq!(by_sort, by_scan);
    }

    #[test]
    fn single_bucket_still_works() {
        let mut b = PartitionBuffer::new(1);
        b.push_batch([op(3, 1, 4), op(1, 2, 6)]);
        let groups = b.drain_consolidated(ConsolidationMethod::Sort);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 1);
    }

    #[test]
    fn unconsolidated_drain_preserves_multiset() {
        let mut b = PartitionBuffer::new(4);
        let input = [op(2, 1, 9), op(0, 2, 3), op(2, 3, 1)];
        b.push_batch(input);
        let mut drained = b.drain_unconsolidated();
        assert_eq!(drained.len(), 3);
        drained.sort_by_key(|o| o.vertex);
        assert_eq!(drained[0].vertex, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn queries_map_to_stable_buckets() {
        let mut b = PartitionBuffer::new(4);
        for i in 0..32u32 {
            b.push(op(i, i, 1));
        }
        // Bucket k must only contain queries ≡ k (mod 4); verify through
        // consolidation groups all being intact.
        let groups = b.drain_consolidated(ConsolidationMethod::Scan);
        assert_eq!(groups.len(), 32);
        for (q, ops) in groups {
            assert_eq!(ops.len(), 1);
            assert_eq!(ops[0].query, q);
        }
    }

    #[test]
    fn reused_buffer_consolidates_like_a_fresh_one() {
        // The parallel executor reuses one scratch buffer across visits;
        // push_batch + drain must behave identically on a drained buffer.
        let input = [op(1, 10, 5), op(0, 11, 2), op(1, 12, 7)];
        let mut fresh = PartitionBuffer::new(4);
        fresh.push_batch(input);
        let expected = fresh.drain_consolidated(ConsolidationMethod::Sort);

        let mut reused = PartitionBuffer::new(4);
        reused.push_batch([op(9, 1, 1), op(3, 2, 2)]);
        let _ = reused.drain_consolidated(ConsolidationMethod::Sort);
        reused.push_batch(input);
        assert_eq!(reused.drain_consolidated(ConsolidationMethod::Sort), expected);
        assert_eq!(reused.min_priority(), u64::MAX);
    }

    #[test]
    fn drain_on_empty_buffer_is_empty() {
        let mut b: PartitionBuffer<u64> = PartitionBuffer::new(8);
        assert!(b.drain_consolidated(ConsolidationMethod::Sort).is_empty());
        assert!(b.drain_unconsolidated().is_empty());
    }
}
