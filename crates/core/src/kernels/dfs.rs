//! DFS kernel: depth-first exploration expressed as buffered operations.
//!
//! Buffered, partition-at-a-time execution cannot reproduce the exact global
//! DFS discovery order of a recursive traversal (operations from different
//! partitions interleave), so this kernel — like the DFS queries evaluated in
//! Figure 15 of the paper — provides a *depth-first flavoured reachability*
//! query: within a partition the most recently discovered vertices are
//! expanded first (LIFO priorities), and the result records the set of reached
//! vertices together with a discovery index.

use fg_graph::{AdjacencyView, CsrGraph, VertexId};

use crate::kernel::FppKernel;
use crate::operation::Priority;

/// Per-query DFS state: discovery order per vertex (`u32::MAX` = unreached).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DfsState {
    /// Discovery index per vertex.
    pub order: Vec<u32>,
    /// Number of vertices discovered so far.
    pub discovered: u32,
}

/// Depth-first-search kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfsKernel;

impl FppKernel for DfsKernel {
    type Value = ();
    type State = DfsState;

    fn name(&self) -> &'static str {
        "dfs"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        DfsState { order: vec![u32::MAX; graph.num_vertices()], discovered: 0 }
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        ((), Priority::MAX)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        _value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        if state.order[vertex as usize] != u32::MAX {
            return 0; // already discovered
        }
        state.order[vertex as usize] = state.discovered;
        state.discovered += 1;
        // LIFO priorities: operations emitted later get *smaller* priorities so
        // the per-query priority queue behaves like a stack.
        let priority = Priority::MAX - state.discovered as Priority;
        let mut edges = 0u64;
        for t in graph.out_neighbors(vertex) {
            edges += 1;
            if state.order[t as usize] == u32::MAX {
                emit(t, (), priority);
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    fn run_unpartitioned(graph: &CsrGraph, source: VertexId) -> DfsState {
        use std::collections::BinaryHeap;

        use crate::operation::{HeapEntry, Operation};
        let kernel = DfsKernel;
        let mut state = kernel.init_state(graph);
        let view = AdjacencyView::from_csr(graph);
        let mut heap = BinaryHeap::new();
        let (v0, p0) = kernel.source_op(source);
        heap.push(HeapEntry { op: Operation::new(0, source, v0, p0) });
        while let Some(entry) = heap.pop() {
            let _: () = entry.op.value;
            kernel.process(&view, &mut state, entry.op.vertex, (), &mut |t, val, pri| {
                heap.push(HeapEntry { op: Operation::new(0, t, val, pri) });
            });
        }
        state
    }

    #[test]
    fn reaches_the_same_set_as_sequential_dfs() {
        let g = gen::rmat(8, 4, 6);
        let ours = run_unpartitioned(&g, 0);
        let reference = fg_seq::dfs::dfs(&g, 0);
        for v in 0..g.num_vertices() {
            assert_eq!(
                ours.order[v] != u32::MAX,
                reference.order[v] != u32::MAX,
                "reachability mismatch at {v}"
            );
        }
        assert_eq!(ours.discovered as usize, reference.num_reached());
    }

    #[test]
    fn discovery_indices_are_unique_and_contiguous() {
        let g = gen::grid2d(8, 8, 0.1, 1);
        let state = run_unpartitioned(&g, 0);
        let mut seen: Vec<u32> = state.order.iter().copied().filter(|&o| o != u32::MAX).collect();
        seen.sort_unstable();
        for (i, o) in seen.iter().enumerate() {
            assert_eq!(*o, i as u32);
        }
    }

    #[test]
    fn goes_deep_before_wide_on_a_tree() {
        // 0 -> 1 -> 3, 0 -> 2: with LIFO priorities, 3 is discovered before 2.
        let mut b = fg_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 3, 1);
        let g = b.build();
        let state = run_unpartitioned(&g, 0);
        assert!(state.order[3] < state.order[2]);
    }
}
