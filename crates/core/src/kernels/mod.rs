//! Built-in query kernels: the query types ForkGraph supports out of the box
//! (Section 3 of the paper lists BFS, DFS, SSSP, PPR, and random walks).

pub mod bfs;
pub mod dfs;
pub mod ppr;
pub mod rw;
pub mod sssp;

pub use bfs::BfsKernel;
pub use dfs::DfsKernel;
pub use ppr::{PprKernel, PprState};
pub use rw::{RandomWalkKernel, RwState, WalkerBatch};
pub use sssp::SsspKernel;
