//! BFS kernel: level-ordered traversal. The priority functor is the level
//! (lowest level from the source first), as described in Section 4.2.

use fg_graph::{AdjacencyView, CsrGraph, VertexId, Weight};

use crate::kernel::{FppKernel, IncrementalKernel};
use crate::operation::Priority;

/// Breadth-first-search kernel producing hop levels.
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsKernel;

impl FppKernel for BfsKernel {
    type Value = u32;
    type State = Vec<u32>;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![u32::MAX; graph.num_vertices()]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        (0, 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        if value >= state[vertex as usize] {
            return 0;
        }
        state[vertex as usize] = value;
        let mut edges = 0u64;
        for t in graph.out_neighbors(vertex) {
            edges += 1;
            let level = value + 1;
            if level < state[t as usize] {
                emit(t, level, level as Priority);
            }
        }
        edges
    }
}

impl IncrementalKernel for BfsKernel {
    fn delta_seed(
        &self,
        prev: &Self::State,
        u: VertexId,
        _v: VertexId,
        _w: Weight,
    ) -> Option<(Self::Value, Priority)> {
        // BFS ignores weights: a new edge u → v can only put v at
        // level(u) + 1. Weight-only decreases seed dominated operations
        // that the prune in `process` discards, keeping this exact.
        (prev[u as usize] != u32::MAX).then(|| {
            let level = prev[u as usize] + 1;
            (level, level as Priority)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    #[test]
    fn queue_driven_kernel_matches_sequential_bfs() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let g = gen::rmat(8, 5, 2);
        let kernel = BfsKernel;
        let mut state = kernel.init_state(&g);
        let view = AdjacencyView::from_csr(&g);
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, 4u32, 0u32)));
        while let Some(Reverse((_, vertex, value))) = heap.pop() {
            kernel.process(&view, &mut state, vertex, value, &mut |t, val, pri| {
                heap.push(Reverse((pri, t, val)));
            });
        }
        assert_eq!(state, fg_seq::bfs::bfs(&g, 4).level);
    }

    #[test]
    fn revisits_with_equal_or_worse_levels_are_pruned() {
        let g = gen::path(4);
        let kernel = BfsKernel;
        let mut state = kernel.init_state(&g);
        let view = AdjacencyView::from_csr(&g);
        let mut sink = |_: VertexId, _: u32, _: Priority| {};
        assert!(kernel.process(&view, &mut state, 1, 1, &mut sink) > 0);
        assert_eq!(kernel.process(&view, &mut state, 1, 1, &mut sink), 0);
        assert_eq!(kernel.process(&view, &mut state, 1, 3, &mut sink), 0);
        assert_eq!(state[1], 1);
    }
}
