//! Random-walk kernel: batches of walkers hop through the graph; an operation
//! carries a batch of walkers located at a vertex with a number of remaining
//! steps. Walkers that stay inside the current partition are processed locally
//! (good temporal locality, as the paper notes for RW queries in Figure 15);
//! walkers that cross a partition boundary are forwarded as buffered
//! operations.

use fg_graph::{AdjacencyView, CsrGraph, VertexId};
use fg_seq::random_walk::RandomWalkConfig;

use crate::kernel::FppKernel;
use crate::operation::Priority;

/// A batch of walkers sitting at the same vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkerBatch {
    /// Number of walkers in the batch.
    pub walkers: u32,
    /// Steps each walker still has to take.
    pub steps_remaining: u32,
    /// Deterministic RNG state for this batch.
    pub seed: u64,
}

/// Per-query random-walk state: visit counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RwState {
    /// Number of walker visits per vertex.
    pub visits: Vec<u64>,
}

impl RwState {
    /// Total recorded visits.
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().sum()
    }
}

/// Random-walk kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomWalkKernel {
    /// Walk length, walker count, and restart probability.
    pub config: RandomWalkConfig,
}

impl RandomWalkKernel {
    /// Create a kernel with the given walk parameters.
    pub fn new(config: RandomWalkConfig) -> Self {
        RandomWalkKernel { config }
    }

    fn next_seed(seed: u64, salt: u64) -> u64 {
        let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x
    }
}

impl FppKernel for RandomWalkKernel {
    type Value = WalkerBatch;
    type State = RwState;

    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        RwState { visits: vec![0; graph.num_vertices()] }
    }

    fn source_op(&self, source: VertexId) -> (Self::Value, Priority) {
        let batch = WalkerBatch {
            walkers: self.config.num_walks as u32,
            steps_remaining: self.config.walk_length as u32,
            seed: Self::next_seed(self.config.seed, source as u64),
        };
        // Walkers with more remaining steps are processed first so batches
        // finish together.
        (batch, batch_priority(&batch))
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        state.visits[vertex as usize] += value.walkers as u64;
        if value.steps_remaining == 0 || value.walkers == 0 {
            return 0;
        }
        let degree = graph.out_degree(vertex);
        if degree == 0 {
            // Dangling vertex: walkers stay put for their remaining steps.
            state.visits[vertex as usize] += value.walkers as u64 * value.steps_remaining as u64;
            return 0;
        }
        // Distribute the batch over the neighbours with a deterministic split
        // derived from the batch seed.
        let mut remaining = value.walkers;
        let mut edges = 0u64;
        let mut seed = value.seed;
        let share = (value.walkers as usize / degree).max(1) as u32;
        let mut idx = 0usize;
        while remaining > 0 {
            seed = Self::next_seed(seed, vertex as u64 + idx as u64);
            let target = graph.neighbor_at(vertex, (seed % degree as u64) as usize);
            let walkers = share.min(remaining);
            remaining -= walkers;
            edges += walkers as u64;
            let batch = WalkerBatch {
                walkers,
                steps_remaining: value.steps_remaining - 1,
                seed: Self::next_seed(seed, target as u64),
            };
            emit(target, batch, batch_priority(&batch));
            idx += 1;
        }
        edges
    }
}

fn batch_priority(batch: &WalkerBatch) -> Priority {
    // Fewer remaining steps = closer to termination = processed first, which
    // drains walkers instead of letting them pile up.
    batch.steps_remaining as Priority
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    fn run_unpartitioned(graph: &CsrGraph, source: VertexId, config: RandomWalkConfig) -> RwState {
        use std::collections::BinaryHeap;

        use crate::operation::{HeapEntry, Operation};
        let kernel = RandomWalkKernel::new(config);
        let mut state = kernel.init_state(graph);
        let view = AdjacencyView::from_csr(graph);
        let mut heap = BinaryHeap::new();
        let (v0, p0) = kernel.source_op(source);
        heap.push(HeapEntry { op: Operation::new(0, source, v0, p0) });
        while let Some(entry) = heap.pop() {
            kernel.process(
                &view,
                &mut state,
                entry.op.vertex,
                entry.op.value,
                &mut |t, val, pri| {
                    heap.push(HeapEntry { op: Operation::new(0, t, val, pri) });
                },
            );
        }
        state
    }

    #[test]
    fn total_visits_match_walkers_times_steps() {
        let g = gen::rmat(7, 5, 1);
        let config = RandomWalkConfig { num_walks: 8, walk_length: 10, restart_prob: 0.0, seed: 2 };
        let state = run_unpartitioned(&g, 0, config);
        // Every walker is counted once per step plus once at the start.
        assert_eq!(state.total_visits(), 8 * (10 + 1));
    }

    #[test]
    fn dangling_vertices_absorb_walkers() {
        let mut b = fg_graph::GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let config = RandomWalkConfig { num_walks: 4, walk_length: 5, restart_prob: 0.0, seed: 1 };
        let state = run_unpartitioned(&g, 0, config);
        assert_eq!(state.total_visits(), 4 * (5 + 1));
        assert!(state.visits[1] > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::rmat(7, 5, 3);
        let config = RandomWalkConfig { num_walks: 6, walk_length: 12, restart_prob: 0.0, seed: 9 };
        assert_eq!(run_unpartitioned(&g, 2, config), run_unpartitioned(&g, 2, config));
    }

    #[test]
    fn zero_length_walks_only_visit_the_source() {
        let g = gen::complete(5);
        let config = RandomWalkConfig { num_walks: 3, walk_length: 0, restart_prob: 0.0, seed: 4 };
        let state = run_unpartitioned(&g, 1, config);
        assert_eq!(state.visits[1], 3);
        assert_eq!(state.total_visits(), 3);
    }
}
