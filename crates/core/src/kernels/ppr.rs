//! PPR kernel: push-based approximate personalized PageRank
//! (Andersen–Chung–Lang), the query type behind the NCP application.
//!
//! An operation carries residual mass to add at a vertex; when the accumulated
//! residual exceeds `epsilon * degree`, the vertex performs a (lazy) push and
//! emits residual shares to its neighbours. The priority functor prefers larger
//! residual shares (the "most effective value changes" of Section 5.2).

use fg_graph::{AdjacencyView, CsrGraph, VertexId};
use fg_seq::ppr::PprConfig;

use crate::kernel::FppKernel;
use crate::operation::Priority;

/// Per-query PPR state.
#[derive(Clone, Debug, PartialEq)]
pub struct PprState {
    /// PPR estimates (dense; zero for untouched vertices).
    pub estimate: Vec<f64>,
    /// Residual mass (dense).
    pub residual: Vec<f64>,
    /// Number of pushes performed.
    pub pushes: u64,
}

impl PprState {
    /// Sparse `(vertex, estimate)` pairs with positive estimates.
    pub fn sparse_estimates(&self) -> Vec<(VertexId, f64)> {
        self.estimate
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(v, &p)| (v as VertexId, p))
            .collect()
    }

    /// Total mass accounted for (estimates + residual); stays ≈ 1.
    pub fn total_mass(&self) -> f64 {
        self.estimate.iter().sum::<f64>() + self.residual.iter().sum::<f64>()
    }
}

/// Personalized-PageRank kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct PprKernel {
    /// Push thresholds and teleport probability.
    pub config: PprConfig,
}

impl PprKernel {
    /// Create a kernel with the given PPR parameters.
    pub fn new(config: PprConfig) -> Self {
        PprKernel { config }
    }

    /// Priority functor: larger residual shares get smaller (better)
    /// priorities.
    pub fn priority_of(residual_share: f64) -> Priority {
        if residual_share <= 0.0 {
            return Priority::MAX;
        }
        (1.0 / residual_share).min(1e15) as Priority
    }
}

impl FppKernel for PprKernel {
    type Value = f64;
    type State = PprState;

    fn name(&self) -> &'static str {
        "ppr"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        PprState {
            estimate: vec![0.0; graph.num_vertices()],
            residual: vec![0.0; graph.num_vertices()],
            pushes: 0,
        }
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        (1.0, Self::priority_of(1.0))
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        let v = vertex as usize;
        state.residual[v] += value;
        let degree = graph.out_degree(vertex);
        let deg = degree.max(1) as f64;
        if state.residual[v] < self.config.epsilon * deg {
            return 0; // below the push threshold: wait for more mass
        }
        let r = state.residual[v];
        state.estimate[v] += self.config.alpha * r;
        let push_mass = (1.0 - self.config.alpha) * r;
        state.residual[v] = push_mass / 2.0;
        state.pushes += 1;
        let mut edges = 0u64;
        if degree == 0 {
            // Dangling vertex: the walk stays put; keep the mass as residual.
            state.residual[v] += push_mass / 2.0;
        } else {
            let share = push_mass / 2.0 / deg;
            let priority = Self::priority_of(share);
            for t in graph.out_neighbors(vertex) {
                edges += 1;
                emit(t, share, priority);
            }
        }
        // If the retained residual still exceeds the threshold, schedule
        // another push of this vertex.
        if state.residual[v] >= self.config.epsilon * deg {
            emit(vertex, 0.0, Self::priority_of(state.residual[v]));
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    fn run_unpartitioned(graph: &CsrGraph, seed: VertexId, config: PprConfig) -> PprState {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let kernel = PprKernel::new(config);
        let mut state = kernel.init_state(graph);
        let view = AdjacencyView::from_csr(graph);
        let mut heap: BinaryHeap<Reverse<(Priority, VertexId, u64)>> = BinaryHeap::new();
        let mut payloads: Vec<f64> = Vec::new();
        let (v0, p0) = kernel.source_op(seed);
        payloads.push(v0);
        heap.push(Reverse((p0, seed, 0)));
        while let Some(Reverse((_, vertex, idx))) = heap.pop() {
            let value = payloads[idx as usize];
            kernel.process(&view, &mut state, vertex, value, &mut |t, val, pri| {
                payloads.push(val);
                heap.push(Reverse((pri, t, payloads.len() as u64 - 1)));
            });
        }
        state
    }

    #[test]
    fn mass_conservation() {
        let g = gen::rmat(8, 6, 5);
        let state = run_unpartitioned(&g, 3, PprConfig { epsilon: 1e-5, ..Default::default() });
        assert!((state.total_mass() - 1.0).abs() < 1e-9, "mass {}", state.total_mass());
        assert!(state.pushes > 0);
    }

    #[test]
    fn close_to_sequential_reference() {
        let g = gen::rmat(8, 6, 7);
        let config = PprConfig { epsilon: 1e-6, ..Default::default() };
        let state = run_unpartitioned(&g, 2, config);
        let reference = fg_seq::ppr::ppr_push(&g, 2, &config).dense(g.num_vertices());
        let l1: f64 = state.estimate.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.05, "l1 distance {l1}");
        // Seed carries the largest estimate in both.
        let best = state
            .estimate
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, _)| v as u32)
            .unwrap();
        assert_eq!(best, 2);
    }

    #[test]
    fn sub_threshold_operations_do_no_work() {
        let g = gen::complete(10);
        let kernel = PprKernel::new(PprConfig { epsilon: 0.1, ..Default::default() });
        let mut state = kernel.init_state(&g);
        let view = AdjacencyView::from_csr(&g);
        let mut emitted = 0usize;
        let edges = kernel.process(&view, &mut state, 0, 1e-6, &mut |_, _, _| emitted += 1);
        assert_eq!(edges, 0);
        assert_eq!(emitted, 0);
        assert!(state.residual[0] > 0.0);
        assert_eq!(state.estimate[0], 0.0);
    }

    #[test]
    fn priority_prefers_bigger_shares() {
        assert!(PprKernel::priority_of(0.5) < PprKernel::priority_of(0.001));
        assert_eq!(PprKernel::priority_of(0.0), Priority::MAX);
        assert_eq!(PprKernel::priority_of(-1.0), Priority::MAX);
    }

    #[test]
    fn dangling_vertices_keep_their_mass() {
        let mut b = fg_graph::GraphBuilder::new(2);
        b.add_edge(0, 1, 1); // vertex 1 is a sink
        let g = b.build();
        let state = run_unpartitioned(&g, 0, PprConfig { epsilon: 1e-4, ..Default::default() });
        assert!((state.total_mass() - 1.0).abs() < 1e-9);
        assert!(state.estimate[1] > 0.0);
    }
}
