//! SSSP kernel: sequential Dijkstra-style relaxation driven by buffered
//! operations. The priority functor is the tentative distance (shorter paths
//! first), exactly the Dijkstra functor the paper reuses for BC and LL.

use fg_graph::{AdjacencyView, CsrGraph, Dist, VertexId, Weight, INF_DIST};

use crate::kernel::{FppKernel, IncrementalKernel};
use crate::operation::Priority;

/// Single-source shortest paths kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct SsspKernel;

impl FppKernel for SsspKernel {
    type Value = Dist;
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![INF_DIST; graph.num_vertices()]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        (0, 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        value: Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        if value >= state[vertex as usize] {
            return 0; // stale or dominated operation: pruned
        }
        state[vertex as usize] = value;
        let mut edges = 0u64;
        for (t, w) in graph.out_edges(vertex) {
            edges += 1;
            let nd = value + w as Dist;
            if nd < state[t as usize] {
                emit(t, nd, nd);
            }
        }
        edges
    }
}

impl IncrementalKernel for SsspKernel {
    fn delta_seed(
        &self,
        prev: &Self::State,
        u: VertexId,
        _v: VertexId,
        w: Weight,
    ) -> Option<(Self::Value, Priority)> {
        // A new/cheaper edge u → v relaxes v to dist(u) + w — the same
        // operation `process` at u would emit. An unreached u seeds nothing.
        (prev[u as usize] != INF_DIST).then(|| {
            let nd = prev[u as usize] + w as Dist;
            (nd, nd)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    /// Drive the kernel with a single global priority queue (no partitions):
    /// this must behave exactly like Dijkstra's algorithm.
    fn run_unpartitioned(graph: &CsrGraph, source: VertexId) -> Vec<Dist> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let kernel = SsspKernel;
        let mut state = kernel.init_state(graph);
        let view = AdjacencyView::from_csr(graph);
        let mut heap = BinaryHeap::new();
        let (v0, p0) = kernel.source_op(source);
        heap.push(Reverse((p0, source, v0)));
        while let Some(Reverse((_, vertex, value))) = heap.pop() {
            kernel.process(&view, &mut state, vertex, value, &mut |t, val, pri| {
                heap.push(Reverse((pri, t, val)));
            });
        }
        state
    }

    #[test]
    fn kernel_driven_by_a_priority_queue_equals_dijkstra() {
        let g = gen::erdos_renyi(200, 1400, 3).with_random_weights(9, 3);
        assert_eq!(run_unpartitioned(&g, 0), fg_seq::dijkstra::dijkstra(&g, 0).dist);
    }

    #[test]
    fn stale_operations_are_pruned_without_work() {
        let g = gen::path(5).with_random_weights(1, 0);
        let kernel = SsspKernel;
        let mut state = kernel.init_state(&g);
        let view = AdjacencyView::from_csr(&g);
        let mut sink = |_: VertexId, _: Dist, _: Priority| {};
        assert!(kernel.process(&view, &mut state, 0, 0, &mut sink) > 0);
        // Re-processing the source with a worse value does nothing.
        assert_eq!(kernel.process(&view, &mut state, 0, 5, &mut sink), 0);
        assert_eq!(state[0], 0);
    }

    #[test]
    fn emitted_priorities_equal_tentative_distances() {
        let g = gen::complete(4).with_random_weights(5, 1);
        let kernel = SsspKernel;
        let mut state = kernel.init_state(&g);
        let view = AdjacencyView::from_csr(&g);
        let mut emitted = Vec::new();
        kernel.process(&view, &mut state, 0, 0, &mut |t, val, pri| emitted.push((t, val, pri)));
        assert!(!emitted.is_empty());
        for (_, val, pri) in emitted {
            assert_eq!(val, pri);
        }
    }
}
