//! A persistent worker pool for the inter-partition parallel executor.
//!
//! PR 2's executor spawned and joined scoped threads *per engine run* —
//! fine for one-shot batch reproduction, but on the fg-service hot path
//! (one run per micro-batch) the spawn/join cycle plus per-run
//! mailbox/queue/scratch allocation is exactly the small-batch tail-latency
//! cost the ROADMAP flags. A [`WorkerPool`] amortises both:
//!
//! * **Threads are spawned once** (plus on-demand growth when a run asks for
//!   more workers than the pool has) and parked on a condvar between runs.
//!   Steady-state runs spawn zero new threads — asserted by
//!   `tests/pool_reuse.rs` via [`fg_metrics::PoolSnapshot::threads_spawned`].
//! * **Runs are dispatched by generation**: the dispatcher installs a
//!   type-erased job, bumps the generation counter, and wakes the workers;
//!   each worker executes the job exactly once per generation (tracked by a
//!   worker-local `seen_generation`) and the dispatcher blocks until every
//!   participating worker has finished. The blocking handshake is what makes
//!   the lifetime erasure of the job reference sound — the same contract
//!   `std::thread::scope` provides, without the per-run thread churn.
//! * **Per-run allocations are recycled**: partition mailboxes (with their
//!   claim words) and per-worker runnable queues return to a type-keyed
//!   arena after each run, and each worker keeps its consolidation scratch
//!   [`PartitionBuffer`] across runs. Reuse vs rebuild is counted in
//!   [`fg_metrics::PoolCounters`].
//!
//! A pool is either owned lazily by a [`crate::ForkGraphEngine`] (created on
//! the first pool-mode parallel run) or constructed once by a serving layer
//! and shared across engines via `Arc<WorkerPool>`
//! ([`crate::ForkGraphEngine::with_pool`]) — fg-service does the latter so
//! every micro-batch reuses one crew regardless of its adaptive worker count.
//!
//! Dispatching fewer workers than the pool holds is cheap (non-participating
//! workers stay parked), which is what makes fg-service's per-batch adaptive
//! sizing viable.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use fg_graph::partition::PartitionId;
use fg_metrics::{PoolCounters, PoolSnapshot};
use fg_trace::{EventKind, TraceSink};

use crate::buffer::PartitionBuffer;
use crate::executor::Mailbox;

/// A job dispatched onto the pool: invoked once per participating worker
/// with the worker's index and its persistent [`WorkerSlot`].
type Job = dyn Fn(usize, &mut WorkerSlot) + Sync;

/// The crew size a parallel run over `num_partitions` partitions actually
/// uses when `requested_workers` are asked for: at least 2 (below that the
/// engine runs serially), at most one worker per partition.
///
/// The single sizing rule shared by the executor's dispatch, the engine's
/// lazy pool creation, and fg-service's pool construction — pre-sized pools
/// stay in lockstep with what runs dispatch only because all three use this
/// one function (a drifted copy would either grow threads on the hot path,
/// breaking the zero-spawn steady state, or park dead surplus).
pub fn crew_size(requested_workers: usize, num_partitions: usize) -> usize {
    requested_workers.clamp(2, num_partitions.max(2))
}

/// Per-run storage handed out by (and returned to) the recycle arena.
pub(crate) type RunStorage<V> = (Vec<Mailbox<V>>, Vec<Mutex<Vec<PartitionId>>>);

/// Thread-local state a pool worker keeps across runs: currently the
/// consolidation scratch buffer, stored type-erased because consecutive runs
/// may use kernels with different operation value types.
#[derive(Default)]
pub struct WorkerSlot {
    scratch: Option<Box<dyn Any + Send>>,
}

impl WorkerSlot {
    /// The worker's scratch [`PartitionBuffer`] for a run with value type
    /// `V` and `num_buckets` buckets — reused from the previous run when the
    /// type and geometry match (and the buffer was left drained), rebuilt
    /// otherwise. Reuse vs rebuild is recorded in `counters`.
    pub(crate) fn scratch_buffer<V: Copy + Send + 'static>(
        &mut self,
        num_buckets: usize,
        counters: &PoolCounters,
    ) -> &mut PartitionBuffer<V> {
        let reusable = self
            .scratch
            .as_ref()
            .and_then(|b| b.downcast_ref::<PartitionBuffer<V>>())
            .is_some_and(|b| b.num_buckets() == num_buckets && b.is_empty());
        if reusable {
            counters.add_scratch_reused();
        } else {
            counters.add_scratch_rebuilt();
            self.scratch = Some(Box::new(PartitionBuffer::<V>::new(num_buckets)));
        }
        self.scratch
            .as_mut()
            .expect("scratch installed above")
            .downcast_mut::<PartitionBuffer<V>>()
            .expect("scratch type checked above")
    }
}

/// Recycled per-run allocations, keyed by operation value type so a pool
/// serving mixed kernels keeps one storage set per type.
#[derive(Default)]
struct RecycleArena {
    /// Per-worker runnable queues (value-type independent).
    queues: Vec<Mutex<Vec<PartitionId>>>,
    /// `TypeId::of::<V>() → Vec<Mailbox<V>>` (boxed for type erasure).
    mailboxes_by_type: HashMap<TypeId, Box<dyn Any + Send>>,
}

/// Dispatch protocol state, guarded by one mutex.
struct DispatchState {
    /// Bumped once per dispatched run; workers run each generation once.
    generation: u64,
    /// Workers `0..active` participate in the current generation.
    active: usize,
    /// Participating workers that have not yet finished the current job.
    remaining: usize,
    /// The current generation's job (`None` between runs). `'static` by
    /// erasure; see [`WorkerPool::dispatch`] for the soundness argument.
    job: Option<&'static Job>,
    /// Set when any worker's job invocation panicked this generation.
    panicked: bool,
    /// Set once, by [`WorkerPool::drop`]; workers exit their idle loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<DispatchState>,
    /// Workers park here between runs; notified on dispatch and shutdown.
    work_cv: Condvar,
    /// The dispatcher parks here until `remaining` hits zero.
    done_cv: Condvar,
    counters: PoolCounters,
    recycle: Mutex<RecycleArena>,
    /// Optional trace sink; set once, first writer wins (a pool shared by
    /// several traced engines keeps the first sink attached).
    trace: OnceLock<Arc<TraceSink>>,
}

impl PoolShared {
    #[inline]
    fn emit(&self, kind: EventKind, a: u32, b: u32, c: u32) {
        if let Some(trace) = self.trace.get() {
            trace.emit(kind, a, b, c);
        }
    }
}

/// A persistent crew of executor worker threads; see the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Serialises dispatchers: a pool runs one engine run at a time.
    dispatch_lock: Mutex<()>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (clamped to at least one). More
    /// threads are spawned on demand if a later run asks for more.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(DispatchState {
                generation: 0,
                active: 0,
                remaining: 0,
                job: None,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            counters: PoolCounters::new(),
            recycle: Mutex::new(RecycleArena::default()),
            trace: OnceLock::new(),
        });
        let pool =
            WorkerPool { shared, threads: Mutex::new(Vec::new()), dispatch_lock: Mutex::new(()) };
        pool.ensure_capacity(workers.max(1));
        pool
    }

    /// Worker threads currently alive in the pool.
    pub fn capacity(&self) -> usize {
        self.threads.lock().len()
    }

    /// Lifetime counters: dispatches, park/unpark, reuse vs rebuild.
    pub fn metrics(&self) -> PoolSnapshot {
        self.shared.counters.snapshot()
    }

    /// Attach a trace sink: dispatch epochs, storage recycling, and worker
    /// park/unpark become trace events. Set-once; later calls on an
    /// already-traced pool are ignored (first sink wins), so engines sharing
    /// a pool cannot silently re-route each other's events mid-run.
    pub fn attach_trace(&self, sink: Arc<TraceSink>) {
        let _ = self.shared.trace.set(sink);
    }

    /// The live counters (for executor-internal accounting).
    pub(crate) fn counters(&self) -> &PoolCounters {
        &self.shared.counters
    }

    /// Grow the pool to at least `workers` threads (no-op when already
    /// large enough). Shrinking is intentionally unsupported: parked
    /// threads cost almost nothing, and churning them would defeat the
    /// zero-spawn steady state.
    fn ensure_capacity(&self, workers: usize) {
        let mut threads = self.threads.lock();
        while threads.len() < workers {
            let index = threads.len();
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("fg-pool-{index}"))
                .spawn(move || worker_body(shared, index))
                .expect("failed to spawn fg-pool worker thread");
            threads.push(handle);
            self.shared.counters.add_threads_spawned(1);
        }
    }

    /// Run `job` on workers `0..active`, blocking until every one of them
    /// has executed it. Panics (after the run fully settles) if any worker's
    /// job invocation panicked, mirroring the spawn-mode `join().expect(..)`
    /// behaviour; the pool itself survives and stays dispatchable.
    pub(crate) fn dispatch(&self, active: usize, job: &(dyn Fn(usize, &mut WorkerSlot) + Sync)) {
        assert!(active > 0, "dispatch needs at least one worker");
        self.ensure_capacity(active);
        let _one_run_at_a_time = self.dispatch_lock.lock();
        // SAFETY: workers dereference `job` only between the generation bump
        // below and their `remaining` decrement, and this function does not
        // return (or unwind — no panic source before the handshake) until
        // `remaining == 0`, so the erased borrow strictly outlives every
        // use. This is the std::thread::scope contract without the per-run
        // thread spawn/join.
        let job: &'static Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize, &mut WorkerSlot) + Sync), &'static Job>(job)
        };
        let mut state = self.shared.state.lock();
        debug_assert_eq!(state.remaining, 0, "dispatch while a run is in flight");
        state.job = Some(job);
        state.active = active;
        state.remaining = active;
        state.generation += 1;
        state.panicked = false;
        self.shared.counters.add_dispatch();
        self.shared.emit(EventKind::PoolDispatch, state.generation as u32, active as u32, 0);
        self.shared.work_cv.notify_all();
        while state.remaining > 0 {
            self.shared.done_cv.wait(&mut state);
        }
        state.job = None;
        let panicked = state.panicked;
        drop(state);
        if panicked {
            panic!("executor worker panicked");
        }
    }

    /// Take per-run storage for `num_partitions` partitions and
    /// `num_workers` workers from the recycle arena, building whatever is
    /// missing. Mailboxes are matched by operation value type `V`; recycled
    /// ones are reset (claim word to `Idle`, hints zeroed, stripes grown to
    /// `num_workers`).
    pub(crate) fn take_run_storage<V: Copy + Send + 'static>(
        &self,
        num_partitions: usize,
        num_workers: usize,
    ) -> RunStorage<V> {
        let mut arena = self.shared.recycle.lock();
        let mut mailboxes: Vec<Mailbox<V>> = arena
            .mailboxes_by_type
            .remove(&TypeId::of::<V>())
            .and_then(|boxed| boxed.downcast::<Vec<Mailbox<V>>>().ok())
            .map(|boxed| *boxed)
            .unwrap_or_default();
        let reused = mailboxes.len().min(num_partitions) as u64;
        self.shared.counters.add_mailboxes_reused(reused);
        self.shared.counters.add_mailboxes_rebuilt(num_partitions as u64 - reused);
        self.shared.emit(
            EventKind::StorageRecycle,
            reused as u32,
            (num_partitions as u64 - reused) as u32,
            num_workers as u32,
        );
        mailboxes.truncate(num_partitions);
        for mailbox in &mut mailboxes {
            mailbox.reset_for(num_workers);
        }
        while mailboxes.len() < num_partitions {
            mailboxes.push(Mailbox::new(num_workers));
        }

        let mut queues = std::mem::take(&mut arena.queues);
        queues.truncate(num_workers);
        for queue in &mut queues {
            queue.lock().clear();
        }
        while queues.len() < num_workers {
            queues.push(Mutex::new(Vec::new()));
        }
        (mailboxes, queues)
    }

    /// Return a completed run's storage to the arena for the next run.
    /// (Not called when a run panics — the next run then rebuilds fresh.)
    pub(crate) fn store_run_storage<V: Copy + Send + 'static>(
        &self,
        mailboxes: Vec<Mailbox<V>>,
        queues: Vec<Mutex<Vec<PartitionId>>>,
    ) {
        let mut arena = self.shared.recycle.lock();
        arena.mailboxes_by_type.insert(TypeId::of::<V>(), Box::new(mailboxes));
        arena.queues = queues;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self.threads.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("capacity", &self.capacity())
            .field("metrics", &self.metrics())
            .finish()
    }
}

/// The body each pool thread runs for its whole life: park until a new
/// generation includes this worker, run the job once, hand the completion
/// back, repeat until shutdown.
fn worker_body(shared: Arc<PoolShared>, index: usize) {
    let mut slot = WorkerSlot::default();
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if state.generation != seen_generation {
                    seen_generation = state.generation;
                    if index < state.active {
                        // `remaining > 0` for this generation until every
                        // participant (us included) finishes, and the
                        // dispatcher clears the job only after that, so the
                        // job is always present here.
                        break state.job.expect("dispatched generation has a job");
                    }
                }
                // Honour shutdown only between generations: a pending
                // dispatch is completed first so the dispatcher's handshake
                // can never be stranded.
                if state.shutdown {
                    return;
                }
                shared.counters.add_park();
                shared.emit(EventKind::Park, index as u32, 0, 0);
                shared.work_cv.wait(&mut state);
                shared.counters.add_unpark();
                shared.emit(EventKind::Unpark, index as u32, 0, 0);
            }
        };
        // Contain job panics so a kernel panic fails that run (the
        // dispatcher re-raises) without killing the pool thread.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index, &mut slot)));
        let mut state = shared.state.lock();
        if outcome.is_err() {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn dispatch_runs_job_on_exactly_the_active_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.capacity(), 4);
        let hits = AtomicUsize::new(0);
        let mask = Mutex::new(Vec::new());
        pool.dispatch(3, &|w, _slot| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.lock().push(w);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        let mut seen = mask.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(pool.metrics().dispatches, 1);
        assert_eq!(pool.metrics().threads_spawned, 4);
    }

    #[test]
    fn repeated_dispatches_spawn_no_new_threads() {
        let pool = WorkerPool::new(2);
        for _ in 0..20 {
            pool.dispatch(2, &|_, _| {});
        }
        let m = pool.metrics();
        assert_eq!(m.threads_spawned, 2);
        assert_eq!(m.dispatches, 20);
    }

    #[test]
    fn dispatch_grows_the_pool_on_demand_once() {
        let pool = WorkerPool::new(2);
        pool.dispatch(5, &|_, _| {});
        assert_eq!(pool.capacity(), 5);
        pool.dispatch(5, &|_, _| {});
        pool.dispatch(3, &|_, _| {});
        assert_eq!(pool.metrics().threads_spawned, 5);
    }

    #[test]
    fn worker_panic_fails_the_dispatch_but_not_the_pool() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.dispatch(3, &|w, _| {
                if w == 1 {
                    panic!("kernel bug");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives and serves the next run.
        let hits = AtomicUsize::new(0);
        pool.dispatch(3, &|_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn run_storage_is_recycled_per_value_type() {
        let pool = WorkerPool::new(1);
        let (mailboxes, queues) = pool.take_run_storage::<u64>(8, 2);
        assert_eq!(mailboxes.len(), 8);
        assert_eq!(queues.len(), 2);
        assert_eq!(pool.metrics().mailboxes_rebuilt, 8);
        pool.store_run_storage(mailboxes, queues);
        // Same type: recycled. Larger partition count: partial rebuild.
        let (mailboxes, queues) = pool.take_run_storage::<u64>(10, 4);
        assert_eq!(mailboxes.len(), 10);
        assert_eq!(queues.len(), 4);
        assert_eq!(pool.metrics().mailboxes_reused, 8);
        assert_eq!(pool.metrics().mailboxes_rebuilt, 10);
        pool.store_run_storage(mailboxes, queues);
        // Different value type: nothing to recycle.
        let (mailboxes, _queues) = pool.take_run_storage::<f64>(4, 2);
        assert_eq!(mailboxes.len(), 4);
        assert_eq!(pool.metrics().mailboxes_rebuilt, 14);
    }

    #[test]
    fn scratch_buffer_is_reused_when_type_and_geometry_match() {
        let counters = PoolCounters::new();
        let mut slot = WorkerSlot::default();
        let _ = slot.scratch_buffer::<u64>(8, &counters);
        let _ = slot.scratch_buffer::<u64>(8, &counters);
        assert_eq!(counters.snapshot().scratch_reused, 1);
        assert_eq!(counters.snapshot().scratch_rebuilt, 1);
        // Geometry change rebuilds; type change rebuilds.
        let _ = slot.scratch_buffer::<u64>(16, &counters);
        let _ = slot.scratch_buffer::<f64>(16, &counters);
        assert_eq!(counters.snapshot().scratch_rebuilt, 3);
    }
}
