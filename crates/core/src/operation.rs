//! Operations: the ⟨query, vertex, value⟩ triples of Definition 2.3.

#[cfg(debug_assertions)]
use std::any::TypeId;
use std::mem::MaybeUninit;

use fg_graph::VertexId;

/// Scheduling priority of an operation. **Lower is better** (processed
/// earlier): for SSSP the priority is the tentative distance, for BFS the
/// level, for PPR a decreasing function of the residual.
pub type Priority = u64;

/// An operation of an FPP query: "apply `value` at `vertex` on behalf of
/// `query`".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Operation<V> {
    /// Index of the query within the FPP batch.
    pub query: u32,
    /// Target vertex (global id).
    pub vertex: VertexId,
    /// Kernel-specific payload (tentative distance, residual mass, …).
    pub value: V,
    /// Scheduling priority derived from `value` by the kernel's priority
    /// functor; lower values are processed first.
    pub priority: Priority,
}

impl<V> Operation<V> {
    /// Create an operation.
    pub fn new(query: u32, vertex: VertexId, value: V, priority: Priority) -> Self {
        Operation { query, vertex, value, priority }
    }
}

/// Private seal for [`ErasedPayload`]: only the two payload widths defined
/// in this module implement it.
mod payload_sealed {
    pub trait Sealed {}
}

/// Marker for the inline type-erased operation payloads of heterogeneous
/// multi-kernel runs ([`MultiValue8`] and [`MultiValue16`]). **Sealed** —
/// the set of widths is fixed here; external code only ever handles the
/// payloads opaquely (constructing and reading them is crate-internal, see
/// the soundness notes on the concrete types).
pub trait ErasedPayload: Copy + Send + Sync + 'static + payload_sealed::Sealed {}

/// Crate-internal operations on an erased payload: the unsafe inline
/// write/read pair plus the width constants. Kept off the public
/// [`ErasedPayload`] marker so no external code can construct a payload
/// with one type and read it with another — that seal (enforced one level
/// up by [`crate::dynkernel::MultiKernelHooks`]) is what makes the
/// release-build reads sound without a per-operation tag check; debug
/// builds additionally carry and verify a `TypeId` tag.
pub(crate) trait PayloadOps: ErasedPayload {
    /// Largest value size (bytes) this width can carry.
    const CAPACITY: usize;
    /// Largest value alignment this width can carry.
    const ALIGN: usize = 8;

    /// Whether values of type `V` fit this width.
    fn fits<V: 'static>() -> bool {
        std::mem::size_of::<V>() <= Self::CAPACITY && std::mem::align_of::<V>() <= Self::ALIGN
    }

    /// Erase `value` inline. Panics if `V` does not fit.
    fn new<V: Copy + Send + Sync + 'static>(value: V) -> Self;

    /// Recover the erased value (see the trait docs for the soundness
    /// argument; debug builds tag-check).
    fn get<V: Copy + Send + Sync + 'static>(&self) -> V;
}

/// 8-aligned inline byte storage. `MaybeUninit` because the bytes beyond
/// the stored value's size — and any padding *inside* the stored value —
/// are never initialised; the array must not be read as plain `u8`s. The
/// `repr(align(8))` is load-bearing: locals and fields of this type are
/// 8-aligned, which is what lets `new`/`get` cast the array pointer to any
/// `V` with align ≤ 8.
#[derive(Clone, Copy)]
#[repr(align(8))]
struct InlineBytes<const N: usize>([MaybeUninit<u8>; N]);

/// Defines one payload width: an opaque `Copy` struct of exactly `$cap`
/// inline bytes (plus a debug-only `TypeId` tag).
macro_rules! define_payload {
    ($(#[$doc:meta])* $name:ident, $cap:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy)]
        pub struct $name {
            bytes: InlineBytes<$cap>,
            /// Debug-only type tag; release builds rely on the hook seal.
            #[cfg(debug_assertions)]
            tag: TypeId,
        }

        impl $name {
            /// Largest value size (bytes) this payload can carry.
            pub const CAPACITY: usize = $cap;
            /// Largest value alignment this payload can carry.
            pub const ALIGN: usize = 8;

            /// Whether values of type `V` fit this payload.
            pub fn fits<V: 'static>() -> bool {
                Self::fits_layout(std::mem::size_of::<V>(), std::mem::align_of::<V>())
            }

            /// Whether a value with the given `(size, align)` layout fits.
            pub fn fits_layout(size: usize, align: usize) -> bool {
                size <= Self::CAPACITY && align <= Self::ALIGN
            }
        }

        impl payload_sealed::Sealed for $name {}
        impl ErasedPayload for $name {}

        impl PayloadOps for $name {
            const CAPACITY: usize = $cap;

            fn new<V: Copy + Send + Sync + 'static>(value: V) -> Self {
                assert!(
                    <Self as PayloadOps>::fits::<V>(),
                    "operation value type {} (size {}, align {}) exceeds the {}-byte \
                     multi-kernel inline payload",
                    std::any::type_name::<V>(),
                    std::mem::size_of::<V>(),
                    std::mem::align_of::<V>(),
                    $cap,
                );
                let mut bytes = InlineBytes([MaybeUninit::uninit(); $cap]);
                // SAFETY: `fits` guarantees size and alignment
                // (`InlineBytes` is `repr(align(8))`, so its first byte is
                // aligned for any `V` with align ≤ 8), and `V: Copy` means
                // the byte copy is a full semantic copy (no double-drop
                // hazard).
                unsafe { std::ptr::write(bytes.0.as_mut_ptr().cast::<V>(), value) };
                $name {
                    bytes,
                    #[cfg(debug_assertions)]
                    tag: TypeId::of::<V>(),
                }
            }

            fn get<V: Copy + Send + Sync + 'static>(&self) -> V {
                #[cfg(debug_assertions)]
                assert!(
                    self.tag == TypeId::of::<V>(),
                    "multi-kernel payload holds a different value type than {}",
                    std::any::type_name::<V>(),
                );
                // SAFETY: written by `new::<V>` (the sealed hook objects of
                // `crate::dynkernel` pair every group's writes and reads on
                // one concrete `V`; debug builds verify via the tag), at an
                // address aligned for `V`.
                unsafe { std::ptr::read(self.bytes.0.as_ptr().cast::<V>()) }
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // The bytes are deliberately not printed: padding inside the
                // erased value may be uninitialised.
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

define_payload!(
    /// The **narrow** (8-byte) erased payload: covers SSSP (`u64`), BFS
    /// (`u32`), PPR (`f64`), and any other word-sized kernel value. A
    /// narrow-payload operation is exactly as large as a native `u64`-valued
    /// operation (24 bytes), so the most common service mixes pay no
    /// per-operation size penalty at all. `ForkGraphEngine::run_multi`
    /// (see `crate::engine`) picks this width automatically when every
    /// group's kernel fits it.
    MultiValue8,
    8
);

define_payload!(
    /// The **wide** (16-byte) erased payload: covers every built-in kernel
    /// (random walks' `WalkerBatch` and the k-hop exemplars' `(Dist, u32)`
    /// are 16 bytes) with operations of 32 bytes. Used whenever any group
    /// of a heterogeneous run needs more than [`MultiValue8`]; kernels with
    /// even larger values cannot join multi-kernel runs at all (they still
    /// run fine through the monomorphized single-kernel path, which has no
    /// size limit). The capacity is deliberately tight: a payload rides in
    /// **every** buffered operation of a mixed run, and measured mixed-run
    /// throughput tracks operation size almost linearly (buffer pushes,
    /// consolidation sorts, and mailbox drains are memcpy-bound).
    MultiValue16,
    16
);

// The `cast::<V>()` round-trips above require the byte storage to sit at
// an 8-aligned address; fail loudly if a layout change ever breaks that.
const _: () = {
    assert!(std::mem::align_of::<InlineBytes<8>>() == 8);
    assert!(std::mem::align_of::<InlineBytes<16>>() == 8);
    assert!(std::mem::align_of::<MultiValue8>() >= 8);
    assert!(std::mem::align_of::<MultiValue16>() >= 8);
};

/// Heap entry ordering operations by `(priority, vertex)`, lowest first, for
/// use inside a `BinaryHeap<Reverse<…>>`-style min-queue.
#[derive(Clone, Copy, Debug)]
pub struct HeapEntry<V> {
    /// The wrapped operation.
    pub op: Operation<V>,
}

impl<V> PartialEq for HeapEntry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.op.priority == other.op.priority && self.op.vertex == other.op.vertex
    }
}

impl<V> Eq for HeapEntry<V> {}

impl<V> PartialOrd for HeapEntry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<V> Ord for HeapEntry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so that a max-heap (std BinaryHeap) pops the *smallest*
        // priority first.
        (other.op.priority, other.op.vertex).cmp(&(self.op.priority, self.op.vertex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn construction() {
        let op = Operation::new(2, 7, 3.5f64, 10);
        assert_eq!(op.query, 2);
        assert_eq!(op.vertex, 7);
        assert_eq!(op.priority, 10);
    }

    #[test]
    fn heap_pops_lowest_priority_first() {
        let mut heap = BinaryHeap::new();
        for (v, p) in [(1u32, 30u64), (2, 10), (3, 20)] {
            heap.push(HeapEntry { op: Operation::new(0, v, (), p) });
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.op.priority)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_on_vertex_id() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { op: Operation::new(0, 9, (), 5) });
        heap.push(HeapEntry { op: Operation::new(0, 2, (), 5) });
        assert_eq!(heap.pop().unwrap().op.vertex, 2);
    }

    #[test]
    fn payloads_round_trip_every_builtin_value_shape() {
        let a = MultiValue8::new(42u64);
        assert_eq!(a.get::<u64>(), 42);
        let b = MultiValue8::new(7u32);
        assert_eq!(b.get::<u32>(), 7);
        let c = MultiValue8::new(0.125f64);
        assert_eq!(c.get::<f64>(), 0.125);
        let d = MultiValue16::new((9u64, 4u32)); // the k-hop exemplars' shape
        assert_eq!(d.get::<(u64, u32)>(), (9, 4));
        let e = MultiValue8::new(());
        e.get::<()>();
        // Narrow values ride the wide payload too (a ≤8-byte kernel joins a
        // wide run whenever any co-tenant needs 16 bytes).
        let f = MultiValue16::new(5u64);
        assert_eq!(f.get::<u64>(), 5);
        // Copies are independent, as the executor's buffers require.
        let copy = d;
        assert_eq!(copy.get::<(u64, u32)>(), (9, 4));
    }

    #[test]
    fn payloads_are_exactly_their_capacity_in_release() {
        // The whole point of the sealed, tag-free design: a release-build
        // payload is exactly the inline capacity, so a narrow-mix operation
        // is as small as a native `u64`-valued one.
        #[cfg(not(debug_assertions))]
        {
            assert_eq!(std::mem::size_of::<MultiValue8>(), MultiValue8::CAPACITY);
            assert_eq!(std::mem::size_of::<MultiValue16>(), MultiValue16::CAPACITY);
            assert_eq!(
                std::mem::size_of::<Operation<MultiValue8>>(),
                std::mem::size_of::<Operation<u64>>(),
            );
        }
        assert_eq!(std::mem::align_of::<MultiValue8>() % 8, 0);
        assert_eq!(std::mem::align_of::<MultiValue16>() % 8, 0);
    }

    #[test]
    fn payload_fits_reports_the_inline_limits() {
        assert!(MultiValue8::fits::<u64>());
        assert!(MultiValue8::fits::<u32>());
        assert!(!MultiValue8::fits::<(u64, u32)>(), "16 bytes exceeds the narrow capacity");
        assert!(MultiValue16::fits::<(u64, u32)>());
        assert!(MultiValue16::fits::<(u64, u64)>());
        assert!(!MultiValue16::fits::<[u64; 3]>(), "24 bytes exceeds the wide capacity");
        #[derive(Clone, Copy)]
        #[repr(align(16))]
        struct Overaligned(#[allow(dead_code)] u64);
        assert!(!MultiValue16::fits::<Overaligned>(), "align 16 exceeds the inline alignment");
        assert!(MultiValue16::fits_layout(MultiValue16::CAPACITY, MultiValue16::ALIGN));
        assert!(!MultiValue16::fits_layout(MultiValue16::CAPACITY + 1, 1));
        assert!(MultiValue8::fits_layout(8, 8));
        assert!(!MultiValue8::fits_layout(9, 8));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different value type")]
    fn payload_get_refuses_the_wrong_type_in_debug() {
        MultiValue8::new(1u64).get::<u32>();
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-byte multi-kernel inline payload")]
    fn payload_new_refuses_oversized_values() {
        MultiValue16::new([0u64; 4]);
    }
}
