//! Operations: the ⟨query, vertex, value⟩ triples of Definition 2.3.

use fg_graph::VertexId;

/// Scheduling priority of an operation. **Lower is better** (processed
/// earlier): for SSSP the priority is the tentative distance, for BFS the
/// level, for PPR a decreasing function of the residual.
pub type Priority = u64;

/// An operation of an FPP query: "apply `value` at `vertex` on behalf of
/// `query`".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Operation<V> {
    /// Index of the query within the FPP batch.
    pub query: u32,
    /// Target vertex (global id).
    pub vertex: VertexId,
    /// Kernel-specific payload (tentative distance, residual mass, …).
    pub value: V,
    /// Scheduling priority derived from `value` by the kernel's priority
    /// functor; lower values are processed first.
    pub priority: Priority,
}

impl<V> Operation<V> {
    /// Create an operation.
    pub fn new(query: u32, vertex: VertexId, value: V, priority: Priority) -> Self {
        Operation { query, vertex, value, priority }
    }
}

/// Heap entry ordering operations by `(priority, vertex)`, lowest first, for
/// use inside a `BinaryHeap<Reverse<…>>`-style min-queue.
#[derive(Clone, Copy, Debug)]
pub struct HeapEntry<V> {
    /// The wrapped operation.
    pub op: Operation<V>,
}

impl<V> PartialEq for HeapEntry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.op.priority == other.op.priority && self.op.vertex == other.op.vertex
    }
}

impl<V> Eq for HeapEntry<V> {}

impl<V> PartialOrd for HeapEntry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<V> Ord for HeapEntry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so that a max-heap (std BinaryHeap) pops the *smallest*
        // priority first.
        (other.op.priority, other.op.vertex).cmp(&(self.op.priority, self.op.vertex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn construction() {
        let op = Operation::new(2, 7, 3.5f64, 10);
        assert_eq!(op.query, 2);
        assert_eq!(op.vertex, 7);
        assert_eq!(op.priority, 10);
    }

    #[test]
    fn heap_pops_lowest_priority_first() {
        let mut heap = BinaryHeap::new();
        for (v, p) in [(1u32, 30u64), (2, 10), (3, 20)] {
            heap.push(HeapEntry { op: Operation::new(0, v, (), p) });
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.op.priority)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_on_vertex_id() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { op: Operation::new(0, 9, (), 5) });
        heap.push(HeapEntry { op: Operation::new(0, 2, (), 5) });
        assert_eq!(heap.pop().unwrap().op.vertex, 2);
    }
}
