//! Heuristic-based yielding (Section 5.1 of the paper).
//!
//! Yielding early-terminates a query's intra-partition processing to avoid
//! redundant work: operations left unprocessed stay in the partition's buffer
//! and are resumed on a later visit, possibly after better operations arrive
//! from neighbouring partitions. Two heuristics are provided, mirroring the
//! paper:
//!
//! 1. **Edge count** — yield once the query has processed more than a
//!    threshold number of edges in the current partition visit. The
//!    work-efficiency proof (Appendix A) suggests `|E_P| / |Q|` as the
//!    threshold, exposed here as [`YieldPolicy::EdgeBudgetAuto`].
//! 2. **Value range** — yield once the currently processed operation's value
//!    (priority) exceeds the first processed value by more than Δ, the
//!    Δ-stepping-inspired heuristic.

use serde::{Deserialize, Serialize};

use crate::operation::Priority;

/// When to early-terminate a query inside a partition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum YieldPolicy {
    /// Never yield: drain the query's operations in the partition completely.
    None,
    /// Heuristic 1 with a fixed threshold: yield after processing more than
    /// `threshold` edges in the current partition visit.
    EdgeBudget {
        /// Maximum edges a query may process per partition visit.
        threshold: u64,
    },
    /// Heuristic 1 with the analytical threshold `factor · |E_P| / |Q|`
    /// (Appendix A); `factor = 1.0` is the proof's bound, the paper uses
    /// larger factors (up to 100×) for large query counts.
    EdgeBudgetAuto {
        /// Multiplier applied to `|E_P| / |Q|`.
        factor: f64,
    },
    /// Heuristic 2: yield once the current operation's priority exceeds the
    /// first processed operation's priority by more than `delta`.
    ValueRange {
        /// Maximum allowed priority gap (Δ of Δ-stepping).
        delta: Priority,
    },
}

impl Default for YieldPolicy {
    fn default() -> Self {
        YieldPolicy::EdgeBudgetAuto { factor: 2.0 }
    }
}

impl YieldPolicy {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            YieldPolicy::None => "no-yielding".to_string(),
            YieldPolicy::EdgeBudget { threshold } => format!("edge-budget({threshold})"),
            YieldPolicy::EdgeBudgetAuto { factor } => format!("edge-budget-auto({factor}x)"),
            YieldPolicy::ValueRange { delta } => format!("value-range(delta={delta})"),
        }
    }

    /// Resolve this policy into a concrete per-visit checker for a partition
    /// with `partition_edges` edges when `num_queries` queries are running.
    pub fn for_partition(&self, partition_edges: u64, num_queries: usize) -> YieldChecker {
        let resolved = match *self {
            YieldPolicy::EdgeBudgetAuto { factor } => {
                let mu = partition_edges as f64 / num_queries.max(1) as f64;
                YieldPolicy::EdgeBudget { threshold: (factor * mu).ceil().max(1.0) as u64 }
            }
            other => other,
        };
        YieldChecker { policy: resolved, first_priority: None, edges_this_visit: 0 }
    }
}

/// Per-(query, partition-visit) yielding state.
#[derive(Clone, Copy, Debug)]
pub struct YieldChecker {
    policy: YieldPolicy,
    first_priority: Option<Priority>,
    edges_this_visit: u64,
}

impl YieldChecker {
    /// Record that the query processed `edges` edges.
    pub fn record_edges(&mut self, edges: u64) {
        self.edges_this_visit += edges;
    }

    /// Total edges recorded in this visit.
    pub fn edges_this_visit(&self) -> u64 {
        self.edges_this_visit
    }

    /// Decide whether the query should yield *before* processing an operation
    /// with the given priority. The first operation of a visit is never
    /// yielded on (it establishes the α reference value of heuristic 2).
    pub fn should_yield(&mut self, next_priority: Priority) -> bool {
        match self.policy {
            YieldPolicy::None => false,
            YieldPolicy::EdgeBudget { threshold } => self.edges_this_visit > threshold,
            YieldPolicy::EdgeBudgetAuto { .. } => unreachable!("resolved in for_partition"),
            YieldPolicy::ValueRange { delta } => match self.first_priority {
                None => {
                    self.first_priority = Some(next_priority);
                    false
                }
                Some(alpha) => next_priority > alpha.saturating_add(delta),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_yielding_never_yields() {
        let mut c = YieldPolicy::None.for_partition(100, 4);
        c.record_edges(1_000_000);
        assert!(!c.should_yield(u64::MAX - 1));
    }

    #[test]
    fn edge_budget_yields_after_threshold() {
        let mut c = YieldPolicy::EdgeBudget { threshold: 10 }.for_partition(1000, 4);
        assert!(!c.should_yield(0));
        c.record_edges(10);
        assert!(!c.should_yield(0), "exactly at the threshold is still allowed");
        c.record_edges(1);
        assert!(c.should_yield(0));
        assert_eq!(c.edges_this_visit(), 11);
    }

    #[test]
    fn auto_budget_uses_partition_edges_over_queries() {
        // |E_P| = 100, |Q| = 10, factor 1.0 → threshold 10.
        let mut c = YieldPolicy::EdgeBudgetAuto { factor: 1.0 }.for_partition(100, 10);
        c.record_edges(10);
        assert!(!c.should_yield(0));
        c.record_edges(1);
        assert!(c.should_yield(0));
        // factor 2.0 → threshold 20.
        let mut c2 = YieldPolicy::EdgeBudgetAuto { factor: 2.0 }.for_partition(100, 10);
        c2.record_edges(15);
        assert!(!c2.should_yield(0));
    }

    #[test]
    fn value_range_yields_when_priority_drifts_past_delta() {
        let mut c = YieldPolicy::ValueRange { delta: 5 }.for_partition(100, 1);
        assert!(!c.should_yield(10)); // establishes alpha = 10
        assert!(!c.should_yield(15)); // within [10, 15]
        assert!(c.should_yield(16));
        assert!(!c.should_yield(12));
    }

    #[test]
    fn value_range_saturates_instead_of_overflowing() {
        let mut c = YieldPolicy::ValueRange { delta: u64::MAX }.for_partition(10, 1);
        assert!(!c.should_yield(5));
        assert!(!c.should_yield(u64::MAX - 1));
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(YieldPolicy::None.name(), "no-yielding");
        assert!(YieldPolicy::EdgeBudget { threshold: 7 }.name().contains('7'));
        assert!(YieldPolicy::EdgeBudgetAuto { factor: 1.5 }.name().contains("1.5"));
        assert!(YieldPolicy::ValueRange { delta: 3 }.name().contains("delta=3"));
    }
}
