//! The ForkGraph engine: Algorithm 2 of the paper.
//!
//! ```text
//! InitBuffers(P, Q)
//! while at least one buffer has operations:
//!     Pc <- ScheduleNextPart()          (inter-partition scheduling, §5.2)
//!     IntraPartProcess(Pc):             (intra-partition processing, §4)
//!         consolidate operations per query
//!         parallel_for_each query q:
//!             process q's operations sequentially in priority order,
//!             yielding early per the yield policy (§5.1)
//!         send operations to neighbour partitions in batches
//! ```

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;
use rayon::prelude::*;

use fg_cachesim::{CacheConfig, GraphAccessTracer};
use fg_graph::partition::PartitionId;
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, Dist, Edge, VertexId};
use fg_metrics::{
    CacheNumbers, Measurement, MemoryEstimate, Stopwatch, WorkCounters, WorkSnapshot,
};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use fg_trace::{EventKind, Histogram, RunProfile, TraceSink};

use crate::buffer::{ConsolidationMethod, PartitionBuffer};
use crate::kernel::{FppKernel, IncrementalKernel, KernelDriver};
use crate::kernels::{BfsKernel, DfsKernel, PprKernel, RandomWalkKernel, SsspKernel};
use crate::operation::{HeapEntry, Operation, Priority};
use crate::pool::WorkerPool;
use crate::sched::{Scheduler, SchedulingPolicy};
use crate::yield_policy::YieldPolicy;

/// Cumulative optimisation levels used in the ablation study (Figure 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AblationLevel {
    /// "+buffer": buffered, partition-at-a-time execution only (FIFO
    /// scheduling, no per-query consolidation ordering, no yielding).
    BufferOnly,
    /// "+consolidation": adds query-centric consolidation with the priority
    /// functor ordering operations within a query.
    Consolidation,
    /// "+priority scheduling": adds priority-based inter-partition scheduling.
    PriorityScheduling,
    /// "+yielding": the full system.
    Full,
}

impl AblationLevel {
    /// All levels in cumulative order.
    pub fn all() -> [AblationLevel; 4] {
        [
            AblationLevel::BufferOnly,
            AblationLevel::Consolidation,
            AblationLevel::PriorityScheduling,
            AblationLevel::Full,
        ]
    }

    /// Label used in the Figure 11 report.
    pub fn label(&self) -> &'static str {
        match self {
            AblationLevel::BufferOnly => "+buffer",
            AblationLevel::Consolidation => "+consolidation",
            AblationLevel::PriorityScheduling => "+priority scheduling",
            AblationLevel::Full => "+yielding",
        }
    }
}

/// How a multi-threaded engine run gets its worker threads.
///
/// The default is resolved once per process from the `FORKGRAPH_EXECUTOR`
/// environment variable (`serial` | `spawn` | `pool`, anything else or unset
/// meaning `pool`) so CI can run the whole test suite under each mode; an
/// explicit [`EngineConfig::with_executor`] always wins over the
/// environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorMode {
    /// Force the paper's serial partition-at-a-time loop even when
    /// `num_threads > 1` (the ablation/debug escape hatch).
    Serial,
    /// PR 2's behaviour: spawn and join scoped worker threads per run.
    Spawn,
    /// Dispatch runs onto a persistent [`crate::pool::WorkerPool`]; threads
    /// are spawned once and per-run allocations are recycled.
    Pool,
}

impl ExecutorMode {
    /// The process-wide default mode, from `FORKGRAPH_EXECUTOR` (cached on
    /// first use).
    pub fn from_env() -> ExecutorMode {
        static MODE: std::sync::OnceLock<ExecutorMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("FORKGRAPH_EXECUTOR") {
            Ok(value) => match value.as_str() {
                "serial" => ExecutorMode::Serial,
                "spawn" => ExecutorMode::Spawn,
                "pool" => ExecutorMode::Pool,
                other => {
                    eprintln!(
                        "[forkgraph] unknown FORKGRAPH_EXECUTOR value {other:?} \
                         (expected serial|spawn|pool); defaulting to pool"
                    );
                    ExecutorMode::Pool
                }
            },
            Err(_) => ExecutorMode::Pool,
        })
    }

    /// Human-readable name (matches the accepted env-var values).
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorMode::Serial => "serial",
            ExecutorMode::Spawn => "spawn",
            ExecutorMode::Pool => "pool",
        }
    }
}

/// Configuration of a [`ForkGraphEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Inter-partition scheduling policy (§5.2).
    pub scheduling: SchedulingPolicy,
    /// Yielding policy (§5.1).
    pub yield_policy: YieldPolicy,
    /// Whether query-centric consolidation orders each query's operations by
    /// the priority functor (disabled only for the "+buffer" ablation).
    pub consolidate: bool,
    /// Number of buckets per partition buffer (K of Appendix B.1).
    pub num_buckets: usize,
    /// Consolidation method used when draining buffers.
    pub consolidation_method: ConsolidationMethod,
    /// Simulated LLC geometry; `None` disables cache simulation.
    pub cache: Option<CacheConfig>,
    /// Worker threads for the inter-partition parallel executor
    /// ([`crate::executor`]). `1` (the default) keeps the paper's serial
    /// partition-at-a-time loop; values above one process disjoint partitions
    /// concurrently. `0` means "one worker per available CPU".
    pub num_threads: usize,
    /// How parallel runs get their worker threads. `None` (the default)
    /// resolves to [`ExecutorMode::from_env`] — or to [`ExecutorMode::Pool`]
    /// when a pool was attached with [`ForkGraphEngine::with_pool`].
    pub executor: Option<ExecutorMode>,
    /// Attach a [`RunProfile`] (per-phase wall time, visit/steal histograms)
    /// to each run result. Independent of event tracing — profiles are
    /// computed from counters the run keeps anyway, so they work with no
    /// [`TraceSink`] attached. Off by default: the histogram updates cost a
    /// few relaxed atomic ops per partition visit.
    pub profile: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheduling: SchedulingPolicy::Priority,
            yield_policy: YieldPolicy::default(),
            consolidate: true,
            num_buckets: 64,
            consolidation_method: ConsolidationMethod::Sort,
            cache: None,
            num_threads: 1,
            executor: None,
            profile: false,
        }
    }
}

impl EngineConfig {
    /// Configuration corresponding to one cumulative ablation level.
    pub fn for_ablation(level: AblationLevel) -> Self {
        let base = EngineConfig::default();
        match level {
            AblationLevel::BufferOnly => EngineConfig {
                scheduling: SchedulingPolicy::Fifo,
                yield_policy: YieldPolicy::None,
                consolidate: false,
                ..base
            },
            AblationLevel::Consolidation => EngineConfig {
                scheduling: SchedulingPolicy::Fifo,
                yield_policy: YieldPolicy::None,
                consolidate: true,
                ..base
            },
            AblationLevel::PriorityScheduling => EngineConfig {
                scheduling: SchedulingPolicy::Priority,
                yield_policy: YieldPolicy::None,
                consolidate: true,
                ..base
            },
            AblationLevel::Full => base,
        }
    }

    /// Enable cache simulation.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Override the scheduling policy.
    pub fn with_scheduling(mut self, scheduling: SchedulingPolicy) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Override the yielding policy.
    pub fn with_yield_policy(mut self, yield_policy: YieldPolicy) -> Self {
        self.yield_policy = yield_policy;
        self
    }

    /// Set the worker-thread count of the parallel executor (`1` = serial,
    /// `0` = one worker per available CPU).
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Pin the executor mode, overriding the `FORKGRAPH_EXECUTOR` default.
    pub fn with_executor(mut self, executor: ExecutorMode) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Attach a [`RunProfile`] to each run result (see
    /// [`EngineConfig::profile`]).
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Worker threads this configuration resolves to on this machine.
    pub fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// The executor mode this configuration resolves to: the explicit
    /// setting if any, else the process-wide environment default. (An
    /// engine with an attached pool additionally prefers `Pool` — see
    /// [`ForkGraphEngine::run`].)
    pub fn resolved_executor(&self) -> ExecutorMode {
        self.executor.unwrap_or_else(ExecutorMode::from_env)
    }
}

/// Result of running an FPP batch through ForkGraph.
#[derive(Clone, Debug)]
pub struct ForkGraphRunResult<S> {
    /// Final per-query states (the query results), in source order.
    pub per_query: Vec<S>,
    /// Timing, work, cache, and memory measurement of the batch.
    pub measurement: Measurement,
    /// Per-run profile (phase wall times, visit/steal histograms); present
    /// iff [`EngineConfig::profile`] was set.
    pub profile: Option<RunProfile>,
}

impl<S> ForkGraphRunResult<S> {
    /// Work counters of the run.
    pub fn work(&self) -> &WorkSnapshot {
        &self.measurement.work
    }

    /// Pair each query's final state with the source it was launched from.
    ///
    /// `sources` must be the slice that was passed to [`ForkGraphEngine::run`]
    /// for this result (`per_query` is in source order). This is the
    /// demultiplexing primitive used by `fg-service` to hand a consolidated
    /// batch's per-query results back to individual submitters.
    ///
    /// # Panics
    /// Panics if `sources.len() != self.per_query.len()`.
    pub fn per_source<'a>(
        &'a self,
        sources: &'a [VertexId],
    ) -> impl ExactSizeIterator<Item = (VertexId, &'a S)> + 'a {
        assert_eq!(
            sources.len(),
            self.per_query.len(),
            "per_source: {} sources for {} query results",
            sources.len(),
            self.per_query.len()
        );
        sources.iter().copied().zip(self.per_query.iter())
    }

    /// Consuming variant of [`Self::per_source`]: split the result into owned
    /// `(source, state)` pairs, dropping the shared measurement.
    ///
    /// # Panics
    /// Panics if `sources.len() != self.per_query.len()`.
    pub fn into_per_source(self, sources: &[VertexId]) -> Vec<(VertexId, S)> {
        assert_eq!(
            sources.len(),
            self.per_query.len(),
            "into_per_source: {} sources for {} query results",
            sources.len(),
            self.per_query.len()
        );
        sources.iter().copied().zip(self.per_query).collect()
    }
}

/// The single-kernel [`KernelDriver`]: wraps one `&K` and ignores the query
/// index. Every method is an inlined forward — a visit goes straight into
/// the monomorphized [`ForkGraphEngine::process_query_visit`] — so `run`
/// over a `SingleDriver` compiles to exactly the code the pre-driver
/// pipeline produced; the driver seam costs the hot path nothing.
pub(crate) struct SingleDriver<'k, K: FppKernel>(pub(crate) &'k K);

impl<K: FppKernel> KernelDriver for SingleDriver<'_, K> {
    type Value = K::Value;
    type State = K::State;

    #[inline]
    fn init_state(&self, graph: &CsrGraph, _query: u32) -> K::State {
        self.0.init_state(graph)
    }

    #[inline]
    fn source_op(&self, _query: u32, source: VertexId) -> (K::Value, Priority) {
        self.0.source_op(source)
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn process_visit(
        &self,
        engine: &ForkGraphEngine<'_>,
        graph: &CsrGraph,
        partition: PartitionId,
        query: u32,
        ops: Vec<Operation<K::Value>>,
        state: &mut K::State,
        partition_edges: u64,
        num_queries: usize,
        tracer: &GraphAccessTracer,
        counters: &WorkCounters,
    ) -> VisitOutcome<K::Value> {
        engine.process_query_visit(
            self.0,
            graph,
            partition,
            query,
            ops,
            state,
            partition_edges,
            num_queries,
            tracer,
            counters,
        )
    }
}

/// The delta-restart [`KernelDriver`]: resumes a converged run from its
/// previous per-query states, seeding each query with the operations its
/// edge delta triggers instead of a fresh source op. The visit path is the
/// same inlined forward to [`ForkGraphEngine::process_query_visit`] as
/// [`SingleDriver`] — only *initialisation* differs, so an incremental run
/// is byte-equivalent to a from-scratch run that happened to prune every
/// already-settled vertex.
struct IncrementalDriver<'k, K: IncrementalKernel> {
    kernel: &'k K,
    /// Previous converged states, taken (once each) by `init_state`.
    prev: Vec<Mutex<Option<K::State>>>,
    /// Per-query delta-frontier seeds: `(vertex, value, priority)`.
    seeds: Vec<Vec<(VertexId, K::Value, Priority)>>,
}

impl<K: IncrementalKernel> KernelDriver for IncrementalDriver<'_, K> {
    type Value = K::Value;
    type State = K::State;

    fn init_state(&self, _graph: &CsrGraph, query: u32) -> K::State {
        self.prev[query as usize]
            .lock()
            .take()
            .expect("incremental run initialises each query's state exactly once")
    }

    #[inline]
    fn source_op(&self, _query: u32, source: VertexId) -> (K::Value, Priority) {
        // Unused: `seed_ops` is overridden. Kept total for trait hygiene.
        self.kernel.source_op(source)
    }

    fn seed_ops(
        &self,
        query: u32,
        _source: VertexId,
        emit: &mut dyn FnMut(VertexId, K::Value, Priority),
    ) {
        for &(vertex, value, priority) in &self.seeds[query as usize] {
            emit(vertex, value, priority);
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn process_visit(
        &self,
        engine: &ForkGraphEngine<'_>,
        graph: &CsrGraph,
        partition: PartitionId,
        query: u32,
        ops: Vec<Operation<K::Value>>,
        state: &mut K::State,
        partition_edges: u64,
        num_queries: usize,
        tracer: &GraphAccessTracer,
        counters: &WorkCounters,
    ) -> VisitOutcome<K::Value> {
        engine.process_query_visit(
            self.kernel,
            graph,
            partition,
            query,
            ops,
            state,
            partition_edges,
            num_queries,
            tracer,
            counters,
        )
    }
}

/// Outcome of one query's processing during one partition visit, as
/// produced by the engine's internal `process_query_visit` loop: what did
/// complete locally and where it must go next. Public because the erased
/// multi-kernel visit hook ([`crate::dynkernel::DynKernel`]) returns it;
/// everything else about visits stays engine-internal.
pub struct VisitOutcome<V> {
    /// The query this visit processed.
    pub query: u32,
    /// Operations yielded or left unprocessed; they return to the partition's
    /// buffer.
    pub leftover: Vec<Operation<V>>,
    /// Operations targeting other partitions, sent in batches after the visit.
    pub remote: Vec<(PartitionId, Operation<V>)>,
}

/// The ForkGraph execution engine over an LLC-partitioned graph.
pub struct ForkGraphEngine<'g> {
    pg: &'g PartitionedGraph,
    config: EngineConfig,
    /// The persistent worker pool for pool-mode parallel runs: pre-filled by
    /// [`Self::with_pool`] (a crew shared across engines, e.g. fg-service's),
    /// or lazily created — once — on the first pool-mode parallel run.
    pool: OnceLock<Arc<WorkerPool>>,
    /// Structured-event sink; `None` (the default) costs one predictable
    /// branch per instrumentation site.
    trace: Option<Arc<TraceSink>>,
}

impl<'g> ForkGraphEngine<'g> {
    /// Create an engine over `pg` with the given configuration.
    pub fn new(pg: &'g PartitionedGraph, config: EngineConfig) -> Self {
        ForkGraphEngine { pg, config, pool: OnceLock::new(), trace: None }
    }

    /// Create an engine that runs pool-mode parallel batches on an existing
    /// shared [`WorkerPool`] instead of lazily creating its own. This is how
    /// a serving layer amortises one thread crew across many short-lived
    /// engines (one per micro-batch) with varying worker counts.
    pub fn with_pool(
        pg: &'g PartitionedGraph,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let engine = ForkGraphEngine::new(pg, config);
        engine.pool.set(pool).expect("fresh OnceLock");
        engine
    }

    /// Create an engine over a pinned epoch snapshot. The borrow ties the
    /// engine's lifetime to the guard's, so the type system proves the run
    /// cannot outlive its pin — the MVCC contract ("a run reads exactly the
    /// epoch it pinned") with no runtime check on the hot path.
    pub fn for_snapshot(guard: &'g fg_graph::SnapshotGuard, config: EngineConfig) -> Self {
        ForkGraphEngine::new(guard.graph(), config)
    }

    /// [`Self::for_snapshot`] with a shared worker pool, the combination the
    /// serving layer's batcher uses for every dispatched run.
    pub fn for_snapshot_with_pool(
        guard: &'g fg_graph::SnapshotGuard,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
    ) -> Self {
        ForkGraphEngine::with_pool(guard.graph(), config, pool)
    }

    /// Attach a structured-event [`TraceSink`]: every run through this
    /// engine emits schedule-level events (run/visit spans, claims, steals,
    /// drains, yields) onto the sink's per-thread rings. The sink is also
    /// attached to the engine's worker pool (current or lazily created
    /// later) so pool-side events — dispatches, storage recycling,
    /// park/unpark — land in the same stream.
    pub fn with_trace_sink(mut self, sink: Arc<TraceSink>) -> Self {
        if let Some(pool) = self.pool.get() {
            pool.attach_trace(Arc::clone(&sink));
        }
        self.trace = Some(sink);
        self
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Emit one trace event — the `None` check *is* the disabled fast path.
    #[inline]
    pub(crate) fn emit_trace(&self, kind: EventKind, a: u32, b: u32, c: u32) {
        if let Some(trace) = &self.trace {
            trace.emit(kind, a, b, c);
        }
    }

    /// Whether a sink is attached *and currently recording*. Hot loops use
    /// this to skip computing event payloads (not just the emit itself) for
    /// detached or disabled sinks, keeping the disabled cost at one relaxed
    /// load per site.
    #[inline]
    pub(crate) fn trace_active(&self) -> bool {
        self.trace.as_ref().is_some_and(|trace| trace.is_enabled())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The worker pool this engine dispatches pool-mode runs to, if one has
    /// been attached or lazily created yet.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.get()
    }

    /// The partitioned graph this engine runs over.
    pub fn partitioned_graph(&self) -> &PartitionedGraph {
        self.pg
    }

    /// Run a batch of queries of kernel `K`, one from each source vertex.
    ///
    /// With `config.num_threads > 1` (and more than one partition) the batch
    /// is executed by the inter-partition parallel executor
    /// ([`crate::executor`]); otherwise by the paper's serial
    /// partition-at-a-time loop of the internal `run_driver` pipeline.
    pub fn run<K: FppKernel>(
        &self,
        kernel: &K,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<K::State> {
        self.run_driver(&SingleDriver(kernel), sources)
    }

    /// The run pipeline shared by every entry point: [`Self::run`] drives a
    /// monomorphized [`SingleDriver`], [`Self::run_multi`] a heterogeneous
    /// [`crate::multi::MultiDriver`]. Picks serial / spawn / pool execution
    /// exactly as before the driver seam existed.
    pub(crate) fn run_driver<D: KernelDriver>(
        &self,
        driver: &D,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<D::State> {
        let workers = self.config.resolved_threads();
        // Mode precedence: explicit config > attached pool > environment.
        let mode = match self.config.executor {
            Some(mode) => mode,
            None if self.pool.get().is_some() => ExecutorMode::Pool,
            None => ExecutorMode::from_env(),
        };
        if mode != ExecutorMode::Serial
            && workers > 1
            && self.pg.num_partitions() > 1
            && !sources.is_empty()
        {
            let pool = match mode {
                ExecutorMode::Pool => Some(self.pool.get_or_init(|| {
                    let pool = Arc::new(WorkerPool::new(crate::pool::crew_size(
                        workers,
                        self.pg.num_partitions(),
                    )));
                    if let Some(trace) = &self.trace {
                        pool.attach_trace(Arc::clone(trace));
                    }
                    pool
                })),
                _ => None,
            };
            return crate::executor::run_parallel(self, driver, sources, workers, pool);
        }
        let graph = self.pg.graph();
        let num_partitions = self.pg.num_partitions();
        let num_queries = sources.len();
        let tracer = match self.config.cache {
            Some(config) => GraphAccessTracer::new(config),
            None => GraphAccessTracer::disabled(),
        };
        let counters = WorkCounters::new();
        let watch = Stopwatch::start();
        self.emit_trace(EventKind::RunBegin, num_queries as u32, 1, 1);
        let profiling = self.config.profile;
        let mut visit_ops = Histogram::default();

        let mut buffers: Vec<PartitionBuffer<D::Value>> =
            (0..num_partitions).map(|_| PartitionBuffer::new(self.config.num_buckets)).collect();
        let states: Vec<Mutex<D::State>> =
            (0..num_queries).map(|q| Mutex::new(driver.init_state(graph, q as u32))).collect();
        let mut scheduler = Scheduler::new(self.config.scheduling);

        // InitBuffers(P, Q): seed every query (at its source, or from the
        // driver's delta frontier).
        for (q, &source) in sources.iter().enumerate() {
            driver.seed_ops(q as u32, source, &mut |vertex, value, priority| {
                let p = self.pg.partition_of(vertex) as usize;
                if buffers[p].is_empty() {
                    scheduler.stamp(&mut buffers[p]);
                }
                buffers[p].push(Operation::new(q as u32, vertex, value, priority));
                counters.add_buffered(1);
            });
        }
        let init_done = watch.elapsed();

        // Main loop: schedule a partition, drain and process its buffer.
        while let Some(p) = scheduler.next(&buffers) {
            counters.add_partition_visit();
            let p_usize = p as usize;
            let partition_edges = self.pg.partition(p).num_edges() as u64;

            let groups: Vec<(u32, Vec<Operation<D::Value>>)> = if self.config.consolidate {
                buffers[p_usize].drain_consolidated(self.config.consolidation_method)
            } else {
                group_preserving_order(buffers[p_usize].drain_unconsolidated())
            };
            if profiling || self.trace_active() {
                let total_ops: u64 = groups.iter().map(|(_, ops)| ops.len() as u64).sum();
                if profiling {
                    visit_ops.record(total_ops);
                }
                self.emit_trace(
                    EventKind::PartitionVisitBegin,
                    p,
                    total_ops.min(u32::MAX as u64) as u32,
                    groups.len() as u32,
                );
            }

            // parallel_for_each query q in the partition's buffer.
            let outcomes: Vec<VisitOutcome<D::Value>> = if groups.len() > 1 {
                groups
                    .into_par_iter()
                    .map(|(q, ops)| {
                        let mut state = states[q as usize].lock();
                        driver.process_visit(
                            self,
                            graph,
                            p,
                            q,
                            ops,
                            &mut state,
                            partition_edges,
                            num_queries,
                            &tracer,
                            &counters,
                        )
                    })
                    .collect()
            } else {
                groups
                    .into_iter()
                    .map(|(q, ops)| {
                        let mut state = states[q as usize].lock();
                        driver.process_visit(
                            self,
                            graph,
                            p,
                            q,
                            ops,
                            &mut state,
                            partition_edges,
                            num_queries,
                            &tracer,
                            &counters,
                        )
                    })
                    .collect()
            };

            // Send operations to neighbour partitions in batches (Line 16) and
            // return yielded operations to this partition's buffer.
            for outcome in outcomes {
                debug_assert!((outcome.query as usize) < num_queries);
                for op in outcome.leftover {
                    if buffers[p_usize].is_empty() {
                        scheduler.stamp(&mut buffers[p_usize]);
                    }
                    buffers[p_usize].push(op);
                    counters.add_buffered(1);
                }
                for (target, op) in outcome.remote {
                    let t = target as usize;
                    if buffers[t].is_empty() {
                        scheduler.stamp(&mut buffers[t]);
                    }
                    buffers[t].push(op);
                    counters.add_buffered(1);
                }
            }
            self.emit_trace(EventKind::PartitionVisitEnd, p, 0, 0);
        }
        let main_done = watch.elapsed();

        counters.add_queries_completed(num_queries as u64);
        let per_query: Vec<D::State> = states.into_iter().map(|m| m.into_inner()).collect();
        let measurement = self.build_measurement(watch.elapsed(), &counters, &tracer, num_queries);
        self.emit_trace(EventKind::RunEnd, num_queries as u32, 1, 1);
        let profile = profiling.then(|| {
            let work = &measurement.work;
            RunProfile {
                phases: fg_trace::PhaseTimes {
                    init: init_done,
                    processing: main_done.saturating_sub(init_done),
                    finalize: measurement.wall_time.saturating_sub(main_done),
                },
                workers: 1,
                partition_visits: work.partition_visits,
                visit_ops,
                steals_per_worker: Histogram::default(),
                steals: work.steals,
                yields: work.yields,
            }
        });
        ForkGraphRunResult { per_query, measurement, profile }
    }

    /// Assemble the [`Measurement`] of one run; shared between the serial loop
    /// and the parallel executor.
    pub(crate) fn build_measurement(
        &self,
        wall_time: Duration,
        counters: &WorkCounters,
        tracer: &GraphAccessTracer,
        num_queries: usize,
    ) -> Measurement {
        let graph = self.pg.graph();
        let num_partitions = self.pg.num_partitions();
        let cache_stats = tracer.stats();
        Measurement {
            label: "ForkGraph".to_string(),
            wall_time,
            work: counters.snapshot(),
            cache: self.config.cache.map(|_| CacheNumbers {
                accesses: cache_stats.accesses,
                loads: cache_stats.loads,
                misses: cache_stats.misses,
            }),
            memory: Some(MemoryEstimate {
                graph_bytes: graph.total_size_bytes() as u64,
                query_state_bytes: (num_queries * graph.num_vertices() * 8) as u64,
                auxiliary_bytes: (num_partitions * self.config.num_buckets * 16) as u64,
            }),
            storage: Some(fg_metrics::StorageNumbers {
                compressed_partitions: self.pg.compressed_partitions() as u64,
                total_partitions: num_partitions as u64,
                payload_bytes_raw: self.pg.payload_bytes_raw() as u64,
                payload_bytes_compressed: self.pg.payload_bytes_compressed() as u64,
                bytes_per_edge: self.pg.bytes_per_edge(),
            }),
        }
    }

    /// Process one query's consolidated operations within one partition visit.
    /// The monomorphized intra-visit hot loop shared by the serial engine,
    /// the parallel executor, and (via the erased per-visit hook
    /// [`crate::dynkernel::DynKernel::process_visit_multi`]) heterogeneous
    /// multi-kernel runs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_query_visit<K: FppKernel>(
        &self,
        kernel: &K,
        graph: &CsrGraph,
        partition: PartitionId,
        query: u32,
        ops: impl IntoIterator<Item = Operation<K::Value>>,
        state: &mut K::State,
        partition_edges: u64,
        num_queries: usize,
        tracer: &GraphAccessTracer,
        counters: &WorkCounters,
    ) -> VisitOutcome<K::Value> {
        let mut remote: Vec<(PartitionId, Operation<K::Value>)> = Vec::new();
        let mut leftover: Vec<Operation<K::Value>> = Vec::new();
        let mut checker = self.config.yield_policy.for_partition(partition_edges, num_queries);
        let mut yielded = false;

        // Adjacency for this visit: raw partitions borrow the monolithic CSR,
        // compressed partitions stream-decode their varint payload per vertex.
        let view = self.pg.adjacency_view(partition);
        if view.is_compressed() {
            self.emit_trace(EventKind::PartitionDecode, query, partition, 0);
        }

        // With consolidation the query's operations are processed in priority
        // order (a per-query priority queue); without it, in arrival order.
        let mut heap: std::collections::BinaryHeap<HeapEntry<K::Value>> =
            std::collections::BinaryHeap::new();
        let mut fifo: std::collections::VecDeque<Operation<K::Value>> =
            std::collections::VecDeque::new();
        if self.config.consolidate {
            heap.extend(ops.into_iter().map(|op| HeapEntry { op }));
        } else {
            fifo.extend(ops);
        }

        loop {
            let op =
                if self.config.consolidate { heap.pop().map(|e| e.op) } else { fifo.pop_front() };
            let Some(op) = op else { break };

            if yielded {
                leftover.push(op);
                continue;
            }
            if checker.should_yield(op.priority) {
                yielded = true;
                counters.add_yield();
                self.emit_trace(EventKind::Yield, query, partition, 0);
                leftover.push(op);
                continue;
            }

            let vertex = op.vertex;
            let mut emitted_local = 0usize;
            let edges =
                kernel.process(&view, state, vertex, op.value, &mut |t, value, priority| {
                    let new_op = Operation::new(query, t, value, priority);
                    let target_partition = self.pg.partition_of(t);
                    if target_partition == partition {
                        if self.config.consolidate {
                            heap.push(HeapEntry { op: new_op });
                        } else {
                            fifo.push_back(new_op);
                        }
                        emitted_local += 1;
                    } else {
                        remote.push((target_partition, new_op));
                    }
                });
            counters.add_operations(1);
            counters.add_edges(edges);
            checker.record_edges(edges);
            let _ = emitted_local;

            if tracer.is_enabled() {
                if edges > 0 {
                    // Compressed visits stream far fewer payload bytes per
                    // vertex than the raw CSR slice, so they are charged the
                    // (smaller) encoded byte range instead of the CSR lines.
                    if let Some((start, end)) = view.decode_byte_range(vertex) {
                        tracer.compressed_scan(partition as u64, vertex as u64, start, end);
                    } else {
                        tracer.adjacency_scan(
                            graph.adjacency_offset(vertex),
                            graph.out_degree(vertex),
                        );
                    }
                    tracer.state_write(query as usize, vertex as u64);
                    let ids: Vec<u64> = view.out_neighbors(vertex).map(|v| v as u64).collect();
                    tracer.state_read_batch(query as usize, &ids);
                } else {
                    tracer.state_read(query as usize, vertex as u64);
                }
            }
            if edges == 0 {
                counters.add_pruned(1);
            }
        }

        VisitOutcome { query, leftover, remote }
    }

    /// Run a batch of queries of a *type-erased* kernel — the entry point
    /// used by `fg-service`'s batcher so that kernels registered at runtime
    /// (including ones defined entirely outside this workspace) flow through
    /// the identical execution path as the built-ins.
    ///
    /// This is [`Self::run`] behind one virtual call: the erasure wrapper
    /// invokes `run` with its concrete kernel, so executor dispatch (serial
    /// loop / spawned crew / persistent pool), scheduling, yielding, and the
    /// pool's `TypeId`-keyed storage recycling all behave exactly as a
    /// direct generic call would. Only the returned per-query states are
    /// boxed ([`crate::dynkernel::ErasedState`]).
    pub fn run_dyn(
        &self,
        kernel: &dyn crate::dynkernel::DynKernel,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<crate::dynkernel::ErasedState> {
        kernel.run_erased(self, sources)
    }

    /// Run a **heterogeneous** batch — several kernel *groups*, each with its
    /// own erased value and state types — through **one** partition pass, so
    /// every group amortises the same LLC-resident partition sweeps. This is
    /// the engine half of the paper's "share the pass across everything in
    /// flight" ideal: an SSSP cohort and a PPR cohort waiting on the same
    /// graph no longer pay one sweep each.
    ///
    /// Each `(kernel, sources)` pair contributes one query per source.
    /// Execution is the standard internal `run_driver` pipeline over the
    /// heterogeneous driver of [`crate::multi`]: mixed-kernel operations share partition
    /// buffers and mailboxes as inline erased payloads
    /// ([`crate::operation::MultiValue8`] / [`crate::operation::MultiValue16`],
    /// picked per run by the narrowest width every group fits),
    /// scheduling and yielding see the union of all groups, and each
    /// partition visit dispatches every operation to its group's kernel. All
    /// executor modes (serial / spawn / pool) work unchanged.
    ///
    /// A single-group call is semantically [`Self::run_dyn`] (byte-identical
    /// results — property-tested in `tests/multi_equivalence.rs`), just
    /// through the erased payload path; `run_dyn` remains the cheaper
    /// monomorphized special case for one-kernel batches.
    ///
    /// # Panics
    /// Panics if a group's kernel has an operation value too large for the
    /// inline payload ([`crate::operation::MultiValue16::fits_layout`]) or if
    /// more than `u16::MAX + 1` groups are passed.
    pub fn run_multi(
        &self,
        groups: &[(&dyn crate::dynkernel::DynKernel, &[VertexId])],
    ) -> crate::multi::MultiRunResult {
        crate::multi::run_multi(self, groups)
    }

    /// Resume converged queries after a **monotone** edge delta (insertions
    /// and weight decreases) instead of recomputing from scratch.
    ///
    /// `prev[q]` must be the converged state of a `kernel` run from
    /// `sources[q]` on the pre-delta graph, and this engine must hold the
    /// *post*-delta graph. Each query is re-seeded with one operation per
    /// delta edge that can still improve something
    /// ([`IncrementalKernel::delta_seed`]); the run then converges to the
    /// exact post-delta fixpoint, byte-identical to a from-scratch run,
    /// under every executor mode.
    ///
    /// Deletions and weight increases violate the precondition — callers
    /// must detect them (e.g. via `fg_graph::mutation::AppliedDeltas::
    /// monotone`) and fall back to [`Self::run`].
    ///
    /// # Panics
    /// Panics if `prev.len() != sources.len()`.
    pub fn run_incremental<K: IncrementalKernel>(
        &self,
        kernel: &K,
        sources: &[VertexId],
        prev: Vec<K::State>,
        delta: &[Edge],
    ) -> ForkGraphRunResult<K::State> {
        assert_eq!(
            prev.len(),
            sources.len(),
            "run_incremental: {} previous states for {} sources",
            prev.len(),
            sources.len()
        );
        let mut total = 0usize;
        let seeds: Vec<Vec<(VertexId, K::Value, Priority)>> = prev
            .iter()
            .map(|state| {
                let mut per_query = Vec::new();
                for &(u, v, w) in delta {
                    if let Some((value, priority)) = kernel.delta_seed(state, u, v, w) {
                        per_query.push((v, value, priority));
                        total += 1;
                    }
                }
                per_query
            })
            .collect();
        if total == 0 {
            // No delta edge can improve any query: the previous states are
            // already the post-delta fixpoint. Short-circuit — beyond being
            // pointless, a parallel run that posts zero operations would
            // never observe quiescence.
            let counters = WorkCounters::new();
            let tracer = GraphAccessTracer::disabled();
            let measurement =
                self.build_measurement(Duration::ZERO, &counters, &tracer, sources.len());
            return ForkGraphRunResult { per_query: prev, measurement, profile: None };
        }
        let driver = IncrementalDriver {
            kernel,
            prev: prev.into_iter().map(|s| Mutex::new(Some(s))).collect(),
            seeds,
        };
        self.run_driver(&driver, sources)
    }

    // -- Convenience runners for the built-in kernels ------------------------

    /// Run SSSP queries from every source; returns per-query distance arrays.
    pub fn run_sssp(&self, sources: &[VertexId]) -> ForkGraphRunResult<Vec<Dist>> {
        self.run(&SsspKernel, sources)
    }

    /// Run BFS queries from every source; returns per-query level arrays.
    pub fn run_bfs(&self, sources: &[VertexId]) -> ForkGraphRunResult<Vec<u32>> {
        self.run(&BfsKernel, sources)
    }

    /// [`Self::run_incremental`] for the built-in SSSP kernel.
    pub fn run_sssp_incremental(
        &self,
        sources: &[VertexId],
        prev: Vec<Vec<Dist>>,
        delta: &[Edge],
    ) -> ForkGraphRunResult<Vec<Dist>> {
        self.run_incremental(&SsspKernel, sources, prev, delta)
    }

    /// [`Self::run_incremental`] for the built-in BFS kernel.
    pub fn run_bfs_incremental(
        &self,
        sources: &[VertexId],
        prev: Vec<Vec<u32>>,
        delta: &[Edge],
    ) -> ForkGraphRunResult<Vec<u32>> {
        self.run_incremental(&BfsKernel, sources, prev, delta)
    }

    /// Run PPR queries from every seed with the given parameters.
    pub fn run_ppr(
        &self,
        seeds: &[VertexId],
        config: &PprConfig,
    ) -> ForkGraphRunResult<crate::kernels::PprState> {
        self.run(&PprKernel::new(*config), seeds)
    }

    /// Run DFS-flavoured reachability queries from every source.
    pub fn run_dfs(
        &self,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<crate::kernels::dfs::DfsState> {
        self.run(&DfsKernel, sources)
    }

    /// Run random-walk queries from every source.
    pub fn run_random_walks(
        &self,
        sources: &[VertexId],
        config: &RandomWalkConfig,
    ) -> ForkGraphRunResult<crate::kernels::RwState> {
        self.run(&RandomWalkKernel::new(*config), sources)
    }
}

/// Group operations by query while preserving their arrival order within each
/// query (used when consolidation ordering is disabled).
pub(crate) fn group_preserving_order<V: Copy>(
    ops: Vec<Operation<V>>,
) -> Vec<(u32, Vec<Operation<V>>)> {
    let mut groups: Vec<(u32, Vec<Operation<V>>)> = Vec::new();
    for op in ops {
        match groups.iter_mut().find(|(q, _)| *q == op.query) {
            Some((_, list)) => list.push(op),
            None => groups.push((op.query, vec![op])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::{datasets, gen};

    fn partitioned(graph: &CsrGraph, parts: usize) -> PartitionedGraph {
        PartitionedGraph::build(
            graph,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
        )
    }

    #[test]
    fn sssp_matches_dijkstra_across_configs() {
        let g = gen::erdos_renyi(300, 2400, 11).with_random_weights(8, 11);
        let pg = partitioned(&g, 6);
        let sources: Vec<VertexId> = vec![0, 7, 33, 150];
        let oracle: Vec<Vec<Dist>> =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).dist).collect();
        for level in AblationLevel::all() {
            let engine = ForkGraphEngine::new(&pg, EngineConfig::for_ablation(level));
            let result = engine.run_sssp(&sources);
            assert_eq!(result.per_query, oracle, "{level:?}");
        }
        for policy in SchedulingPolicy::all() {
            let engine = ForkGraphEngine::new(&pg, EngineConfig::default().with_scheduling(policy));
            let result = engine.run_sssp(&sources);
            assert_eq!(result.per_query, oracle, "{policy:?}");
        }
    }

    #[test]
    fn sssp_with_value_range_yielding_is_exact() {
        let g = datasets::CA.generate_weighted(0.05);
        let pg = partitioned(&g, 8);
        let sources: Vec<VertexId> = vec![1, 50, 500];
        let oracle: Vec<Vec<Dist>> =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).dist).collect();
        let config =
            EngineConfig::default().with_yield_policy(YieldPolicy::ValueRange { delta: 8 });
        let result = ForkGraphEngine::new(&pg, config).run_sssp(&sources);
        assert_eq!(result.per_query, oracle);
        assert!(result.work().yields > 0, "value-range yielding should trigger on a road graph");
    }

    #[test]
    fn bfs_matches_sequential_bfs() {
        let g = gen::rmat(9, 6, 13);
        let pg = partitioned(&g, 5);
        let sources: Vec<VertexId> = vec![0, 9, 100];
        let oracle: Vec<Vec<u32>> =
            sources.iter().map(|&s| fg_seq::bfs::bfs(&g, s).level).collect();
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        assert_eq!(engine.run_bfs(&sources).per_query, oracle);
    }

    #[test]
    fn ppr_results_are_close_to_sequential_reference() {
        let g = gen::rmat(9, 6, 17);
        let pg = partitioned(&g, 6);
        let seeds: Vec<VertexId> = vec![3, 42];
        let config = PprConfig { epsilon: 1e-6, ..Default::default() };
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let result = engine.run_ppr(&seeds, &config);
        for (state, &seed) in result.per_query.iter().zip(seeds.iter()) {
            assert!((state.total_mass() - 1.0).abs() < 1e-9);
            let reference = fg_seq::ppr::ppr_push(&g, seed, &config).dense(g.num_vertices());
            let l1: f64 =
                state.estimate.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).sum();
            assert!(l1 < 0.05, "seed {seed}: l1 {l1}");
        }
    }

    #[test]
    fn dfs_and_random_walk_kernels_run_end_to_end() {
        let g = gen::rmat(8, 5, 19);
        let pg = partitioned(&g, 4);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let dfs = engine.run_dfs(&[0, 5]);
        let reference = fg_seq::dfs::dfs(&g, 0);
        let reached = dfs.per_query[0].order.iter().filter(|&&o| o != u32::MAX).count();
        assert_eq!(reached, reference.num_reached());
        let rw_config =
            RandomWalkConfig { num_walks: 4, walk_length: 8, restart_prob: 0.0, seed: 3 };
        let rw = engine.run_random_walks(&[0, 5], &rw_config);
        assert_eq!(rw.per_query[0].total_visits(), 4 * 9);
    }

    #[test]
    fn work_is_within_a_constant_factor_of_sequential() {
        // Theorem A.3: ForkGraph's work per query stays within a constant
        // factor of Dijkstra's; the paper measures 5.2–16.7x. Use a generous
        // bound to keep the test robust across partitionings.
        let g = datasets::CA.generate_weighted(0.08);
        let pg = partitioned(&g, 10);
        let sources: Vec<VertexId> = (0..8).map(|i| (i * 97) % g.num_vertices() as u32).collect();
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let result = engine.run_sssp(&sources);
        let sequential_edges: u64 =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).edges_processed).sum();
        let ratio = result.work().edges_processed as f64 / sequential_edges as f64;
        assert!(ratio < 30.0, "work ratio {ratio}");
    }

    #[test]
    fn yielding_reduces_work_on_road_graphs() {
        let g = datasets::CA.generate_weighted(0.05);
        let pg = partitioned(&g, 8);
        let sources: Vec<VertexId> = (0..6).map(|i| (i * 131) % g.num_vertices() as u32).collect();
        let no_yield =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_yield_policy(YieldPolicy::None))
                .run_sssp(&sources);
        let with_yield = ForkGraphEngine::new(&pg, EngineConfig::default()).run_sssp(&sources);
        assert_eq!(no_yield.per_query, with_yield.per_query);
        assert!(
            with_yield.work().edges_processed <= no_yield.work().edges_processed,
            "yielding should not increase edge work: {} vs {}",
            with_yield.work().edges_processed,
            no_yield.work().edges_processed
        );
    }

    #[test]
    fn single_partition_degenerates_to_sequential_processing() {
        let g = gen::rmat(8, 5, 23).with_random_weights(6, 23);
        let pg = partitioned(&g, 1);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let sources = vec![0, 3];
        let result = engine.run_sssp(&sources);
        assert_eq!(result.per_query[0], fg_seq::dijkstra::dijkstra(&g, 0).dist);
        assert_eq!(result.work().partition_visits, 1, "one partition, one visit");
    }

    #[test]
    fn measurement_contains_cache_and_memory_when_enabled() {
        let g = gen::rmat(8, 5, 29).with_random_weights(6, 29);
        let pg = partitioned(&g, 4);
        let config = EngineConfig::default().with_cache(fg_cachesim::CacheConfig::tiny(64 * 1024));
        let result = ForkGraphEngine::new(&pg, config).run_sssp(&[0, 1, 2]);
        let cache = result.measurement.cache.unwrap();
        assert!(cache.accesses > 0 && cache.misses > 0);
        assert!(result.measurement.memory.unwrap().total_bytes() > 0);
        assert_eq!(result.measurement.label, "ForkGraph");
    }

    #[test]
    fn per_source_pairs_results_with_their_sources() {
        let g = gen::erdos_renyi(200, 1200, 31).with_random_weights(8, 31);
        let pg = partitioned(&g, 4);
        let sources: Vec<VertexId> = vec![5, 0, 77];
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let result = engine.run_sssp(&sources);

        let paired: Vec<(VertexId, &Vec<Dist>)> = result.per_source(&sources).collect();
        assert_eq!(paired.len(), sources.len());
        for (i, &(source, dist)) in paired.iter().enumerate() {
            assert_eq!(source, sources[i]);
            assert_eq!(dist, &fg_seq::dijkstra::dijkstra(&g, source).dist);
            assert_eq!(dist[source as usize], 0, "distance to self is zero");
        }

        let owned = result.into_per_source(&sources);
        assert_eq!(owned.len(), sources.len());
        for (i, (source, dist)) in owned.into_iter().enumerate() {
            assert_eq!(source, sources[i]);
            assert_eq!(dist, fg_seq::dijkstra::dijkstra(&g, source).dist);
        }
    }

    #[test]
    #[should_panic(expected = "per_source")]
    fn per_source_rejects_mismatched_source_slice() {
        let g = gen::rmat(7, 5, 37);
        let pg = partitioned(&g, 2);
        let result = ForkGraphEngine::new(&pg, EngineConfig::default()).run_bfs(&[0, 1]);
        let _ = result.per_source(&[0]).count();
    }

    #[test]
    fn engine_handle_is_reusable_across_runs() {
        // The service layer keeps one engine alive and drives many batches
        // through it; repeated runs must be independent and deterministic.
        let g = gen::erdos_renyi(150, 900, 41).with_random_weights(8, 41);
        let pg = partitioned(&g, 3);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let first = engine.run_sssp(&[3, 9]);
        let second = engine.run_sssp(&[9]);
        let third = engine.run_sssp(&[3, 9]);
        assert_eq!(first.per_query, third.per_query);
        assert_eq!(first.per_query[1], second.per_query[0]);
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(AblationLevel::all().len(), 4);
        assert_eq!(AblationLevel::BufferOnly.label(), "+buffer");
        assert_eq!(AblationLevel::Full.label(), "+yielding");
    }
}
