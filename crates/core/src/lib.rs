//! # forkgraph-core
//!
//! The ForkGraph system: cache-efficient processing of **fork-processing
//! patterns** (FPPs) — batches of independent, homogeneous graph queries
//! launched from many source vertices on the same in-memory graph.
//!
//! The system implements the paper's buffered execution model:
//!
//! 1. The graph is divided into LLC-sized partitions
//!    ([`fg_graph::partitioned::PartitionedGraph`]).
//! 2. Each partition owns a multi-bucket [`buffer::PartitionBuffer`] holding
//!    the pending operations ⟨query, vertex, value⟩ of every query.
//! 3. The [`engine::ForkGraphEngine`] repeatedly asks the inter-partition
//!    [`sched::Scheduler`] for the next partition, consolidates that
//!    partition's buffered operations per query
//!    ([`buffer::consolidate`]), and processes every query's operations with a
//!    **sequential**, priority-ordered kernel ([`kernel::FppKernel`]) on a
//!    dedicated thread — atomic-free, because a query's state is only ever
//!    touched by one thread at a time.
//! 4. A [`yield_policy::YieldPolicy`] early-terminates a query inside a
//!    partition to avoid redundant work; operations that target other
//!    partitions are sent to their buffers in batches when the partition visit
//!    ends.
//! 5. With [`engine::EngineConfig::num_threads`] ` > 1`, the inter-partition
//!    parallel [`executor`] processes **disjoint partitions concurrently**: a
//!    worker crew claims runnable partitions (work-stealing when a worker's
//!    own set drains), routes remote operations through sharded, lock-striped
//!    mailboxes, and quiesces via an ops-in-flight counter. Serial mode stays
//!    the default for ablation parity. The crew's threads come from a
//!    persistent [`pool::WorkerPool`] by default (spawned once, parked
//!    between runs, per-run storage recycled); per-run scoped spawning
//!    remains available as [`engine::ExecutorMode::Spawn`].
//!
//! 6. [`engine::ForkGraphEngine::run_multi`] generalises a run to a
//!    **heterogeneous** set of kernel groups: mixed-kernel operations share
//!    the partition buffers and mailboxes as inline type-erased
//!    [`operation::MultiValue8`]/[`operation::MultiValue16`] payloads, so
//!    concurrent cohorts of
//!    *different* query types amortise one shared partition pass instead of
//!    sweeping the graph once each ([`multi`]).
//!
//! Built-in kernels cover the query types of the paper: SSSP, BFS, DFS, PPR,
//! and random walks ([`kernels`]). Applications (BC, NCP, LL) live in the
//! `fg-apps` crate.
//!
//! Every layer is instrumented for the `fg-trace` event subsystem: attach a
//! [`fg_trace::TraceSink`] with [`engine::ForkGraphEngine::with_trace_sink`]
//! to record run/visit/claim/steal/park events, or set
//! [`engine::EngineConfig::profile`] to get a per-run
//! [`fg_trace::RunProfile`] on the result without any sink.

pub mod buffer;
pub mod dynkernel;
pub mod engine;
pub mod executor;
pub mod kernel;
pub mod kernels;
pub mod multi;
pub mod operation;
pub mod pool;
pub mod sched;
pub mod yield_policy;

pub use buffer::PartitionBuffer;
pub use dynkernel::{erase, DynKernel, ErasedState, MultiHooks, MultiKernelHooks};
pub use engine::{AblationLevel, EngineConfig, ExecutorMode, ForkGraphEngine, ForkGraphRunResult};
pub use kernel::{FppKernel, IncrementalKernel};
pub use multi::MultiRunResult;
pub use operation::{ErasedPayload, MultiValue16, MultiValue8, Operation, Priority};
pub use pool::WorkerPool;
pub use sched::{SchedKey, SchedulingPolicy};
pub use yield_policy::YieldPolicy;
