//! Inter-partition scheduling (Section 5.2 of the paper).
//!
//! When a partition visit finishes, the scheduler picks the next partition with
//! a non-empty buffer. Four policies are provided, matching Table 4A:
//!
//! * [`SchedulingPolicy::Random`] — an arbitrary non-empty partition,
//! * [`SchedulingPolicy::MaxOperations`] — the partition with the most
//!   buffered operations (GraphM-style; cache friendly but work inefficient),
//! * [`SchedulingPolicy::Fifo`] — partitions in the order their buffers became
//!   non-empty (the default when no priority functor is supplied),
//! * [`SchedulingPolicy::Priority`] — the partition whose best buffered
//!   operation has the highest priority (lowest value), the paper's default.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fg_graph::partition::PartitionId;

use crate::buffer::PartitionBuffer;
use crate::operation::Priority;

/// A scheduler's view of one candidate partition's pending work: the metadata
/// every policy of Table 4A needs to rank candidates. Produced by the serial
/// engine's [`PartitionBuffer`] ([`PartitionBuffer::sched_key`]) and by the
/// parallel executor's mailboxes, so both execution modes share one selection
/// rule ([`select_by_policy`]).
#[derive(Clone, Copy, Debug)]
pub struct SchedKey {
    /// Number of pending operations.
    pub len: usize,
    /// Best (lowest) pending priority, `Priority::MAX` when unknown/empty.
    pub priority: Priority,
    /// Tick at which the partition last became runnable (FIFO order).
    pub stamp: u64,
}

impl<V: Copy> PartitionBuffer<V> {
    /// This buffer's scheduling metadata.
    pub fn sched_key(&self) -> SchedKey {
        SchedKey { len: self.len(), priority: self.min_priority(), stamp: self.fifo_stamp }
    }
}

/// Apply `policy` to `num_candidates` candidate partitions (metadata for
/// position `i` resolved through `key_of(i)`), returning the winning
/// *position* in `0..num_candidates`, or `None` when there are no candidates.
///
/// Positional (rather than slice-based) so callers holding a lock over their
/// candidate list — the executor picks from a mutex-guarded runnable set —
/// can select without copying the list out first.
///
/// This is the single selection rule of Table 4A, shared by the serial
/// [`Scheduler`] and every worker of the parallel executor.
pub fn select_by_policy(
    policy: SchedulingPolicy,
    rng: &mut SmallRng,
    num_candidates: usize,
    key_of: impl Fn(usize) -> SchedKey,
) -> Option<usize> {
    if num_candidates == 0 {
        return None;
    }
    let pos = match policy {
        SchedulingPolicy::Random { .. } => rng.gen_range(0..num_candidates),
        SchedulingPolicy::MaxOperations => {
            (0..num_candidates).max_by_key(|&i| key_of(i).len).expect("non-empty")
        }
        SchedulingPolicy::Fifo => {
            (0..num_candidates).min_by_key(|&i| key_of(i).stamp).expect("non-empty")
        }
        SchedulingPolicy::Priority => {
            (0..num_candidates).min_by_key(|&i| key_of(i).priority).expect("non-empty")
        }
    };
    Some(pos)
}

/// Inter-partition scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulingPolicy {
    /// Pick an arbitrary non-empty partition.
    Random {
        /// RNG seed, for reproducibility.
        seed: u64,
    },
    /// Pick the partition with the most buffered operations.
    MaxOperations,
    /// Pick partitions in the order their buffers became non-empty.
    Fifo,
    /// Pick the partition with the best (lowest) buffered priority.
    #[default]
    Priority,
}

impl SchedulingPolicy {
    /// All policies, for the Table 4A sweep.
    pub fn all() -> [SchedulingPolicy; 4] {
        [
            SchedulingPolicy::Random { seed: 7 },
            SchedulingPolicy::MaxOperations,
            SchedulingPolicy::Fifo,
            SchedulingPolicy::Priority,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::Random { .. } => "random",
            SchedulingPolicy::MaxOperations => "max-operations",
            SchedulingPolicy::Fifo => "fifo",
            SchedulingPolicy::Priority => "priority",
        }
    }
}

/// Scheduler state: picks the next partition to process.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedulingPolicy,
    rng: SmallRng,
    /// Monotonically increasing stamp handed to buffers as they become
    /// non-empty, so FIFO order can be recovered.
    next_stamp: u64,
}

impl Scheduler {
    /// Create a scheduler with the given policy.
    pub fn new(policy: SchedulingPolicy) -> Self {
        let seed = match policy {
            SchedulingPolicy::Random { seed } => seed,
            _ => 0,
        };
        Scheduler { policy, rng: SmallRng::seed_from_u64(seed), next_stamp: 1 }
    }

    /// The policy in use.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Stamp a buffer that just transitioned from empty to non-empty
    /// (used by the FIFO policy).
    pub fn stamp<V: Copy>(&mut self, buffer: &mut PartitionBuffer<V>) {
        buffer.fifo_stamp = self.next_stamp;
        self.next_stamp += 1;
    }

    /// Select the next partition among those with non-empty buffers.
    /// Returns `None` when every buffer is empty (the FPP has converged).
    pub fn next<V: Copy>(&mut self, buffers: &[PartitionBuffer<V>]) -> Option<PartitionId> {
        let non_empty: Vec<usize> =
            buffers.iter().enumerate().filter(|(_, b)| !b.is_empty()).map(|(i, _)| i).collect();
        let pos = select_by_policy(self.policy, &mut self.rng, non_empty.len(), |i| {
            buffers[non_empty[i]].sched_key()
        })?;
        Some(non_empty[pos] as PartitionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;

    fn buffer_with(ops: &[(u32, u64)]) -> PartitionBuffer<u64> {
        let mut b = PartitionBuffer::new(4);
        for &(q, p) in ops {
            b.push(Operation::new(q, q, p, p));
        }
        b
    }

    #[test]
    fn returns_none_when_all_buffers_empty() {
        let buffers: Vec<PartitionBuffer<u64>> =
            vec![PartitionBuffer::new(2), PartitionBuffer::new(2)];
        let mut s = Scheduler::new(SchedulingPolicy::Priority);
        assert_eq!(s.next(&buffers), None);
    }

    #[test]
    fn priority_picks_partition_with_best_operation() {
        let buffers = vec![
            buffer_with(&[(0, 50), (1, 40)]),
            buffer_with(&[(0, 5)]),
            buffer_with(&[(2, 20), (3, 90)]),
        ];
        let mut s = Scheduler::new(SchedulingPolicy::Priority);
        assert_eq!(s.next(&buffers), Some(1));
    }

    #[test]
    fn max_operations_picks_largest_buffer() {
        let buffers = vec![
            buffer_with(&[(0, 1)]),
            buffer_with(&[(0, 99), (1, 99), (2, 99)]),
            PartitionBuffer::new(2),
        ];
        let mut s = Scheduler::new(SchedulingPolicy::MaxOperations);
        assert_eq!(s.next(&buffers), Some(1));
    }

    #[test]
    fn fifo_respects_stamp_order() {
        let mut s = Scheduler::new(SchedulingPolicy::Fifo);
        let mut b0 = buffer_with(&[(0, 9)]);
        let mut b1 = buffer_with(&[(0, 1)]);
        // b1 became non-empty first.
        s.stamp(&mut b1);
        s.stamp(&mut b0);
        let buffers = vec![b0, b1];
        assert_eq!(s.next(&buffers), Some(1));
    }

    #[test]
    fn random_is_deterministic_given_seed_and_always_valid() {
        let buffers = vec![
            buffer_with(&[(0, 1)]),
            PartitionBuffer::new(2),
            buffer_with(&[(1, 2)]),
            buffer_with(&[(2, 3)]),
        ];
        let picks_a: Vec<_> = {
            let mut s = Scheduler::new(SchedulingPolicy::Random { seed: 11 });
            (0..20).map(|_| s.next(&buffers).unwrap()).collect()
        };
        let picks_b: Vec<_> = {
            let mut s = Scheduler::new(SchedulingPolicy::Random { seed: 11 });
            (0..20).map(|_| s.next(&buffers).unwrap()).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&p| p != 1), "never picks an empty partition");
    }

    #[test]
    fn select_by_policy_matches_metadata_semantics() {
        let keys = [
            SchedKey { len: 3, priority: 50, stamp: 9 },
            SchedKey { len: 1, priority: 5, stamp: 2 },
            SchedKey { len: 7, priority: 20, stamp: 4 },
        ];
        let key_of = |i: usize| keys[i];
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            select_by_policy(SchedulingPolicy::Priority, &mut rng, keys.len(), key_of),
            Some(1)
        );
        assert_eq!(
            select_by_policy(SchedulingPolicy::MaxOperations, &mut rng, keys.len(), key_of),
            Some(2)
        );
        assert_eq!(select_by_policy(SchedulingPolicy::Fifo, &mut rng, keys.len(), key_of), Some(1));
        let pick =
            select_by_policy(SchedulingPolicy::Random { seed: 3 }, &mut rng, keys.len(), key_of);
        assert!(pick.is_some_and(|p| p < keys.len()));
        assert_eq!(select_by_policy(SchedulingPolicy::Priority, &mut rng, 0, key_of), None);
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(SchedulingPolicy::all().len(), 4);
        assert_eq!(SchedulingPolicy::Priority.name(), "priority");
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::Priority);
        assert_eq!(Scheduler::new(SchedulingPolicy::Fifo).policy(), SchedulingPolicy::Fifo);
    }
}
