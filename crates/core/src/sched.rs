//! Inter-partition scheduling (Section 5.2 of the paper).
//!
//! When a partition visit finishes, the scheduler picks the next partition with
//! a non-empty buffer. Four policies are provided, matching Table 4A:
//!
//! * [`SchedulingPolicy::Random`] — an arbitrary non-empty partition,
//! * [`SchedulingPolicy::MaxOperations`] — the partition with the most
//!   buffered operations (GraphM-style; cache friendly but work inefficient),
//! * [`SchedulingPolicy::Fifo`] — partitions in the order their buffers became
//!   non-empty (the default when no priority functor is supplied),
//! * [`SchedulingPolicy::Priority`] — the partition whose best buffered
//!   operation has the highest priority (lowest value), the paper's default.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fg_graph::partition::PartitionId;

use crate::buffer::PartitionBuffer;

/// Inter-partition scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulingPolicy {
    /// Pick an arbitrary non-empty partition.
    Random {
        /// RNG seed, for reproducibility.
        seed: u64,
    },
    /// Pick the partition with the most buffered operations.
    MaxOperations,
    /// Pick partitions in the order their buffers became non-empty.
    Fifo,
    /// Pick the partition with the best (lowest) buffered priority.
    #[default]
    Priority,
}

impl SchedulingPolicy {
    /// All policies, for the Table 4A sweep.
    pub fn all() -> [SchedulingPolicy; 4] {
        [
            SchedulingPolicy::Random { seed: 7 },
            SchedulingPolicy::MaxOperations,
            SchedulingPolicy::Fifo,
            SchedulingPolicy::Priority,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::Random { .. } => "random",
            SchedulingPolicy::MaxOperations => "max-operations",
            SchedulingPolicy::Fifo => "fifo",
            SchedulingPolicy::Priority => "priority",
        }
    }
}

/// Scheduler state: picks the next partition to process.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedulingPolicy,
    rng: SmallRng,
    /// Monotonically increasing stamp handed to buffers as they become
    /// non-empty, so FIFO order can be recovered.
    next_stamp: u64,
}

impl Scheduler {
    /// Create a scheduler with the given policy.
    pub fn new(policy: SchedulingPolicy) -> Self {
        let seed = match policy {
            SchedulingPolicy::Random { seed } => seed,
            _ => 0,
        };
        Scheduler { policy, rng: SmallRng::seed_from_u64(seed), next_stamp: 1 }
    }

    /// The policy in use.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Stamp a buffer that just transitioned from empty to non-empty
    /// (used by the FIFO policy).
    pub fn stamp<V: Copy>(&mut self, buffer: &mut PartitionBuffer<V>) {
        buffer.fifo_stamp = self.next_stamp;
        self.next_stamp += 1;
    }

    /// Select the next partition among those with non-empty buffers.
    /// Returns `None` when every buffer is empty (the FPP has converged).
    pub fn next<V: Copy>(&mut self, buffers: &[PartitionBuffer<V>]) -> Option<PartitionId> {
        let non_empty: Vec<usize> =
            buffers.iter().enumerate().filter(|(_, b)| !b.is_empty()).map(|(i, _)| i).collect();
        if non_empty.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            SchedulingPolicy::Random { .. } => non_empty[self.rng.gen_range(0..non_empty.len())],
            SchedulingPolicy::MaxOperations => {
                *non_empty.iter().max_by_key(|&&i| buffers[i].len()).expect("non-empty")
            }
            SchedulingPolicy::Fifo => {
                *non_empty.iter().min_by_key(|&&i| buffers[i].fifo_stamp).expect("non-empty")
            }
            SchedulingPolicy::Priority => {
                *non_empty.iter().min_by_key(|&&i| buffers[i].min_priority()).expect("non-empty")
            }
        };
        Some(chosen as PartitionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;

    fn buffer_with(ops: &[(u32, u64)]) -> PartitionBuffer<u64> {
        let mut b = PartitionBuffer::new(4);
        for &(q, p) in ops {
            b.push(Operation::new(q, q, p, p));
        }
        b
    }

    #[test]
    fn returns_none_when_all_buffers_empty() {
        let buffers: Vec<PartitionBuffer<u64>> =
            vec![PartitionBuffer::new(2), PartitionBuffer::new(2)];
        let mut s = Scheduler::new(SchedulingPolicy::Priority);
        assert_eq!(s.next(&buffers), None);
    }

    #[test]
    fn priority_picks_partition_with_best_operation() {
        let buffers = vec![
            buffer_with(&[(0, 50), (1, 40)]),
            buffer_with(&[(0, 5)]),
            buffer_with(&[(2, 20), (3, 90)]),
        ];
        let mut s = Scheduler::new(SchedulingPolicy::Priority);
        assert_eq!(s.next(&buffers), Some(1));
    }

    #[test]
    fn max_operations_picks_largest_buffer() {
        let buffers = vec![
            buffer_with(&[(0, 1)]),
            buffer_with(&[(0, 99), (1, 99), (2, 99)]),
            PartitionBuffer::new(2),
        ];
        let mut s = Scheduler::new(SchedulingPolicy::MaxOperations);
        assert_eq!(s.next(&buffers), Some(1));
    }

    #[test]
    fn fifo_respects_stamp_order() {
        let mut s = Scheduler::new(SchedulingPolicy::Fifo);
        let mut b0 = buffer_with(&[(0, 9)]);
        let mut b1 = buffer_with(&[(0, 1)]);
        // b1 became non-empty first.
        s.stamp(&mut b1);
        s.stamp(&mut b0);
        let buffers = vec![b0, b1];
        assert_eq!(s.next(&buffers), Some(1));
    }

    #[test]
    fn random_is_deterministic_given_seed_and_always_valid() {
        let buffers = vec![
            buffer_with(&[(0, 1)]),
            PartitionBuffer::new(2),
            buffer_with(&[(1, 2)]),
            buffer_with(&[(2, 3)]),
        ];
        let picks_a: Vec<_> = {
            let mut s = Scheduler::new(SchedulingPolicy::Random { seed: 11 });
            (0..20).map(|_| s.next(&buffers).unwrap()).collect()
        };
        let picks_b: Vec<_> = {
            let mut s = Scheduler::new(SchedulingPolicy::Random { seed: 11 });
            (0..20).map(|_| s.next(&buffers).unwrap()).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&p| p != 1), "never picks an empty partition");
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(SchedulingPolicy::all().len(), 4);
        assert_eq!(SchedulingPolicy::Priority.name(), "priority");
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::Priority);
        assert_eq!(Scheduler::new(SchedulingPolicy::Fifo).policy(), SchedulingPolicy::Fifo);
    }
}
