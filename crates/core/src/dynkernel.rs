//! Type-erased kernels: run *any* [`FppKernel`] behind one object-safe
//! interface.
//!
//! [`FppKernel`] is generic over its operation `Value` and per-query `State`,
//! which is exactly right for the engine's hot loop (operations stay unboxed
//! `Copy` values, states stay dense arrays) but wrong for an *open* system:
//! a serving layer that wants to dispatch "whatever kernel this query names"
//! cannot be generic over every kernel its clients might register. This
//! module closes the gap with an erasure layer:
//!
//! * [`DynKernel`] is the object-safe view of a kernel: a name, the
//!   [`TypeId`]s of its value/state types (diagnostics and arena keying),
//!   and [`DynKernel::run_erased`] — run a batch through an engine and hand
//!   back the per-query states as [`ErasedState`]s.
//! * [`erase`] wraps any concrete [`FppKernel`] into an `Arc<dyn DynKernel>`.
//!   The wrapper calls [`ForkGraphEngine::run`] with the *concrete* kernel,
//!   so the entire execution path — serial loop, spawn executor, persistent
//!   [`pool::WorkerPool`](crate::pool::WorkerPool) with its `TypeId`-keyed
//!   recycle arena — is the monomorphized code the direct API uses. Erasure
//!   happens only at the two edges of a run: one virtual call going in, one
//!   `Arc::new` per query state coming out. Results are therefore
//!   *byte-identical* to the direct generic path, and the overhead is
//!   O(queries), not O(operations).
//!
//! `fg-service`'s `KernelRegistry` is built on this: registered kernels are
//! `Arc<dyn DynKernel>`s, so micro-batching, admission control, and result
//! caching work for kernels the service crates have never heard of.

use std::any::{Any, TypeId};
use std::sync::Arc;

use fg_graph::VertexId;

use crate::engine::{ForkGraphEngine, ForkGraphRunResult};
use crate::kernel::FppKernel;

/// One query's type-erased final state, as produced by
/// [`DynKernel::run_erased`]. Downcast it to the kernel's concrete
/// [`FppKernel::State`] with [`Arc::downcast`] (shared) or
/// `downcast_ref` (borrowed).
pub type ErasedState = Arc<dyn Any + Send + Sync>;

/// Object-safe, type-erased view of an [`FppKernel`] (plus the engine loop
/// that drives it). See the [module docs](self) for the design.
pub trait DynKernel: Send + Sync {
    /// Kernel name (the concrete kernel's [`FppKernel::name`]).
    fn name(&self) -> &str;

    /// [`TypeId`] of the concrete [`FppKernel::Value`]. A persistent
    /// [`WorkerPool`](crate::pool::WorkerPool) keys its mailbox recycle
    /// arena by this, so two erased kernels sharing a value type also share
    /// recycled per-run storage.
    fn value_type(&self) -> TypeId;

    /// [`TypeId`] of the concrete [`FppKernel::State`] behind the
    /// [`ErasedState`]s this kernel produces.
    fn state_type(&self) -> TypeId;

    /// Human-readable name of the state type, for downcast error messages.
    fn state_type_name(&self) -> &'static str;

    /// Relative per-query work weight a serving layer should assume when
    /// sizing a worker crew for a batch of these queries (the concrete
    /// kernel's [`FppKernel::batch_weight`]). `1.0` is a built-in-style
    /// traversal; lower values bias batches toward smaller crews.
    fn batch_weight(&self) -> f64;

    /// Run one batch (one query per source) through `engine`, returning the
    /// per-query final states type-erased. Equivalent to
    /// [`ForkGraphEngine::run`] with the concrete kernel — same executor
    /// dispatch (serial / spawn / pool), same results — followed by one
    /// `Arc::new` per state.
    fn run_erased(
        &self,
        engine: &ForkGraphEngine<'_>,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<ErasedState>;
}

/// The blanket erasure wrapper behind [`erase`].
struct ErasedFpp<K>(K);

impl<K> DynKernel for ErasedFpp<K>
where
    K: FppKernel + Send + 'static,
    K::State: Sync + 'static,
{
    fn name(&self) -> &str {
        self.0.name()
    }

    fn value_type(&self) -> TypeId {
        TypeId::of::<K::Value>()
    }

    fn state_type(&self) -> TypeId {
        TypeId::of::<K::State>()
    }

    fn state_type_name(&self) -> &'static str {
        std::any::type_name::<K::State>()
    }

    fn batch_weight(&self) -> f64 {
        self.0.batch_weight()
    }

    fn run_erased(
        &self,
        engine: &ForkGraphEngine<'_>,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<ErasedState> {
        let ForkGraphRunResult { per_query, measurement } = engine.run(&self.0, sources);
        ForkGraphRunResult {
            per_query: per_query.into_iter().map(|state| Arc::new(state) as ErasedState).collect(),
            measurement,
        }
    }
}

/// Erase a concrete kernel into a shareable [`DynKernel`] handle.
///
/// The extra bounds over [`FppKernel`]'s own (`Send` on the kernel, `Sync +
/// 'static` on the state) are what sharing the kernel across service threads
/// and sharing its results through `Arc`s requires; every built-in kernel
/// satisfies them, and custom kernels holding only owned data do too.
pub fn erase<K>(kernel: K) -> Arc<dyn DynKernel>
where
    K: FppKernel + Send + 'static,
    K::State: Sync + 'static,
{
    Arc::new(ErasedFpp(kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::partitioned::PartitionedGraph;
    use fg_graph::{gen, CsrGraph, Dist};

    use crate::engine::{EngineConfig, ExecutorMode};
    use crate::kernels::SsspKernel;
    use crate::operation::Priority;

    /// A kernel that exists only in this test module: hop counts capped at a
    /// fixed radius. Monotone (min-relaxation on hop count), so every
    /// executor mode reaches the same fixpoint byte-identically.
    struct RadiusKernel {
        radius: u32,
    }

    impl FppKernel for RadiusKernel {
        type Value = u32;
        type State = Vec<u32>;

        fn name(&self) -> &'static str {
            "radius"
        }

        fn init_state(&self, graph: &CsrGraph) -> Self::State {
            vec![u32::MAX; graph.num_vertices()]
        }

        fn source_op(&self, _source: fg_graph::VertexId) -> (Self::Value, Priority) {
            (0, 0)
        }

        fn process(
            &self,
            graph: &CsrGraph,
            state: &mut Self::State,
            vertex: fg_graph::VertexId,
            value: Self::Value,
            emit: &mut dyn FnMut(fg_graph::VertexId, Self::Value, Priority),
        ) -> u64 {
            if value >= state[vertex as usize] {
                return 0;
            }
            state[vertex as usize] = value;
            if value >= self.radius {
                return 0;
            }
            let mut edges = 0u64;
            for &t in graph.out_neighbors(vertex) {
                edges += 1;
                if value + 1 < state[t as usize] {
                    emit(t, value + 1, (value + 1) as u64);
                }
            }
            edges
        }

        fn batch_weight(&self) -> f64 {
            0.5
        }
    }

    fn partitioned(parts: usize) -> (CsrGraph, PartitionedGraph) {
        let g = gen::rmat(9, 6, 51).with_random_weights(8, 51);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
        );
        (g, pg)
    }

    #[test]
    fn erased_builtin_matches_direct_run_byte_for_byte() {
        let (_, pg) = partitioned(6);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let sources = [0u32, 9, 42, 200];
        let direct = engine.run_sssp(&sources);
        let erased = erase(SsspKernel);
        let dyn_result = engine.run_dyn(&*erased, &sources);
        assert_eq!(dyn_result.per_query.len(), direct.per_query.len());
        for (erased_state, direct_state) in dyn_result.per_query.iter().zip(&direct.per_query) {
            let state = erased_state.downcast_ref::<Vec<Dist>>().expect("SSSP state is Vec<Dist>");
            assert_eq!(state, direct_state);
        }
    }

    #[test]
    fn erased_kernel_reports_its_types_and_weight() {
        let erased = erase(RadiusKernel { radius: 3 });
        assert_eq!(erased.name(), "radius");
        assert_eq!(erased.value_type(), TypeId::of::<u32>());
        assert_eq!(erased.state_type(), TypeId::of::<Vec<u32>>());
        assert!(erased.state_type_name().contains("Vec<u32>"));
        assert!((erased.batch_weight() - 0.5).abs() < 1e-12);
        // Built-ins keep the default weight.
        assert!((erase(SsspKernel).batch_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_erased_kernel_is_identical_across_executor_modes() {
        let (_, pg) = partitioned(8);
        let sources = [0u32, 3, 77, 140];
        let kernel = erase(RadiusKernel { radius: 4 });
        let serial =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_executor(ExecutorMode::Serial))
                .run_dyn(&*kernel, &sources);
        for mode in [ExecutorMode::Spawn, ExecutorMode::Pool] {
            let config = EngineConfig::default().with_threads(3).with_executor(mode);
            let engine = ForkGraphEngine::new(&pg, config);
            let parallel = engine.run_dyn(&*kernel, &sources);
            for (a, b) in serial.per_query.iter().zip(&parallel.per_query) {
                assert_eq!(
                    a.downcast_ref::<Vec<u32>>().unwrap(),
                    b.downcast_ref::<Vec<u32>>().unwrap(),
                    "{mode:?}"
                );
            }
            if mode == ExecutorMode::Pool {
                let pool = engine.worker_pool().expect("pool-mode run created a pool");
                assert!(pool.metrics().dispatches >= 1, "custom kernel ran through the pool");
            }
        }
    }

    #[test]
    fn erased_states_are_shareable_and_downcast_checked() {
        let (_, pg) = partitioned(4);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let kernel = erase(RadiusKernel { radius: 2 });
        let result = engine.run_dyn(&*kernel, &[5]);
        let state = Arc::clone(&result.per_query[0]);
        // Correct type: shared downcast succeeds.
        let hops: Arc<Vec<u32>> = Arc::downcast(state).expect("state is Vec<u32>");
        assert_eq!(hops[5], 0);
        // Wrong type: downcast refuses instead of transmuting.
        assert!(result.per_query[0].downcast_ref::<Vec<Dist>>().is_none());
    }
}
