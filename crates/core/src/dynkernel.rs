//! Type-erased kernels: run *any* [`FppKernel`] behind one object-safe
//! interface.
//!
//! [`FppKernel`] is generic over its operation `Value` and per-query `State`,
//! which is exactly right for the engine's hot loop (operations stay unboxed
//! `Copy` values, states stay dense arrays) but wrong for an *open* system:
//! a serving layer that wants to dispatch "whatever kernel this query names"
//! cannot be generic over every kernel its clients might register. This
//! module closes the gap with an erasure layer:
//!
//! * [`DynKernel`] is the object-safe view of a kernel: a name, the
//!   [`TypeId`]s of its value/state types (diagnostics and arena keying),
//!   and [`DynKernel::run_erased`] — run a batch through an engine and hand
//!   back the per-query states as [`ErasedState`]s.
//! * [`erase`] wraps any concrete [`FppKernel`] into an `Arc<dyn DynKernel>`.
//!   The wrapper calls [`ForkGraphEngine::run`] with the *concrete* kernel,
//!   so the entire execution path — serial loop, spawn executor, persistent
//!   [`pool::WorkerPool`](crate::pool::WorkerPool) with its `TypeId`-keyed
//!   recycle arena — is the monomorphized code the direct API uses. Erasure
//!   happens only at the two edges of a run: one virtual call going in, one
//!   `Arc::new` per query state coming out. Results are therefore
//!   *byte-identical* to the direct generic path, and the overhead is
//!   O(queries), not O(operations).
//!
//! `fg-service`'s `KernelRegistry` is built on this: registered kernels are
//! `Arc<dyn DynKernel>`s, so micro-batching, admission control, and result
//! caching work for kernels the service crates have never heard of.

use std::any::{Any, TypeId};
use std::sync::Arc;

use fg_graph::{CsrGraph, VertexId};

use crate::engine::{ForkGraphEngine, ForkGraphRunResult};
use crate::kernel::FppKernel;
use crate::operation::{ErasedPayload, MultiValue16, MultiValue8, Operation, PayloadOps, Priority};

/// One query's type-erased final state, as produced by
/// [`DynKernel::run_erased`]. Downcast it to the kernel's concrete
/// [`FppKernel::State`] with [`Arc::downcast`] (shared) or
/// `downcast_ref` (borrowed).
pub type ErasedState = Arc<dyn Any + Send + Sync>;

/// Object-safe, type-erased view of an [`FppKernel`] (plus the engine loop
/// that drives it). See the [module docs](self) for the design.
pub trait DynKernel: Send + Sync {
    /// Kernel name (the concrete kernel's [`FppKernel::name`]).
    fn name(&self) -> &str;

    /// [`TypeId`] of the concrete [`FppKernel::Value`]. A persistent
    /// [`WorkerPool`](crate::pool::WorkerPool) keys its mailbox recycle
    /// arena by this, so two erased kernels sharing a value type also share
    /// recycled per-run storage.
    fn value_type(&self) -> TypeId;

    /// [`TypeId`] of the concrete [`FppKernel::State`] behind the
    /// [`ErasedState`]s this kernel produces.
    fn state_type(&self) -> TypeId;

    /// Human-readable name of the state type, for downcast error messages.
    fn state_type_name(&self) -> &'static str;

    /// Relative per-query work weight a serving layer should assume when
    /// sizing a worker crew for a batch of these queries (the concrete
    /// kernel's [`FppKernel::batch_weight`]). `1.0` is a built-in-style
    /// traversal; lower values bias batches toward smaller crews.
    fn batch_weight(&self) -> f64;

    /// Run one batch (one query per source) through `engine`, returning the
    /// per-query final states type-erased. Equivalent to
    /// [`ForkGraphEngine::run`] with the concrete kernel — same executor
    /// dispatch (serial / spawn / pool), same results — followed by one
    /// `Arc::new` per state.
    fn run_erased(
        &self,
        engine: &ForkGraphEngine<'_>,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<ErasedState>;

    /// The kernel's heterogeneous-run hook objects, if it can join a
    /// [`ForkGraphEngine::run_multi`] pass: `None` (the default, and the
    /// only option for hand-written implementations — [`MultiKernelHooks`]
    /// is sealed) keeps the kernel out of mixed runs, so serving layers run
    /// it in its own single-kernel pass. [`erase`] returns `Some` whenever
    /// the concrete [`FppKernel::Value`] fits the wide ([`MultiValue16`])
    /// inline payload. A wrapper `DynKernel` that owns another erased
    /// kernel may *delegate* by forwarding the whole [`MultiHooks`] bundle —
    /// never by re-implementing individual hooks, which is exactly what the
    /// seal exists to prevent (one hook object pairs every erased write
    /// with the matching typed read).
    fn multi(&self) -> Option<MultiHooks<'_>> {
        None
    }
}

/// A kernel's width-specific hook objects for heterogeneous runs, returned
/// by [`DynKernel::multi`]. Opaque outside this crate: external code can
/// only forward the bundle, which is what keeps the two widths' erased
/// writes and reads paired per kernel.
///
/// [`ForkGraphEngine::run_multi`] drives a whole run on **one** payload
/// width — [`MultiValue8`] when every group's kernel offers `narrow`
/// (operations stay as small as native `u64`-valued ones), [`MultiValue16`]
/// otherwise — so a run never pays for width it doesn't use.
#[derive(Clone, Copy)]
pub struct MultiHooks<'a> {
    /// Present iff the kernel's value fits 8 bytes.
    pub(crate) narrow: Option<&'a dyn MultiKernelHooks<MultiValue8>>,
    /// Present for every multi-capable kernel (values ≤ 16 bytes).
    pub(crate) wide: &'a dyn MultiKernelHooks<MultiValue16>,
}

/// Private supertrait sealing [`MultiKernelHooks`] to this crate.
mod sealed {
    pub trait SealedMultiHooks {}
}

/// One kernel group's hooks inside a heterogeneous
/// [`ForkGraphEngine::run_multi`] pass on payload width `P`, obtained via
/// [`DynKernel::multi`].
///
/// **Sealed** — implemented only by [`erase`]'s wrapper. The seal is the
/// soundness argument for the payloads' unchecked (in release builds)
/// inline erasure: every payload of a query group is written
/// ([`Self::source_op_multi`], re-erasure of visit leftovers) and read
/// (de-erasure in [`Self::process_visit_multi`]) by one wrapper around one
/// concrete [`FppKernel`], so the bytes always round-trip through the same
/// `Value` type; external code can pass hook objects along but never
/// interleave two kernels' erased values.
pub trait MultiKernelHooks<P: ErasedPayload>: Send + Sync + sealed::SealedMultiHooks {
    /// Allocate one query's initial state, boxed for the multi-run state
    /// table. The concrete type behind the box is [`FppKernel::State`] (what
    /// [`Self::process_visit_multi`] downcasts to, and what the run's
    /// [`ErasedState`]s wrap on completion).
    fn init_state_any(&self, graph: &CsrGraph) -> Box<dyn Any + Send + Sync>;

    /// The erased operation seeding one of this group's queries at `source`.
    fn source_op_multi(&self, source: VertexId) -> (P, Priority);

    /// Process one of this group's queries' consolidated operations within
    /// one partition visit: downcast `state`, de-erase `ops` to the concrete
    /// [`FppKernel::Value`] **once**, run the engine's monomorphized visit
    /// loop ([`crate::multi::MultiVisit::process_native`] — priority
    /// ordering, yielding, tracing, counters, exactly as a single-kernel
    /// run), and re-erase the outcome's leftover/remote operations.
    /// Visit-granularity erasure is what keeps mixed runs near native
    /// speed: the per-edge hot loop never crosses a virtual call, and
    /// erasure costs two value conversions per operation lifetime.
    fn process_visit_multi(
        &self,
        visit: &crate::multi::MultiVisit<'_, '_>,
        query: u32,
        ops: Vec<crate::operation::Operation<P>>,
        state: &mut dyn Any,
    ) -> crate::engine::VisitOutcome<P>;
}

/// The blanket erasure wrapper behind [`erase`].
struct ErasedFpp<K>(K);

impl<K> DynKernel for ErasedFpp<K>
where
    K: FppKernel + Send + 'static,
    K::State: Sync + 'static,
{
    fn name(&self) -> &str {
        self.0.name()
    }

    fn value_type(&self) -> TypeId {
        TypeId::of::<K::Value>()
    }

    fn state_type(&self) -> TypeId {
        TypeId::of::<K::State>()
    }

    fn state_type_name(&self) -> &'static str {
        std::any::type_name::<K::State>()
    }

    fn batch_weight(&self) -> f64 {
        self.0.batch_weight()
    }

    fn run_erased(
        &self,
        engine: &ForkGraphEngine<'_>,
        sources: &[VertexId],
    ) -> ForkGraphRunResult<ErasedState> {
        let ForkGraphRunResult { per_query, measurement, profile } = engine.run(&self.0, sources);
        ForkGraphRunResult {
            per_query: per_query.into_iter().map(|state| Arc::new(state) as ErasedState).collect(),
            measurement,
            profile,
        }
    }

    fn multi(&self) -> Option<MultiHooks<'_>> {
        MultiValue16::fits::<K::Value>().then(|| MultiHooks {
            narrow: MultiValue8::fits::<K::Value>()
                .then_some(self as &dyn MultiKernelHooks<MultiValue8>),
            wide: self as &dyn MultiKernelHooks<MultiValue16>,
        })
    }
}

impl<K> sealed::SealedMultiHooks for ErasedFpp<K>
where
    K: FppKernel + Send + 'static,
    K::State: Sync + 'static,
{
}

// One generic impl serves both payload widths; `P::new` statically refuses
// a width the value doesn't fit (unreachable behind `multi()`'s gating).
impl<K, P> MultiKernelHooks<P> for ErasedFpp<K>
where
    K: FppKernel + Send + 'static,
    K::State: Sync + 'static,
    P: PayloadOps,
{
    fn init_state_any(&self, graph: &CsrGraph) -> Box<dyn Any + Send + Sync> {
        Box::new(self.0.init_state(graph))
    }

    fn source_op_multi(&self, source: VertexId) -> (P, Priority) {
        let (value, priority) = self.0.source_op(source);
        (P::new(value), priority)
    }

    fn process_visit_multi(
        &self,
        visit: &crate::multi::MultiVisit<'_, '_>,
        query: u32,
        ops: Vec<Operation<P>>,
        state: &mut dyn Any,
    ) -> crate::engine::VisitOutcome<P> {
        let state = state.downcast_mut::<K::State>().unwrap_or_else(|| {
            panic!(
                "multi-kernel run handed kernel {:?} a state that is not {}",
                self.0.name(),
                std::any::type_name::<K::State>(),
            )
        });
        // De-erase lazily — the conversion fuses straight into the visit's
        // priority-heap build, so the group costs one pass and no
        // intermediate allocation — and run the identical monomorphized
        // visit the single-kernel path uses…
        let native = ops
            .into_iter()
            .map(|op| Operation::new(op.query, op.vertex, op.value.get::<K::Value>(), op.priority));
        let outcome = visit.process_native(&self.0, query, native, state);
        // …and re-erase only what leaves the visit.
        crate::engine::VisitOutcome {
            query: outcome.query,
            leftover: outcome
                .leftover
                .into_iter()
                .map(|op| Operation::new(op.query, op.vertex, P::new(op.value), op.priority))
                .collect(),
            remote: outcome
                .remote
                .into_iter()
                .map(|(target, op)| {
                    (target, Operation::new(op.query, op.vertex, P::new(op.value), op.priority))
                })
                .collect(),
        }
    }
}

/// Erase a concrete kernel into a shareable [`DynKernel`] handle.
///
/// The extra bounds over [`FppKernel`]'s own (`Send` on the kernel, `Sync +
/// 'static` on the state) are what sharing the kernel across service threads
/// and sharing its results through `Arc`s requires; every built-in kernel
/// satisfies them, and custom kernels holding only owned data do too.
pub fn erase<K>(kernel: K) -> Arc<dyn DynKernel>
where
    K: FppKernel + Send + 'static,
    K::State: Sync + 'static,
{
    Arc::new(ErasedFpp(kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::partitioned::PartitionedGraph;
    use fg_graph::{gen, CsrGraph, Dist};

    use crate::engine::{EngineConfig, ExecutorMode};
    use crate::kernels::SsspKernel;
    use crate::operation::Priority;

    /// A kernel that exists only in this test module: hop counts capped at a
    /// fixed radius. Monotone (min-relaxation on hop count), so every
    /// executor mode reaches the same fixpoint byte-identically.
    struct RadiusKernel {
        radius: u32,
    }

    impl FppKernel for RadiusKernel {
        type Value = u32;
        type State = Vec<u32>;

        fn name(&self) -> &'static str {
            "radius"
        }

        fn init_state(&self, graph: &CsrGraph) -> Self::State {
            vec![u32::MAX; graph.num_vertices()]
        }

        fn source_op(&self, _source: fg_graph::VertexId) -> (Self::Value, Priority) {
            (0, 0)
        }

        fn process(
            &self,
            graph: &fg_graph::AdjacencyView<'_>,
            state: &mut Self::State,
            vertex: fg_graph::VertexId,
            value: Self::Value,
            emit: &mut dyn FnMut(fg_graph::VertexId, Self::Value, Priority),
        ) -> u64 {
            if value >= state[vertex as usize] {
                return 0;
            }
            state[vertex as usize] = value;
            if value >= self.radius {
                return 0;
            }
            let mut edges = 0u64;
            for t in graph.out_neighbors(vertex) {
                edges += 1;
                if value + 1 < state[t as usize] {
                    emit(t, value + 1, (value + 1) as u64);
                }
            }
            edges
        }

        fn batch_weight(&self) -> f64 {
            0.5
        }
    }

    fn partitioned(parts: usize) -> (CsrGraph, PartitionedGraph) {
        let g = gen::rmat(9, 6, 51).with_random_weights(8, 51);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
        );
        (g, pg)
    }

    #[test]
    fn erased_builtin_matches_direct_run_byte_for_byte() {
        let (_, pg) = partitioned(6);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let sources = [0u32, 9, 42, 200];
        let direct = engine.run_sssp(&sources);
        let erased = erase(SsspKernel);
        let dyn_result = engine.run_dyn(&*erased, &sources);
        assert_eq!(dyn_result.per_query.len(), direct.per_query.len());
        for (erased_state, direct_state) in dyn_result.per_query.iter().zip(&direct.per_query) {
            let state = erased_state.downcast_ref::<Vec<Dist>>().expect("SSSP state is Vec<Dist>");
            assert_eq!(state, direct_state);
        }
    }

    #[test]
    fn erased_kernel_reports_its_types_and_weight() {
        let erased = erase(RadiusKernel { radius: 3 });
        assert_eq!(erased.name(), "radius");
        assert_eq!(erased.value_type(), TypeId::of::<u32>());
        assert_eq!(erased.state_type(), TypeId::of::<Vec<u32>>());
        assert!(erased.state_type_name().contains("Vec<u32>"));
        assert!((erased.batch_weight() - 0.5).abs() < 1e-12);
        // Built-ins keep the default weight.
        assert!((erase(SsspKernel).batch_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_erased_kernel_is_identical_across_executor_modes() {
        let (_, pg) = partitioned(8);
        let sources = [0u32, 3, 77, 140];
        let kernel = erase(RadiusKernel { radius: 4 });
        let serial =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_executor(ExecutorMode::Serial))
                .run_dyn(&*kernel, &sources);
        for mode in [ExecutorMode::Spawn, ExecutorMode::Pool] {
            let config = EngineConfig::default().with_threads(3).with_executor(mode);
            let engine = ForkGraphEngine::new(&pg, config);
            let parallel = engine.run_dyn(&*kernel, &sources);
            for (a, b) in serial.per_query.iter().zip(&parallel.per_query) {
                assert_eq!(
                    a.downcast_ref::<Vec<u32>>().unwrap(),
                    b.downcast_ref::<Vec<u32>>().unwrap(),
                    "{mode:?}"
                );
            }
            if mode == ExecutorMode::Pool {
                let pool = engine.worker_pool().expect("pool-mode run created a pool");
                assert!(pool.metrics().dispatches >= 1, "custom kernel ran through the pool");
            }
        }
    }

    #[test]
    fn erased_states_are_shareable_and_downcast_checked() {
        let (_, pg) = partitioned(4);
        let engine = ForkGraphEngine::new(&pg, EngineConfig::default());
        let kernel = erase(RadiusKernel { radius: 2 });
        let result = engine.run_dyn(&*kernel, &[5]);
        let state = Arc::clone(&result.per_query[0]);
        // Correct type: shared downcast succeeds.
        let hops: Arc<Vec<u32>> = Arc::downcast(state).expect("state is Vec<u32>");
        assert_eq!(hops[5], 0);
        // Wrong type: downcast refuses instead of transmuting.
        assert!(result.per_query[0].downcast_ref::<Vec<Dist>>().is_none());
    }
}
