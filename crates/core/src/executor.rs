//! Inter-partition parallel executor: a worker pool over disjoint partitions.
//!
//! The serial engine ([`crate::engine::ForkGraphEngine::run`]) visits one
//! LLC-sized partition at a time. This module adds the orthogonal axis of
//! parallelism the paper's cache-sized partitions motivate: *disjoint
//! partitions are processed concurrently*, each worker keeping its current
//! partition resident in its share of the LLC.
//!
//! Architecture:
//!
//! * **Mailboxes** — every partition owns a lock-striped mailbox (one stripe
//!   per worker, so concurrent senders never contend on a stripe). Remote
//!   operations are posted to the target partition's mailbox instead of being
//!   pushed into a shared buffer vector.
//! * **Runnable sets** — each worker has a local set of claimable partitions,
//!   seeded by the [`fg_graph::partitioned::PartitionedGraph::worker_affinity`]
//!   hints (footprint-balanced home assignment). Workers pick from their own
//!   set with the configured [`SchedulingPolicy`] (the same Table 4A rule as
//!   the serial scheduler, via [`crate::sched::select_by_policy`]) and
//!   **steal** from other workers' sets when their own drains.
//! * **Claim protocol** — a partition's mailbox carries an atomic state
//!   (`Idle → Queued → Running → Dirty`): posting to an idle partition
//!   enqueues it exactly once; posting to a running partition marks it dirty
//!   so the owning worker re-enqueues it when the visit ends. A partition is
//!   therefore never in two runnable sets, and a query's visit to a partition
//!   stays exclusive.
//! * **Per-query state** stays single-writer: a worker locks
//!   `states[q]` for the duration of `q`'s visit, exactly like the serial
//!   engine's intra-partition processing, so kernels remain atomic-free
//!   sequential code.
//! * **Termination** — an ops-in-flight counter tracks every operation from
//!   the moment it is posted until the visit that drained it completes.
//!   Leftover/remote operations are re-posted *before* the visit's drain is
//!   subtracted, so the counter reaches zero exactly when every mailbox is
//!   empty and no visit is in progress; the pool then quiesces.
//!
//! * **Worker threads** — a run's crew comes either from per-run scoped
//!   spawns ([`crate::engine::ExecutorMode::Spawn`], PR 2's behaviour) or,
//!   by default, from a persistent [`crate::pool::WorkerPool`] that parks
//!   its threads between runs and recycles the per-run mailbox/queue/scratch
//!   allocations ([`crate::engine::ExecutorMode::Pool`]). The run-local
//!   state below is identical in both modes; only the thread lifetime and
//!   allocation provenance differ.
//!
//! Inside a visit a worker processes its partition's query groups
//! *sequentially* (no nested intra-partition parallelism): with many
//! partitions in flight the crew is already saturated, and per-visit thread
//! teams would only thrash the cache the partitioning fought to keep warm.
//!
//! The executor is generic over the run's internal `KernelDriver` seam
//! (see `crate::kernel`):
//! for single-kernel runs that is the monomorphized
//! `SingleDriver` (kernels arriving through the type-erased
//! [`crate::dynkernel::DynKernel`] layer re-enter [`ForkGraphEngine::run`]
//! with the concrete type, so they pay no per-operation erasure cost here),
//! and for heterogeneous multi-kernel runs it is
//! `MultiDriver` ([`crate::multi`]), whose mailboxes carry
//! [`crate::operation::MultiValue8`]/[`crate::operation::MultiValue16`]
//! payloads through this exact same code.
//! The persistent pool's `TypeId`-keyed arena recycles mailboxes per value
//! type — all multi runs of a payload width share one storage set.
//!
//! Result equivalence: SSSP and BFS relax monotonically to a unique fixpoint,
//! so parallel execution is byte-identical to serial execution under every
//! scheduling policy (property-tested in `tests/parallel_equivalence.rs`).
//! PPR's lazy forward-push is *not* confluent — its quiescent state depends on
//! operation grouping even serially (two serial policies already differ) — so
//! equivalence there is the ACL approximation guarantee, not bitwise equality.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use fg_cachesim::GraphAccessTracer;
use fg_graph::partition::PartitionId;
use fg_graph::{CsrGraph, VertexId};
use fg_metrics::{Stopwatch, WorkCounters, WorkerSnapshot};
use fg_trace::{AtomicHistogram, EventKind, Histogram, PhaseTimes, RunProfile};

use crate::buffer::PartitionBuffer;
use crate::engine::{group_preserving_order, ForkGraphEngine, ForkGraphRunResult};
use crate::kernel::KernelDriver;
use crate::operation::{Operation, Priority};
use crate::pool::{WorkerPool, WorkerSlot};
use crate::sched::{select_by_policy, SchedKey, SchedulingPolicy};

/// Mailbox states of the claim protocol.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DIRTY: u8 = 3;

/// How long an idle worker parks before rescanning every runnable set.
/// Enqueues notify through `idle_lock`, which makes wakeups race-free (see
/// [`RunState::enqueue`]); the timeout is only a belt-and-braces rescan.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// A partition's sharded, lock-striped mailbox: one stripe per worker, so
/// concurrent senders append without contending with each other. `len`,
/// `min_priority`, and `stamp` are scheduling *hints* (approximate under
/// concurrent pushes — a stale minimum only makes the partition look more
/// urgent); correctness never depends on them.
///
/// `pub(crate)` so the persistent [`crate::pool::WorkerPool`] can hold
/// drained mailboxes in its recycle arena between runs.
pub(crate) struct Mailbox<V> {
    stripes: Vec<Mutex<Vec<Operation<V>>>>,
    len: AtomicUsize,
    min_priority: AtomicU64,
    stamp: AtomicU64,
    state: AtomicU8,
}

impl<V: Copy> Mailbox<V> {
    pub(crate) fn new(num_stripes: usize) -> Self {
        Mailbox {
            stripes: (0..num_stripes.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            len: AtomicUsize::new(0),
            min_priority: AtomicU64::new(Priority::MAX),
            stamp: AtomicU64::new(0),
            state: AtomicU8::new(IDLE),
        }
    }

    /// Reset a recycled mailbox for a fresh run: claim word back to `Idle`,
    /// scheduling hints zeroed, stripes emptied (they already are after a
    /// quiesced run; cleared defensively) and grown to `num_stripes` if the
    /// new run has more workers than the mailbox has stripes. Keeping extra
    /// stripes is fine — senders index stripes modulo the stripe count.
    pub(crate) fn reset_for(&mut self, num_stripes: usize) {
        for stripe in &mut self.stripes {
            stripe.lock().clear();
        }
        while self.stripes.len() < num_stripes.max(1) {
            self.stripes.push(Mutex::new(Vec::new()));
        }
        *self.len.get_mut() = 0;
        *self.min_priority.get_mut() = Priority::MAX;
        *self.stamp.get_mut() = 0;
        *self.state.get_mut() = IDLE;
    }

    fn push(&self, stripe: usize, op: Operation<V>) {
        let priority = op.priority;
        // Count before publishing: a drain racing this push then sees `len`
        // as an overestimate (harmless hint skew) instead of underflowing
        // `fetch_sub` to ~usize::MAX, which would make the MaxOperations
        // policy chase a near-empty partition.
        self.len.fetch_add(1, Ordering::Relaxed);
        self.min_priority.fetch_min(priority, Ordering::Relaxed);
        self.stripes[stripe % self.stripes.len()].lock().push(op);
    }

    /// Take every buffered operation. Pushes racing the drain land in either
    /// this visit or (via the `Dirty` state) the next one.
    fn drain(&self) -> Vec<Operation<V>> {
        self.min_priority.store(Priority::MAX, Ordering::Relaxed);
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.append(&mut stripe.lock());
        }
        self.len.fetch_sub(out.len(), Ordering::Relaxed);
        out
    }

    fn sched_key(&self) -> SchedKey {
        SchedKey {
            len: self.len.load(Ordering::Relaxed),
            priority: self.min_priority.load(Ordering::Relaxed),
            stamp: self.stamp.load(Ordering::Relaxed),
        }
    }
}

/// Shared state of one parallel run. (One instance per `run` call; the
/// *threads* that drive it come either from per-run scoped spawns or from a
/// persistent [`crate::pool::WorkerPool`] — see [`run_parallel`].)
struct RunState<'e, 'g, D: KernelDriver> {
    engine: &'e ForkGraphEngine<'g>,
    driver: &'e D,
    graph: &'e CsrGraph,
    mailboxes: Vec<Mailbox<D::Value>>,
    states: Vec<Mutex<D::State>>,
    /// Per-worker runnable sets; a partition id appears in at most one set.
    queues: Vec<Mutex<Vec<PartitionId>>>,
    /// Partition → home worker (footprint-balanced affinity hints).
    affinity: Vec<usize>,
    policy: SchedulingPolicy,
    /// Operations posted but not yet consumed by a completed visit.
    in_flight: AtomicI64,
    /// Total partitions currently in any runnable set (parking fast-path).
    runnable: AtomicUsize,
    /// Workers currently parked (or committed to park) on `idle_cv`; lets the
    /// enqueue hot path skip the lock+notify when everyone is busy.
    parked: AtomicUsize,
    done: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    next_stamp: AtomicU64,
    counters: &'e WorkCounters,
    tracer: &'e GraphAccessTracer,
    num_queries: usize,
    /// Operations-per-visit histogram, present when the run is profiling.
    visit_hist: Option<&'e AtomicHistogram>,
}

/// Sets `done` and wakes every parked worker if its worker panics, so a
/// kernel panic fails the run instead of deadlocking the worker crew.
struct PanicReaper<'p, 'e, 'g, D: KernelDriver>(&'p RunState<'e, 'g, D>);

impl<D: KernelDriver> Drop for PanicReaper<'_, '_, '_, D> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.done.store(true, Ordering::SeqCst);
            self.0.idle_cv.notify_all();
        }
    }
}

impl<'e, 'g, D: KernelDriver> RunState<'e, 'g, D> {
    /// Post `op` to partition `p`'s mailbox from worker `stripe` and make the
    /// partition runnable. The in-flight increment happens *before* the op is
    /// visible so the termination counter can never under-count.
    fn post(&self, stripe: usize, p: usize, op: Operation<D::Value>) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.mailboxes[p].push(stripe, op);
        self.counters.add_buffered(1);
        self.make_runnable(p);
    }

    /// Drive partition `p` to the `Queued` state (enqueuing it exactly once)
    /// or mark a running visit `Dirty` so its owner re-enqueues it.
    fn make_runnable(&self, p: usize) {
        let state = &self.mailboxes[p].state;
        loop {
            match state.load(Ordering::Acquire) {
                IDLE => {
                    if state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.enqueue(p);
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(RUNNING, DIRTY, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // QUEUED or DIRTY: a wakeup is already pending.
                _ => return,
            }
        }
    }

    fn enqueue(&self, p: usize) {
        self.mailboxes[p]
            .stamp
            .store(self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.queues[self.affinity[p]].lock().push(p as PartitionId);
        self.runnable.fetch_add(1, Ordering::SeqCst);
        // SeqCst pairing with the park path (which bumps `parked` *before*
        // re-checking `runnable` under `idle_lock`): if we read `parked == 0`
        // here, the parking worker's runnable-check is ordered after our
        // increment and it will not park; otherwise we take `idle_lock`
        // before notifying, so the worker is either pre-check (sees
        // `runnable > 0`) or inside `wait_for` (receives the notify). Either
        // way no handoff waits out the park timeout.
        if self.parked.load(Ordering::SeqCst) > 0 {
            drop(self.idle_lock.lock());
            self.idle_cv.notify_all();
        }
    }

    /// Pop one partition from runnable set `qi` using the scheduling policy.
    fn pop_queue(&self, qi: usize, rng: &mut SmallRng) -> Option<usize> {
        let mut queue = self.queues[qi].lock();
        let pos = select_by_policy(self.policy, rng, queue.len(), |i| {
            self.mailboxes[queue[i] as usize].sched_key()
        })?;
        let p = queue.swap_remove(pos) as usize;
        self.runnable.fetch_sub(1, Ordering::SeqCst);
        Some(p)
    }

    /// Claim the next partition: own runnable set first, then steal.
    fn claim(&self, w: usize, rng: &mut SmallRng, stats: &mut WorkerSnapshot) -> Option<usize> {
        if let Some(p) = self.pop_queue(w, rng) {
            self.engine.emit_trace(EventKind::Claim, p as u32, w as u32, 0);
            return Some(p);
        }
        for offset in 1..self.queues.len() {
            let victim = (w + offset) % self.queues.len();
            if let Some(p) = self.pop_queue(victim, rng) {
                stats.steals += 1;
                self.counters.add_steal();
                self.engine.emit_trace(EventKind::Steal, p as u32, w as u32, victim as u32);
                return Some(p);
            }
        }
        None
    }

    /// One partition visit: drain the mailbox, consolidate, process every
    /// query group under its per-query lock, route outcomes, update the
    /// termination counter, and run the `Running → Idle | Queued` epilogue.
    /// `scratch` is the worker's reusable consolidation buffer (same
    /// bucketing as the serial engine, without per-visit allocation).
    fn visit(
        &self,
        w: usize,
        p: usize,
        stats: &mut WorkerSnapshot,
        scratch: &mut PartitionBuffer<D::Value>,
    ) {
        let mailbox = &self.mailboxes[p];
        mailbox.state.store(RUNNING, Ordering::Release);
        let drained = mailbox.drain();
        let drained_count = drained.len();
        self.engine.emit_trace(EventKind::MailboxDrain, p as u32, drained_count as u32, w as u32);

        if drained_count > 0 {
            self.counters.add_partition_visit();
            stats.visits += 1;
            stats.operations += drained_count as u64;
            if let Some(hist) = self.visit_hist {
                hist.record(drained_count as u64);
            }
            let config = self.engine.config();
            let groups: Vec<(u32, Vec<Operation<D::Value>>)> = if config.consolidate {
                scratch.push_batch(drained);
                scratch.drain_consolidated(config.consolidation_method)
            } else {
                group_preserving_order(drained)
            };
            self.engine.emit_trace(
                EventKind::PartitionVisitBegin,
                p as u32,
                drained_count as u32,
                groups.len() as u32,
            );
            let partition_id = p as PartitionId;
            let partition_edges =
                self.engine.partitioned_graph().partition(partition_id).num_edges() as u64;
            for (q, ops) in groups {
                let outcome = {
                    let mut state = self.states[q as usize].lock();
                    self.driver.process_visit(
                        self.engine,
                        self.graph,
                        partition_id,
                        q,
                        ops,
                        &mut state,
                        partition_edges,
                        self.num_queries,
                        self.tracer,
                        self.counters,
                    )
                };
                for op in outcome.leftover {
                    self.post(w, p, op);
                }
                for (target, op) in outcome.remote {
                    self.post(w, target as usize, op);
                }
            }
            // The drained operations leave the system only now, after their
            // successors were posted; a zero here is global quiescence.
            if self.in_flight.fetch_sub(drained_count as i64, Ordering::SeqCst)
                == drained_count as i64
            {
                self.done.store(true, Ordering::SeqCst);
                drop(self.idle_lock.lock());
                self.idle_cv.notify_all();
            }
            self.engine.emit_trace(EventKind::PartitionVisitEnd, p as u32, 0, 0);
        }

        loop {
            match mailbox.state.compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(DIRTY) => {
                    if mailbox
                        .state
                        .compare_exchange(DIRTY, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.enqueue(p);
                        break;
                    }
                }
                Err(other) => unreachable!("mailbox in state {other} during visit epilogue"),
            }
        }
    }

    /// One worker's drive of the run to quiescence. `scratch` is the
    /// worker's consolidation buffer: spawn mode builds one per run, pool
    /// mode hands in the thread's recycled buffer from its
    /// [`crate::pool::WorkerSlot`].
    fn worker_loop(
        &self,
        w: usize,
        seed: u64,
        scratch: &mut PartitionBuffer<D::Value>,
    ) -> WorkerSnapshot {
        let _reaper = PanicReaper(self);
        let mut stats = WorkerSnapshot { worker: w as u32, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(seed);
        while !self.done.load(Ordering::SeqCst) {
            match self.claim(w, &mut rng, &mut stats) {
                Some(p) => self.visit(w, p, &mut stats, scratch),
                None => {
                    stats.idle_waits += 1;
                    self.counters.add_idle_wait();
                    let mut guard = self.idle_lock.lock();
                    self.parked.fetch_add(1, Ordering::SeqCst);
                    if self.done.load(Ordering::SeqCst) || self.runnable.load(Ordering::SeqCst) > 0
                    {
                        self.parked.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    self.engine.emit_trace(EventKind::Park, w as u32, 1, 0);
                    let _ = self.idle_cv.wait_for(&mut guard, PARK_TIMEOUT);
                    self.engine.emit_trace(EventKind::Unpark, w as u32, 1, 0);
                    self.parked.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        stats
    }
}

/// Seed used by worker `w` for its scheduling RNG; identical in spawn and
/// pool mode so the Random policy draws the same per-worker sequences.
fn worker_seed(policy_seed: u64, w: usize) -> u64 {
    policy_seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `kernel` over `sources` with `num_workers` inter-partition workers.
/// Called by [`ForkGraphEngine::run`] when `config.num_threads > 1`; result-
/// equivalent to the serial loop (see the module docs for the PPR caveat).
///
/// With `pool = None` (spawn mode) the run spawns and joins scoped worker
/// threads and builds its mailboxes/queues/scratch fresh — PR 2's behaviour,
/// kept for the executor-mode test matrix and as the bench baseline. With a
/// [`WorkerPool`] the run is dispatched onto the persistent crew and its
/// per-run storage is recycled through the pool's arena.
pub(crate) fn run_parallel<D: KernelDriver>(
    engine: &ForkGraphEngine<'_>,
    driver: &D,
    sources: &[VertexId],
    num_workers: usize,
    pool: Option<&Arc<WorkerPool>>,
) -> ForkGraphRunResult<D::State> {
    let pg = engine.partitioned_graph();
    let config = *engine.config();
    let num_partitions = pg.num_partitions();
    let num_queries = sources.len();
    let num_workers = crate::pool::crew_size(num_workers, num_partitions);
    let tracer = match config.cache {
        Some(cache) => GraphAccessTracer::new(cache),
        None => GraphAccessTracer::disabled(),
    };
    let counters = WorkCounters::new();
    let watch = Stopwatch::start();
    engine.emit_trace(EventKind::RunBegin, num_queries as u32, num_workers as u32, 1);
    let visit_hist = config.profile.then(AtomicHistogram::default);

    let policy_seed = match config.scheduling {
        SchedulingPolicy::Random { seed } => seed,
        _ => 0,
    };
    let (mailboxes, queues) = match pool {
        Some(pool) => pool.take_run_storage::<D::Value>(num_partitions, num_workers),
        None => (
            (0..num_partitions).map(|_| Mailbox::new(num_workers)).collect(),
            (0..num_workers).map(|_| Mutex::new(Vec::new())).collect(),
        ),
    };
    let run: RunState<'_, '_, D> = RunState {
        engine,
        driver,
        graph: pg.graph(),
        mailboxes,
        states: (0..num_queries)
            .map(|q| Mutex::new(driver.init_state(pg.graph(), q as u32)))
            .collect(),
        queues,
        affinity: pg.worker_affinity(num_workers),
        policy: config.scheduling,
        in_flight: AtomicI64::new(0),
        runnable: AtomicUsize::new(0),
        parked: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        idle_lock: Mutex::new(()),
        idle_cv: Condvar::new(),
        next_stamp: AtomicU64::new(0),
        counters: &counters,
        tracer: &tracer,
        num_queries,
        visit_hist: visit_hist.as_ref(),
    };

    // InitBuffers(P, Q): seed every query (at its source, or from the
    // driver's delta frontier). The caller guarantees at least one seed
    // operation overall — a run that posts nothing would never quiesce.
    for (q, &source) in sources.iter().enumerate() {
        driver.seed_ops(q as u32, source, &mut |vertex, value, priority| {
            let p = pg.partition_of(vertex) as usize;
            run.post(0, p, Operation::new(q as u32, vertex, value, priority));
        });
    }
    let init_done = watch.elapsed();

    let mut worker_stats: Vec<WorkerSnapshot> = match pool {
        Some(pool) => {
            let snapshots: Mutex<Vec<WorkerSnapshot>> = Mutex::new(Vec::with_capacity(num_workers));
            let run_ref = &run;
            let pool_counters = pool.counters();
            let job = |w: usize, slot: &mut WorkerSlot| {
                let scratch = slot.scratch_buffer::<D::Value>(config.num_buckets, pool_counters);
                let stats = run_ref.worker_loop(w, worker_seed(policy_seed, w), scratch);
                snapshots.lock().push(stats);
            };
            pool.dispatch(num_workers, &job);
            snapshots.into_inner()
        }
        None => std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_workers)
                .map(|w| {
                    let run = &run;
                    let seed = worker_seed(policy_seed, w);
                    scope.spawn(move || {
                        let mut scratch: PartitionBuffer<D::Value> =
                            PartitionBuffer::new(run.engine.config().num_buckets);
                        run.worker_loop(w, seed, &mut scratch)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("executor worker panicked")).collect()
        }),
    };
    worker_stats.sort_by_key(|s| s.worker);
    let main_done = watch.elapsed();

    debug_assert_eq!(run.in_flight.load(Ordering::SeqCst), 0, "run quiesced with ops in flight");
    counters.add_queries_completed(num_queries as u64);
    let RunState { mailboxes, states, queues, .. } = run;
    if let Some(pool) = pool {
        pool.store_run_storage(mailboxes, queues);
    }
    let per_query: Vec<D::State> = states.into_iter().map(|m| m.into_inner()).collect();
    let mut measurement =
        engine.build_measurement(watch.elapsed(), &counters, &tracer, num_queries);
    measurement.work.workers = worker_stats;
    engine.emit_trace(EventKind::RunEnd, num_queries as u32, num_workers as u32, 1);
    let profile = visit_hist.map(|hist| {
        let work = &measurement.work;
        let mut steals_per_worker = Histogram::default();
        for ws in &work.workers {
            steals_per_worker.record(ws.steals);
        }
        RunProfile {
            phases: PhaseTimes {
                init: init_done,
                processing: main_done.saturating_sub(init_done),
                finalize: measurement.wall_time.saturating_sub(main_done),
            },
            workers: num_workers as u32,
            partition_visits: work.partition_visits,
            visit_ops: hist.snapshot(),
            steals_per_worker,
            steals: work.steals,
            yields: work.yields,
        }
    });
    ForkGraphRunResult { per_query, measurement, profile }
}

#[cfg(test)]
mod tests {
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::partitioned::PartitionedGraph;
    use fg_graph::{gen, Dist};

    use crate::engine::EngineConfig;
    use crate::ForkGraphEngine;

    fn partitioned(parts: usize) -> (fg_graph::CsrGraph, PartitionedGraph) {
        let g = gen::rmat(10, 6, 77).with_random_weights(9, 77);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
        );
        (g, pg)
    }

    #[test]
    fn parallel_sssp_matches_serial_and_dijkstra() {
        let (g, pg) = partitioned(12);
        let sources: Vec<u32> = vec![0, 17, 301, 555];
        let serial = ForkGraphEngine::new(&pg, EngineConfig::default()).run_sssp(&sources);
        let parallel =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(4)).run_sssp(&sources);
        assert_eq!(serial.per_query, parallel.per_query);
        let oracle: Vec<Vec<Dist>> =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).dist).collect();
        assert_eq!(parallel.per_query, oracle);
    }

    #[test]
    fn parallel_run_reports_per_worker_stats() {
        // Pinned modes (not the env default): this test *requires* parallel
        // execution, so it must hold on the serial leg of the CI matrix too.
        for mode in [crate::ExecutorMode::Spawn, crate::ExecutorMode::Pool] {
            let (_, pg) = partitioned(8);
            let config = EngineConfig::default().with_threads(3).with_executor(mode);
            let result = ForkGraphEngine::new(&pg, config).run_bfs(&[0, 5, 9, 100]);
            let work = result.work();
            assert_eq!(work.workers.len(), 3, "{mode:?}");
            let visits: u64 = work.workers.iter().map(|w| w.visits).sum();
            assert_eq!(visits, work.partition_visits, "{mode:?}");
            // Every posted (buffered) operation is drained by exactly one visit.
            let ops: u64 = work.workers.iter().map(|w| w.operations).sum();
            assert_eq!(ops, work.operations_buffered, "{mode:?}");
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let config = EngineConfig::default().with_threads(0);
        assert!(config.resolved_threads() >= 1);
    }

    #[test]
    fn single_partition_falls_back_to_serial() {
        let g = gen::rmat(8, 5, 3).with_random_weights(6, 3);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 1),
        );
        let result =
            ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(8)).run_sssp(&[0, 2]);
        // Serial fallback leaves no per-worker breakdown.
        assert!(result.work().workers.is_empty());
        assert_eq!(result.per_query[0], fg_seq::dijkstra::dijkstra(&g, 0).dist);
    }

    #[test]
    fn parallel_with_cache_simulation_reports_cache_numbers() {
        let (_, pg) = partitioned(6);
        let config = EngineConfig::default()
            .with_threads(4)
            .with_cache(fg_cachesim::CacheConfig::tiny(64 * 1024));
        let result = ForkGraphEngine::new(&pg, config).run_sssp(&[0, 1, 2]);
        let cache = result.measurement.cache.unwrap();
        assert!(cache.accesses > 0);
    }
}
