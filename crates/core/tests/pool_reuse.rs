//! Pool-reuse property tests: the persistent [`WorkerPool`] must be
//! invisible to results across *consecutive* runs.
//!
//! Single-run equivalence (`parallel_equivalence.rs`) cannot catch stale
//! state that one run leaks into the next — a mailbox claim word left
//! `Queued`, a stripe holding an undrained operation, a scratch buffer with
//! leftovers, a runnable queue entry surviving recycling. These tests drive
//! N consecutive runs through ONE pool — mixing kernels, scheduling
//! policies, worker counts (including growing past the pool's initial
//! capacity), graphs, and partition counts between runs — and require every
//! run to be byte-identical to a fresh-spawn run and to the serial engine
//! (for the schedule-invariant kernels; PPR is checked against its mass
//! contract).
//!
//! Also asserts the pool's core lifecycle guarantee: steady-state runs
//! spawn **zero** new threads, and per-run storage is recycled rather than
//! rebuilt.
//!
//! Hand-rolled seeded harness (no proptest in the build environment); a
//! failure prints the case/run number, which reproduces the trial exactly.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, GraphBuilder};
use forkgraph_core::{EngineConfig, ExecutorMode, ForkGraphEngine, SchedulingPolicy, WorkerPool};

const CASES: u64 = 3;
const RUNS_PER_POOL: usize = 10;
const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn arb_graph(rng: &mut SmallRng) -> CsrGraph {
    let n = rng.gen_range(60usize..200);
    let num_edges = rng.gen_range(2 * n..5 * n);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        let w = rng.gen_range(1u32..16);
        b.add_edge(u, v, w);
    }
    b.build()
}

fn arb_partitioned(rng: &mut SmallRng, graph: &CsrGraph) -> PartitionedGraph {
    let parts = rng.gen_range(4usize..14);
    let method = [PartitionMethod::Multilevel, PartitionMethod::Chunked, PartitionMethod::BfsGrow]
        [rng.gen_range(0usize..3)];
    PartitionedGraph::build(graph, PartitionConfig::with_partitions(method, parts))
}

fn arb_sources(rng: &mut SmallRng, graph: &CsrGraph, max: usize) -> Vec<u32> {
    let n = graph.num_vertices() as u32;
    (0..rng.gen_range(2usize..=max)).map(|_| rng.gen_range(0..n)).collect()
}

/// N consecutive mixed-kernel runs through one pool are byte-identical to
/// fresh-spawn and serial execution, across all four scheduling policies.
#[test]
fn consecutive_pooled_runs_match_fresh_spawn_and_serial() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9001 + case);
        // One pool for the whole case, deliberately starting *below* the
        // largest worker count so mid-sequence growth is exercised too.
        let pool = Arc::new(WorkerPool::new(2));
        // Two graphs the runs alternate between: recycled mailboxes must
        // survive partition-count changes.
        let graph_a = arb_graph(&mut rng);
        let pg_a = arb_partitioned(&mut rng, &graph_a);
        let graph_b = arb_graph(&mut rng);
        let pg_b = arb_partitioned(&mut rng, &graph_b);

        for run in 0..RUNS_PER_POOL {
            let (graph, pg) = if run % 2 == 0 { (&graph_a, &pg_a) } else { (&graph_b, &pg_b) };
            let sources = arb_sources(&mut rng, graph, 6);
            let policy = SchedulingPolicy::all()[rng.gen_range(0usize..4)];
            let workers = WORKER_COUNTS[rng.gen_range(0usize..WORKER_COUNTS.len())];
            let config = EngineConfig::default().with_scheduling(policy).with_threads(workers);

            let serial = ForkGraphEngine::new(pg, config.with_threads(1));
            let spawn = ForkGraphEngine::new(pg, config.with_executor(ExecutorMode::Spawn));
            let pooled = ForkGraphEngine::with_pool(pg, config, Arc::clone(&pool));

            if run % 2 == 0 {
                let expected = serial.run_sssp(&sources);
                let fresh = spawn.run_sssp(&sources);
                let reused = pooled.run_sssp(&sources);
                assert_eq!(
                    expected.per_query, reused.per_query,
                    "case {case} run {run} policy {policy:?} workers {workers}: pool vs serial"
                );
                assert_eq!(
                    fresh.per_query, reused.per_query,
                    "case {case} run {run} policy {policy:?} workers {workers}: pool vs spawn"
                );
            } else {
                let expected = serial.run_bfs(&sources);
                let fresh = spawn.run_bfs(&sources);
                let reused = pooled.run_bfs(&sources);
                assert_eq!(
                    expected.per_query, reused.per_query,
                    "case {case} run {run} policy {policy:?} workers {workers}: pool vs serial"
                );
                assert_eq!(
                    fresh.per_query, reused.per_query,
                    "case {case} run {run} policy {policy:?} workers {workers}: pool vs spawn"
                );
            }
        }

        let metrics = pool.metrics();
        assert_eq!(metrics.dispatches, RUNS_PER_POOL as u64, "case {case}");
        assert!(
            metrics.threads_spawned <= 8,
            "case {case}: pool grew past the largest requested crew: {metrics:?}"
        );
        // Mailboxes recycle per value type, so SSSP runs reuse SSSP
        // mailboxes even though BFS runs (a different value type) are
        // interleaved between them. Scratch reuse is asserted in the
        // steady-state test below, where the kernel stays fixed — strict
        // kernel alternation legitimately rebuilds the typed scratch.
        assert!(
            metrics.mailboxes_reused > 0,
            "case {case}: consecutive runs should recycle mailboxes: {metrics:?}"
        );
    }
}

/// PPR across consecutive pooled runs: not bitwise (lazy forward-push is
/// non-confluent even serially — see `parallel_equivalence.rs`), but every
/// run must preserve exact mass and stay within the epsilon-scaled bound of
/// the serial result — including the later runs that reuse recycled
/// storage, where stale f64 residual operations would surface.
#[test]
fn consecutive_pooled_ppr_runs_preserve_the_approximation_contract() {
    use fg_seq::ppr::PprConfig;

    let ppr = PprConfig { epsilon: 1e-4, ..Default::default() };
    let mut rng = SmallRng::seed_from_u64(0x99_88);
    let n = 80usize;
    let mut b = GraphBuilder::new(n);
    for _ in 0..3 * n {
        b.add_edge(rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32), 1);
    }
    let graph = b.build();
    let pg = PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
    );
    let pool = Arc::new(WorkerPool::new(4));

    for run in 0..6 {
        let seeds = arb_sources(&mut rng, &graph, 3);
        let serial = ForkGraphEngine::new(&pg, EngineConfig::default()).run_ppr(&seeds, &ppr);
        let engine = ForkGraphEngine::with_pool(
            &pg,
            EngineConfig::default().with_threads(4),
            Arc::clone(&pool),
        );
        let pooled = engine.run_ppr(&seeds, &ppr);
        let budget: f64 = (0..graph.num_vertices())
            .map(|v| ppr.epsilon * graph.out_degree(v as u32).max(1) as f64)
            .sum::<f64>()
            * 2.0;
        for (q, (a, b)) in serial.per_query.iter().zip(pooled.per_query.iter()).enumerate() {
            assert!(
                (b.total_mass() - 1.0).abs() < 1e-9,
                "run {run} query {q}: mass {}",
                b.total_mass()
            );
            let l1: f64 =
                a.estimate.iter().zip(b.estimate.iter()).map(|(x, y)| (x - y).abs()).sum();
            assert!(l1 <= budget, "run {run} query {q}: l1 {l1} > budget {budget}");
        }
    }
}

/// The acceptance bar: once warm, engine runs spawn **zero** new threads,
/// for every scheduling policy, even as the per-run worker count moves up
/// and down beneath the pool's capacity.
#[test]
fn steady_state_runs_spawn_zero_new_threads() {
    let mut rng = SmallRng::seed_from_u64(0xC01D);
    let graph = arb_graph(&mut rng);
    let pg = arb_partitioned(&mut rng, &graph);
    let sources = arb_sources(&mut rng, &graph, 5);
    let pool = Arc::new(WorkerPool::new(8));

    // Warm-up: one run at the largest crew the sequence will use.
    ForkGraphEngine::with_pool(&pg, EngineConfig::default().with_threads(8), Arc::clone(&pool))
        .run_sssp(&sources);
    let warm = pool.metrics();
    assert_eq!(warm.threads_spawned, 8);

    for round in 0..4u64 {
        for policy in SchedulingPolicy::all() {
            for workers in WORKER_COUNTS {
                let engine = ForkGraphEngine::with_pool(
                    &pg,
                    EngineConfig::default().with_scheduling(policy).with_threads(workers),
                    Arc::clone(&pool),
                );
                engine.run_sssp(&sources);
                engine.run_sssp(&sources);
            }
        }
        let now = pool.metrics();
        assert_eq!(
            now.threads_spawned, warm.threads_spawned,
            "round {round}: steady-state runs must not spawn threads: {now:?}"
        );
    }
    let done = pool.metrics();
    assert_eq!(done.dispatches, warm.dispatches + 4 * 4 * 3 * 2);
    // Same value type and geometry throughout: after warm-up every run's
    // mailboxes come from the arena and every worker keeps its scratch.
    assert!(
        done.mailboxes_reused > done.mailboxes_rebuilt,
        "recycling should dominate in steady state: {done:?}"
    );
    assert!(done.scratch_reused > 0, "fixed-kernel runs should reuse scratch: {done:?}");
}

/// An engine that lazily creates its own pool keeps it across runs — the
/// second and later runs of one engine handle dispatch onto the same crew.
#[test]
fn engine_owned_pool_persists_across_runs() {
    let mut rng = SmallRng::seed_from_u64(0xE16);
    let graph = arb_graph(&mut rng);
    let pg = arb_partitioned(&mut rng, &graph);
    let sources = arb_sources(&mut rng, &graph, 4);
    let engine = ForkGraphEngine::new(
        &pg,
        EngineConfig::default().with_threads(4).with_executor(ExecutorMode::Pool),
    );
    assert!(engine.worker_pool().is_none(), "pool is created lazily");
    let first = engine.run_sssp(&sources);
    let spawned = engine.worker_pool().expect("created on first run").metrics().threads_spawned;
    for _ in 0..5 {
        let again = engine.run_sssp(&sources);
        assert_eq!(first.per_query, again.per_query);
    }
    let pool = engine.worker_pool().expect("still attached");
    assert_eq!(pool.metrics().threads_spawned, spawned, "repeat runs spawned threads");
    assert_eq!(pool.metrics().dispatches, 6);
}
