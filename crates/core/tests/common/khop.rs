//! Shared test-only kernel: a weighted k-hop distance table
//! (`state[v * (k+1) + h]` = best distance to `v` over ≤ `h` edges).
//!
//! A monotone min-relaxation over the (vertex, hop) product graph, so every
//! schedule — solo or mixed, serial or parallel — reaches the same
//! fixpoint; its `(Dist, u32)` value exercises a composite (16-byte)
//! payload through the erased multi-kernel path, and its *distance*
//! priorities align its frontier wave with SSSP's. Used by
//! `multi_equivalence.rs` and `multi_cachesim.rs` (the service-level twin
//! in `fg-service`'s tests is deliberately file-local there — it doubles as
//! proof that a kernel defined entirely outside workspace `src/` serves
//! end-to-end).

use fg_graph::{AdjacencyView, CsrGraph, Dist, VertexId, INF_DIST};
use forkgraph_core::operation::Priority;
use forkgraph_core::FppKernel;

pub struct KHopKernel {
    pub k: u32,
}

impl FppKernel for KHopKernel {
    type Value = (Dist, u32);
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "khop-test"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![INF_DIST; graph.num_vertices() * (self.k as usize + 1)]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        ((0, 0), 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        (dist, hops): Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        let stride = self.k as usize + 1;
        let base = vertex as usize * stride;
        if dist >= state[base + hops as usize] {
            return 0;
        }
        for h in hops as usize..stride {
            if dist < state[base + h] {
                state[base + h] = dist;
            }
        }
        if hops == self.k {
            return 0;
        }
        let mut edges = 0u64;
        for (t, w) in graph.out_edges(vertex) {
            edges += 1;
            let nd = dist + w as Dist;
            if nd < state[t as usize * stride + hops as usize + 1] {
                emit(t, (nd, hops + 1), nd);
            }
        }
        edges
    }
}
