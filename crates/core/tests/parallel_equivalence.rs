//! Equivalence property tests for the inter-partition parallel executor.
//!
//! On seeded random graphs, parallel execution (2/4/8 workers, all four
//! scheduling policies) must produce **byte-identical** per-query results to
//! the serial engine for SSSP and BFS: both kernels relax monotonically to a
//! unique fixpoint, so any schedule that runs to quiescence lands on exactly
//! the same integer state.
//!
//! PPR is checked separately and deliberately *not* bitwise: the ACL lazy
//! forward-push is non-confluent — the quiescent `(estimate, residual)` pair
//! depends on how operations group into visits, so even two *serial*
//! scheduling policies disagree in the last ulps (asserted below as
//! `serial_ppr_is_itself_schedule_dependent`, which documents why). What every
//! schedule must preserve is the approximation contract: exact mass
//! conservation and estimates within the epsilon-scaled error bound of the
//! serial result.
//!
//! Hand-rolled seeded harness (no proptest in the build environment); a
//! failure prints the case number, which reproduces the trial exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, GraphBuilder};
use fg_seq::ppr::PprConfig;
use forkgraph_core::{EngineConfig, ForkGraphEngine, SchedulingPolicy};

const CASES: u64 = 6;
const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// A random weighted graph over `60..240` vertices with `2n..6n` edges.
fn arb_graph(rng: &mut SmallRng) -> CsrGraph {
    let n = rng.gen_range(60usize..240);
    let num_edges = rng.gen_range(2 * n..6 * n);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        let w = rng.gen_range(1u32..16);
        b.add_edge(u, v, w);
    }
    b.build()
}

fn arb_partitioned(rng: &mut SmallRng, graph: &CsrGraph) -> PartitionedGraph {
    let parts = rng.gen_range(4usize..17);
    let method = [PartitionMethod::Multilevel, PartitionMethod::Chunked, PartitionMethod::BfsGrow]
        [rng.gen_range(0usize..3)];
    PartitionedGraph::build(graph, PartitionConfig::with_partitions(method, parts))
}

fn arb_sources(rng: &mut SmallRng, graph: &CsrGraph, max: usize) -> Vec<u32> {
    let n = graph.num_vertices() as u32;
    (0..rng.gen_range(2usize..=max)).map(|_| rng.gen_range(0..n)).collect()
}

#[test]
fn parallel_sssp_is_byte_identical_to_serial_for_all_policies_and_worker_counts() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x55_5F + case);
        let graph = arb_graph(&mut rng);
        let pg = arb_partitioned(&mut rng, &graph);
        let sources = arb_sources(&mut rng, &graph, 6);
        for policy in SchedulingPolicy::all() {
            let config = EngineConfig::default().with_scheduling(policy);
            let serial = ForkGraphEngine::new(&pg, config).run_sssp(&sources);
            for workers in WORKER_COUNTS {
                let parallel =
                    ForkGraphEngine::new(&pg, config.with_threads(workers)).run_sssp(&sources);
                assert_eq!(
                    serial.per_query, parallel.per_query,
                    "case {case} policy {policy:?} workers {workers}"
                );
            }
        }
    }
}

#[test]
fn parallel_bfs_is_byte_identical_to_serial_for_all_policies_and_worker_counts() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBF5 + case);
        let graph = arb_graph(&mut rng);
        let pg = arb_partitioned(&mut rng, &graph);
        let sources = arb_sources(&mut rng, &graph, 6);
        for policy in SchedulingPolicy::all() {
            let config = EngineConfig::default().with_scheduling(policy);
            let serial = ForkGraphEngine::new(&pg, config).run_bfs(&sources);
            for workers in WORKER_COUNTS {
                let parallel =
                    ForkGraphEngine::new(&pg, config.with_threads(workers)).run_bfs(&sources);
                assert_eq!(
                    serial.per_query, parallel.per_query,
                    "case {case} policy {policy:?} workers {workers}"
                );
            }
        }
    }
}

/// A smaller random graph for the PPR properties: push-based PPR emits an
/// operation per edge per push, so debug-mode runtimes grow steeply with size.
fn arb_small_graph(rng: &mut SmallRng) -> CsrGraph {
    let n = rng.gen_range(40usize..100);
    let num_edges = rng.gen_range(2 * n..4 * n);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        b.add_edge(u, v, 1);
    }
    b.build()
}

#[test]
fn parallel_ppr_preserves_mass_and_matches_serial_within_epsilon_bound() {
    let ppr = PprConfig { epsilon: 1e-4, ..Default::default() };
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x99_12 + case);
        let graph = arb_small_graph(&mut rng);
        let pg = arb_partitioned(&mut rng, &graph);
        let seeds = arb_sources(&mut rng, &graph, 3);
        let serial = ForkGraphEngine::new(&pg, EngineConfig::default()).run_ppr(&seeds, &ppr);
        for workers in WORKER_COUNTS {
            let parallel = ForkGraphEngine::new(&pg, EngineConfig::default().with_threads(workers))
                .run_ppr(&seeds, &ppr);
            for (q, (a, b)) in serial.per_query.iter().zip(parallel.per_query.iter()).enumerate() {
                assert!(
                    (b.total_mass() - 1.0).abs() < 1e-9,
                    "case {case} workers {workers} query {q}: mass {}",
                    b.total_mass()
                );
                // Quiescent residuals are below epsilon*deg everywhere, so two
                // runs can differ per vertex by at most one sub-threshold push
                // share; sum the per-vertex slack for the L1 budget.
                let budget: f64 = (0..graph.num_vertices())
                    .map(|v| ppr.epsilon * graph.out_degree(v as u32).max(1) as f64)
                    .sum::<f64>()
                    * 2.0;
                let l1: f64 =
                    a.estimate.iter().zip(b.estimate.iter()).map(|(x, y)| (x - y).abs()).sum();
                assert!(
                    l1 <= budget,
                    "case {case} workers {workers} query {q}: l1 {l1} > budget {budget}"
                );
            }
        }
    }
}

/// Documents why the PPR check above is not bitwise: the serial engine itself
/// produces schedule-dependent PPR states — lazy forward-push is not
/// confluent, independent of any parallelism.
#[test]
fn serial_ppr_is_itself_schedule_dependent() {
    let mut rng = SmallRng::seed_from_u64(0xD0C);
    let mut found_difference = false;
    for _ in 0..8 {
        let graph = arb_small_graph(&mut rng);
        let pg = arb_partitioned(&mut rng, &graph);
        let seeds = arb_sources(&mut rng, &graph, 3);
        let ppr = PprConfig { epsilon: 1e-4, ..Default::default() };
        let a = ForkGraphEngine::new(&pg, EngineConfig::default()).run_ppr(&seeds, &ppr);
        let b = ForkGraphEngine::new(
            &pg,
            EngineConfig::default().with_scheduling(SchedulingPolicy::Fifo),
        )
        .run_ppr(&seeds, &ppr);
        if a.per_query.iter().zip(b.per_query.iter()).any(|(x, y)| x.estimate != y.estimate) {
            found_difference = true;
            break;
        }
    }
    assert!(
        found_difference,
        "serial PPR became schedule-invariant; the parallel PPR check can be tightened to bitwise"
    );
}
