//! Cache-simulator coverage for heterogeneous multi-kernel runs: the
//! Figure-10-style measurement this whole feature exists for. When two
//! kernel cohorts share one partition pass, a partition's adjacency lines
//! are fetched into the simulated LLC once per visit and then serve *both*
//! groups' operations — so the mixed run must miss strictly less than the
//! two solo sweeps combined.
//!
//! The geometry is chosen for the regime where that sharing is physical
//! rather than incidental:
//!
//! * **Adjacency-dominated**: the graph's edge lists dwarf the simulated
//!   LLC, so solo sweeps re-fetch adjacency every pass, while the few
//!   queries' states fit beside one partition's slice.
//! * **Aligned wave dynamics**: the two kernels (SSSP and a weighted k-hop
//!   table) both use *distance* priorities, so their frontiers move through
//!   partitions together and most visits genuinely serve both groups.
//!   (Kernels with disjoint priority scales — BFS levels vs SSSP distances —
//!   phase-separate under priority scheduling and share far less; see the
//!   mixed-run-fairness note in ROADMAP.md.)
//! * **Associativity headroom**: the simulator gives every logical array a
//!   region aligned to a common large stride, so element `i` of every
//!   region maps to the same cache set; the mixed run keeps twice the state
//!   regions live, and a low-associativity geometry would charge it
//!   conflict misses that real hardware's physical allocation wouldn't.
//!   16 ways keep the measurement about capacity and reuse.

use std::sync::Arc;

use fg_cachesim::CacheConfig;
use fg_graph::partition::{PartitionConfig, PartitionMethod, PartitionPlan};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, Dist, StorageConfig, VertexId};
use fg_metrics::CacheNumbers;
use forkgraph_core::kernels::SsspKernel;
use forkgraph_core::{erase, EngineConfig, ExecutorMode, ForkGraphEngine, SchedulingPolicy};

#[path = "common/khop.rs"]
mod khop;
use khop::KHopKernel;

fn setup() -> (PartitionedGraph, Vec<VertexId>) {
    let g = gen::rmat(11, 12, 53).with_random_weights(8, 53);
    let pg = PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8),
    );
    let n = pg.graph().num_vertices() as u32;
    let sources = (0..4u32).map(|i| (i * 193 + 5) % n).collect();
    (pg, sources)
}

/// ~256 KiB simulated LLC (the graph's adjacency is larger), deterministic
/// serial FIFO schedule.
fn traced_config() -> EngineConfig {
    EngineConfig::default()
        .with_executor(ExecutorMode::Serial)
        .with_scheduling(SchedulingPolicy::Fifo)
        .with_cache(CacheConfig { capacity_bytes: 256 * 1024, line_bytes: 64, associativity: 16 })
}

#[test]
fn mixed_run_shares_partition_lines_across_groups() {
    let (pg, sources) = setup();
    let engine = ForkGraphEngine::new(&pg, traced_config());
    let sssp = erase(SsspKernel);
    let khop = erase(KHopKernel { k: 8 });

    let solo_sssp: CacheNumbers =
        engine.run_dyn(&*sssp, &sources).measurement.cache.expect("tracer attached");
    let solo_khop: CacheNumbers =
        engine.run_dyn(&*khop, &sources).measurement.cache.expect("tracer attached");
    let mixed = engine.run_multi(&[(&*sssp, &sources[..]), (&*khop, &sources[..])]);
    let mixed_cache: CacheNumbers = mixed.measurement.cache.expect("tracer attached");

    // Sanity: the tracer saw real traffic in every configuration.
    assert!(solo_sssp.misses > 0 && solo_khop.misses > 0 && mixed_cache.misses > 0);
    assert!(mixed_cache.accesses > 0);

    // The win: the shared pass misses strictly less than the two solo
    // sweeps combined, because each partition visit's adjacency lines serve
    // both groups while resident. (Measured ~0.8x on this geometry; the
    // assertion leaves headroom for partitioner evolution.)
    let solo_total = solo_sssp.misses + solo_khop.misses;
    eprintln!(
        "[multi_cachesim] solo sssp {} + solo khop {} = {solo_total} misses; mixed {} ({:.2}x)",
        solo_sssp.misses,
        solo_khop.misses,
        mixed_cache.misses,
        mixed_cache.misses as f64 / solo_total as f64
    );
    assert!(
        mixed_cache.misses < solo_total,
        "mixed run should reuse partition lines across groups: {} misses vs {} + {} solo",
        mixed_cache.misses,
        solo_sssp.misses,
        solo_khop.misses
    );
    // And it cannot beat physics: the mixed run still does at least one
    // cohort's worth of cold traffic.
    assert!(mixed_cache.misses >= solo_sssp.misses.min(solo_khop.misses));
    assert!(mixed.work().partition_visits >= 1);
}

/// The study graph again, but stored twice from **one** partition plan —
/// raw CSR slices vs compressed delta/varint payloads. (A shared plan is
/// load-bearing: the Multilevel partitioner's tie-breaking is not
/// deterministic across separate builds, and a different membership would
/// change the traffic being compared.)
fn storage_pair() -> (PartitionedGraph, PartitionedGraph, Vec<VertexId>) {
    let g = gen::rmat(11, 12, 53).with_random_weights(8, 53);
    let base = PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8);
    let arc = Arc::new(g);
    let plan = PartitionPlan::compute(&arc, &base);
    let raw = PartitionedGraph::from_plan(Arc::clone(&arc), plan.clone(), base);
    let compressed =
        PartitionedGraph::from_plan(arc, plan, base.with_storage(StorageConfig::Compressed));
    let n = raw.graph().num_vertices() as u32;
    let sources = (0..4u32).map(|i| (i * 193 + 5) % n).collect();
    (raw, compressed, sources)
}

/// ISSUE 10 acceptance: on the Figure-10-style mixed-run study graph,
/// compressed partition storage **strictly reduces** simulated LLC misses —
/// each visit streams the (much smaller) encoded byte range instead of the
/// raw CSR lines — while producing byte-identical results.
#[test]
fn compressed_storage_strictly_reduces_simulated_misses_on_the_mixed_run() {
    let (raw, compressed, sources) = storage_pair();
    let sssp = erase(SsspKernel);
    let khop = erase(KHopKernel { k: 8 });
    let run = |pg: &PartitionedGraph| {
        ForkGraphEngine::new(pg, traced_config())
            .run_multi(&[(&*sssp, &sources[..]), (&*khop, &sources[..])])
    };
    let raw_run = run(&raw);
    let comp_run = run(&compressed);
    let raw_cache: CacheNumbers = raw_run.measurement.cache.expect("tracer attached");
    let comp_cache: CacheNumbers = comp_run.measurement.cache.expect("tracer attached");

    assert!(raw_cache.misses > 0 && comp_cache.misses > 0);
    eprintln!(
        "[multi_cachesim] raw {} misses, compressed {} misses ({:.2}x)",
        raw_cache.misses,
        comp_cache.misses,
        comp_cache.misses as f64 / raw_cache.misses as f64
    );
    assert!(
        comp_cache.misses < raw_cache.misses,
        "compressed storage must reduce simulated misses: {} vs {} raw",
        comp_cache.misses,
        raw_cache.misses
    );

    // Same answers: decode-on-visit changed the traffic, not the results.
    for (group, (a_group, b_group)) in
        comp_run.per_group.iter().zip(raw_run.per_group.iter()).enumerate()
    {
        for (q, (a, b)) in a_group.iter().zip(b_group.iter()).enumerate() {
            assert_eq!(
                a.downcast_ref::<Vec<Dist>>().unwrap(),
                b.downcast_ref::<Vec<Dist>>().unwrap(),
                "group {group} query {q} diverged between storage modes"
            );
        }
    }

    // The storage numbers flow through the measurement.
    let storage = comp_run.measurement.storage.expect("partition store attached");
    assert_eq!(storage.compressed_partitions, 8);
    assert_eq!(storage.total_partitions, 8);
    assert!(storage.payload_bytes_compressed > 0);
    let raw_storage = raw_run.measurement.storage.expect("partition store attached");
    assert_eq!(raw_storage.compressed_partitions, 0);
    assert!(
        storage.bytes_per_edge < raw_storage.bytes_per_edge,
        "compressed bytes/edge {} should undercut raw {}",
        storage.bytes_per_edge,
        raw_storage.bytes_per_edge
    );
}

#[test]
fn mixed_run_reports_cache_numbers_under_the_parallel_executor_too() {
    let (pg, sources) = setup();
    let config = traced_config().with_executor(ExecutorMode::Pool).with_threads(3);
    let engine = ForkGraphEngine::new(&pg, config);
    let sssp = erase(SsspKernel);
    let khop = erase(KHopKernel { k: 8 });
    let mixed = engine.run_multi(&[(&*sssp, &sources[..]), (&*khop, &sources[..])]);
    let cache = mixed.measurement.cache.expect("tracer attached");
    assert!(cache.accesses > 0 && cache.misses > 0);
    assert_eq!(mixed.per_group.len(), 2);
}
