//! Equivalence properties for delta-frontier incremental restart.
//!
//! The contract under test (ISSUE 8 acceptance): after a **monotone** edge
//! batch (insertions and weight decreases), resuming converged SSSP/BFS
//! states from the delta frontier via `run_incremental` is **byte-identical**
//! to a from-scratch run on the post-mutation graph — under the serial loop
//! and the spawn/pool parallel executors alike. Non-monotone batches
//! (deletions, weight increases) are flagged by
//! [`fg_graph::mutation::AppliedDeltas::monotone`] so callers take the
//! full-re-run fallback; that classification and the fallback's correctness
//! are asserted here too, not assumed.
//!
//! Hand-rolled seeded harness (no proptest in the build environment); a
//! failure prints the case number, which reproduces the trial exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use fg_graph::mutation::VersionedGraph;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, GraphBuilder, VertexId};
use forkgraph_core::{EngineConfig, ExecutorMode, ForkGraphEngine};

const CASES: u64 = 6;

/// `(mode, workers)` sweeps covering all three executors.
const EXECUTORS: [(ExecutorMode, usize); 3] =
    [(ExecutorMode::Serial, 1), (ExecutorMode::Spawn, 4), (ExecutorMode::Pool, 4)];

fn arb_graph(rng: &mut SmallRng) -> CsrGraph {
    let n = rng.gen_range(60usize..200);
    let num_edges = rng.gen_range(2 * n..5 * n);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        let w = rng.gen_range(1u32..16);
        b.add_edge(u, v, w);
    }
    b.build()
}

fn arb_partitioned(rng: &mut SmallRng, graph: CsrGraph) -> Arc<PartitionedGraph> {
    let parts = rng.gen_range(4usize..13);
    let method = [PartitionMethod::Multilevel, PartitionMethod::Chunked, PartitionMethod::BfsGrow]
        [rng.gen_range(0usize..3)];
    Arc::new(PartitionedGraph::build_arc(
        Arc::new(graph),
        PartitionConfig::with_partitions(method, parts),
    ))
}

fn arb_sources(rng: &mut SmallRng, n: usize, max: usize) -> Vec<VertexId> {
    (0..rng.gen_range(2usize..=max)).map(|_| rng.gen_range(0..n as u32)).collect()
}

/// Log a random batch of insertions and weight *decreases* — mutations a
/// monotone kernel can absorb incrementally.
fn log_monotone_batch(rng: &mut SmallRng, vg: &VersionedGraph) {
    let pg = vg.current();
    let n = pg.graph().num_vertices() as u32;
    let existing: std::collections::HashMap<(u32, u32), u32> =
        pg.graph().edges().map(|(u, v, w)| ((u, v), w)).collect();
    let mut logged = 0;
    while logged < 8 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        match existing.get(&(u, v)) {
            Some(&w) if w > 1 => vg.insert_edge(u, v, rng.gen_range(1..w)).unwrap(),
            Some(_) => continue, // already at minimum weight; a rewrite would be a no-op
            None => vg.insert_edge(u, v, rng.gen_range(1u32..16)).unwrap(),
        };
        logged += 1;
    }
}

#[test]
fn incremental_sssp_after_insertions_is_byte_identical_across_executors() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1AC5 + case);
        let graph = arb_graph(&mut rng);
        let pg0 = arb_partitioned(&mut rng, graph);
        let sources = arb_sources(&mut rng, pg0.graph().num_vertices(), 5);

        let prev = ForkGraphEngine::new(&pg0, EngineConfig::default()).run_sssp(&sources);

        let vg = VersionedGraph::new(Arc::clone(&pg0));
        log_monotone_batch(&mut rng, &vg);
        let applied = vg.quiesce().expect("batch logged");
        assert!(applied.monotone, "case {case}: insert/decrease batch must classify monotone");

        let scratch =
            ForkGraphEngine::new(&applied.graph, EngineConfig::default()).run_sssp(&sources);

        for (mode, workers) in EXECUTORS {
            let config = EngineConfig::default().with_executor(mode).with_threads(workers);
            let engine = ForkGraphEngine::new(&applied.graph, config);
            let incremental =
                engine.run_sssp_incremental(&sources, prev.per_query.clone(), &applied.seed_edges);
            assert_eq!(
                incremental.per_query, scratch.per_query,
                "case {case} executor {mode:?}×{workers}: incremental != from-scratch"
            );
        }

        // Belt and braces: the shared fixpoint is the true one.
        assert_eq!(
            scratch.per_query[0],
            fg_seq::dijkstra::dijkstra(applied.graph.graph(), sources[0]).dist,
            "case {case}: from-scratch run disagrees with Dijkstra"
        );
    }
}

#[test]
fn incremental_bfs_after_insertions_is_byte_identical_across_executors() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1BF5 + case);
        let graph = arb_graph(&mut rng);
        let pg0 = arb_partitioned(&mut rng, graph);
        let sources = arb_sources(&mut rng, pg0.graph().num_vertices(), 5);

        let prev = ForkGraphEngine::new(&pg0, EngineConfig::default()).run_bfs(&sources);

        let vg = VersionedGraph::new(Arc::clone(&pg0));
        log_monotone_batch(&mut rng, &vg);
        let applied = vg.quiesce().expect("batch logged");
        assert!(applied.monotone);

        let scratch =
            ForkGraphEngine::new(&applied.graph, EngineConfig::default()).run_bfs(&sources);

        for (mode, workers) in EXECUTORS {
            let config = EngineConfig::default().with_executor(mode).with_threads(workers);
            let engine = ForkGraphEngine::new(&applied.graph, config);
            let incremental =
                engine.run_bfs_incremental(&sources, prev.per_query.clone(), &applied.seed_edges);
            assert_eq!(
                incremental.per_query, scratch.per_query,
                "case {case} executor {mode:?}×{workers}"
            );
        }
    }
}

/// Deletions must be classified non-monotone so callers take the
/// full-re-run fallback — and that fallback must actually be correct on the
/// post-deletion graph.
#[test]
fn deletions_classify_non_monotone_and_full_rerun_fallback_is_correct() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xDE1 + case);
        let graph = arb_graph(&mut rng);
        let pg0 = arb_partitioned(&mut rng, graph);
        let sources = arb_sources(&mut rng, pg0.graph().num_vertices(), 4);

        let vg = VersionedGraph::new(Arc::clone(&pg0));
        // Delete a handful of real edges (plus one monotone insert to prove
        // a single deletion poisons the whole batch).
        let victims: Vec<_> = pg0.graph().edges().step_by(7).take(4).collect();
        assert!(!victims.is_empty());
        for &(u, v, _) in &victims {
            vg.delete_edge(u, v).unwrap();
        }
        let n = pg0.graph().num_vertices() as u32;
        let (u, v) = ((victims[0].0 + 1) % n, (victims[0].1 + 2) % n);
        if u != v {
            let _ = vg.insert_edge(u, v, 3);
        }
        let applied = vg.quiesce().expect("batch logged");
        assert!(!applied.monotone, "case {case}: a deletion must force the fallback");

        // The fallback: a plain from-scratch run on the new snapshot.
        let full = ForkGraphEngine::new(&applied.graph, EngineConfig::default()).run_sssp(&sources);
        for (q, &s) in sources.iter().enumerate() {
            assert_eq!(
                full.per_query[q],
                fg_seq::dijkstra::dijkstra(applied.graph.graph(), s).dist,
                "case {case} source {s}: fallback result wrong after deletion"
            );
        }
    }
}

/// An empty delta frontier (every delta edge hangs off unreached vertices)
/// must return the previous states untouched — in particular it must not
/// enter the parallel executor, which cannot quiesce a zero-operation run.
#[test]
fn zero_seed_incremental_run_short_circuits_under_parallel_executors() {
    // Two disjoint chains: 0→1→2 and 10→11→12. Queries from 0 never reach
    // the 10-chain, so a new edge 11→12-area seeds nothing for them.
    let mut b = GraphBuilder::new(16);
    for (u, v) in [(0, 1), (1, 2), (10, 11), (11, 12)] {
        b.add_edge(u, v, 1);
    }
    let pg0 = Arc::new(PartitionedGraph::build_arc(
        Arc::new(b.build()),
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ));
    let sources = vec![0u32, 2u32];
    let prev = ForkGraphEngine::new(&pg0, EngineConfig::default()).run_sssp(&sources);

    let vg = VersionedGraph::new(Arc::clone(&pg0));
    vg.insert_edge(11, 13, 2).unwrap();
    let applied = vg.quiesce().unwrap();
    assert!(applied.monotone);
    assert_eq!(applied.seed_edges, vec![(11, 13, 2)]);

    for (mode, workers) in EXECUTORS {
        let config = EngineConfig::default().with_executor(mode).with_threads(workers);
        let engine = ForkGraphEngine::new(&applied.graph, config);
        let incremental =
            engine.run_sssp_incremental(&sources, prev.per_query.clone(), &applied.seed_edges);
        assert_eq!(
            incremental.per_query, prev.per_query,
            "executor {mode:?}×{workers}: unreachable delta must leave states untouched"
        );
    }
}

/// Accumulated monotone batches: apply several quiesce rounds in sequence,
/// restarting incrementally from each round's result. Stale-but-dominated
/// seeds must be pruned, keeping every round exact.
#[test]
fn chained_monotone_batches_stay_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC4A1);
    let graph = arb_graph(&mut rng);
    let pg0 = arb_partitioned(&mut rng, graph);
    let sources = arb_sources(&mut rng, pg0.graph().num_vertices(), 4);
    let vg = VersionedGraph::new(Arc::clone(&pg0));

    let mut prev = ForkGraphEngine::new(&pg0, EngineConfig::default()).run_sssp(&sources).per_query;
    for round in 0..4 {
        log_monotone_batch(&mut rng, &vg);
        let applied = vg.quiesce().unwrap();
        assert!(applied.monotone);
        let config = EngineConfig::default().with_executor(ExecutorMode::Pool).with_threads(4);
        let engine = ForkGraphEngine::new(&applied.graph, config);
        let incremental = engine.run_sssp_incremental(&sources, prev, &applied.seed_edges);
        let scratch =
            ForkGraphEngine::new(&applied.graph, EngineConfig::default()).run_sssp(&sources);
        assert_eq!(incremental.per_query, scratch.per_query, "round {round}");
        prev = incremental.per_query;
    }
}
