//! Acceptance tests for heterogeneous multi-kernel runs
//! ([`ForkGraphEngine::run_multi`]): for random mixes of SSSP / BFS /
//! random-walk / custom k-hop groups — across every executor mode and every
//! Table 4A scheduling policy — one shared partition pass produces results
//! **byte-identical** to running each kernel's cohort through its own
//! [`ForkGraphEngine::run_dyn`] sweep. PPR participates under its documented
//! epsilon/mass approximation contract (its lazy forward-push is
//! non-confluent even between two serial solo schedules, so bitwise equality
//! is unattainable by any execution strategy — see
//! `tests/parallel_equivalence.rs`). The single-group `run_multi` path is
//! also byte-identical to `run_dyn`, which pins the erased
//! [`forkgraph_core::MultiValue8`]/[`forkgraph_core::MultiValue16`]
//! pipeline to the monomorphized one.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{gen, Dist, VertexId};
use fg_seq::ppr::PprConfig;
use fg_seq::random_walk::RandomWalkConfig;
use forkgraph_core::kernels::{
    BfsKernel, PprKernel, PprState, RandomWalkKernel, RwState, SsspKernel,
};
use forkgraph_core::{
    erase, DynKernel, EngineConfig, ErasedState, ExecutorMode, ForkGraphEngine, SchedulingPolicy,
};

#[path = "common/khop.rs"]
mod khop;
use khop::KHopKernel;

/// The confluent kernel pool mixes are drawn from (PPR is tested separately
/// under its approximation contract).
#[derive(Clone, Copy, Debug)]
enum TestKernel {
    Sssp,
    Bfs,
    Rw,
    KHop,
}

const ALL_KERNELS: [TestKernel; 4] =
    [TestKernel::Sssp, TestKernel::Bfs, TestKernel::Rw, TestKernel::KHop];

impl TestKernel {
    fn erased(&self) -> Arc<dyn DynKernel> {
        match self {
            TestKernel::Sssp => erase(SsspKernel),
            TestKernel::Bfs => erase(BfsKernel),
            TestKernel::Rw => erase(RandomWalkKernel::new(RandomWalkConfig {
                num_walks: 3,
                walk_length: 6,
                restart_prob: 0.0,
                seed: 11,
            })),
            TestKernel::KHop => erase(KHopKernel { k: 3 }),
        }
    }

    /// Byte-level equality of two erased states of this kernel.
    fn assert_states_eq(&self, mixed: &ErasedState, solo: &ErasedState, context: &str) {
        match self {
            TestKernel::Sssp | TestKernel::KHop => assert_eq!(
                mixed.downcast_ref::<Vec<Dist>>().unwrap(),
                solo.downcast_ref::<Vec<Dist>>().unwrap(),
                "{context}"
            ),
            TestKernel::Bfs => assert_eq!(
                mixed.downcast_ref::<Vec<u32>>().unwrap(),
                solo.downcast_ref::<Vec<u32>>().unwrap(),
                "{context}"
            ),
            TestKernel::Rw => assert_eq!(
                mixed.downcast_ref::<RwState>().unwrap(),
                solo.downcast_ref::<RwState>().unwrap(),
                "{context}"
            ),
        }
    }
}

fn partitioned(parts: usize, seed: u64) -> PartitionedGraph {
    let g = gen::rmat(9, 6, seed).with_random_weights(8, seed);
    PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
    )
}

fn engine_config(mode: ExecutorMode, policy: SchedulingPolicy) -> EngineConfig {
    let threads = if mode == ExecutorMode::Serial { 1 } else { 3 };
    EngineConfig::default().with_scheduling(policy).with_executor(mode).with_threads(threads)
}

/// Acceptance criterion: random heterogeneous mixes are byte-identical to
/// per-kernel `run_dyn` sweeps across Serial/Spawn/Pool × all four policies.
///
/// The `run_dyn` oracle per group is computed **once** on a serial engine:
/// for these confluent kernels `run_dyn` itself is schedule- and
/// mode-independent (property-tested in `tests/parallel_equivalence.rs` and
/// `tests/pool_reuse.rs`), so one oracle stands for every configuration —
/// which keeps this sweep fast enough for the debug-mode CI matrix. The
/// serial leg still cross-checks `run_dyn` per policy via the single-group
/// test below.
#[test]
fn random_mixes_match_solo_runs_across_modes_and_policies() {
    let pg = partitioned(7, 131);
    let n = pg.graph().num_vertices() as u32;
    let mut rng = SmallRng::seed_from_u64(0xF0CACC1A);
    let oracle_engine =
        ForkGraphEngine::new(&pg, engine_config(ExecutorMode::Serial, SchedulingPolicy::Priority));

    for round in 0..3 {
        // 2–4 groups, duplicates allowed (two cohorts of the same kernel are
        // still distinct groups with distinct state tables).
        let num_groups = rng.gen_range(2..=4usize);
        let mix: Vec<(TestKernel, Arc<dyn DynKernel>, Vec<VertexId>)> = (0..num_groups)
            .map(|_| {
                let which = ALL_KERNELS[rng.gen_range(0..ALL_KERNELS.len())];
                let sources: Vec<VertexId> =
                    (0..rng.gen_range(1..=4usize)).map(|_| rng.gen_range(0..n)).collect();
                (which, which.erased(), sources)
            })
            .collect();
        let oracles: Vec<Vec<ErasedState>> =
            mix.iter().map(|(_, k, s)| oracle_engine.run_dyn(&**k, s).per_query).collect();

        for mode in [ExecutorMode::Serial, ExecutorMode::Spawn, ExecutorMode::Pool] {
            for policy in SchedulingPolicy::all() {
                let engine = ForkGraphEngine::new(&pg, engine_config(mode, policy));
                let groups: Vec<(&dyn DynKernel, &[VertexId])> =
                    mix.iter().map(|(_, k, s)| (&**k, &s[..])).collect();
                let mixed = engine.run_multi(&groups);
                assert_eq!(mixed.num_groups(), mix.len());
                for (g, (which, _, sources)) in mix.iter().enumerate() {
                    assert_eq!(mixed.per_group[g].len(), sources.len());
                    for (i, (mixed_state, solo_state)) in
                        mixed.per_group[g].iter().zip(&oracles[g]).enumerate()
                    {
                        which.assert_states_eq(
                            mixed_state,
                            solo_state,
                            &format!(
                                "round {round} group {g} ({which:?}) query {i} {mode:?} \
                                 {policy:?}"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Acceptance criterion: single-group `run_multi` is byte-identical to
/// `run_dyn` — the erased payload pipeline is faithful to the
/// monomorphized path, not merely approximately equivalent.
#[test]
fn single_group_run_multi_is_byte_identical_to_run_dyn() {
    let pg = partitioned(6, 137);
    let sources: Vec<VertexId> = vec![0, 9, 42, 311];
    for which in ALL_KERNELS {
        let kernel = which.erased();
        // Full policy sweep on the cheap serial engine; the parallel modes
        // pin one policy each (mode coverage is what they add — policy
        // coverage comes from the serial sweep and the mixed sweep above).
        let configs = [
            (ExecutorMode::Serial, SchedulingPolicy::Priority),
            (ExecutorMode::Serial, SchedulingPolicy::Fifo),
            (ExecutorMode::Serial, SchedulingPolicy::MaxOperations),
            (ExecutorMode::Serial, SchedulingPolicy::Random { seed: 7 }),
            (ExecutorMode::Spawn, SchedulingPolicy::Priority),
            (ExecutorMode::Pool, SchedulingPolicy::Fifo),
        ];
        for (mode, policy) in configs {
            {
                let engine = ForkGraphEngine::new(&pg, engine_config(mode, policy));
                let multi = engine.run_multi(&[(&*kernel, &sources[..])]);
                let solo = engine.run_dyn(&*kernel, &sources);
                for (i, (a, b)) in multi.per_group[0].iter().zip(&solo.per_query).enumerate() {
                    which.assert_states_eq(
                        a,
                        b,
                        &format!("{which:?} query {i} {mode:?} {policy:?}"),
                    );
                }
            }
        }
    }
}

/// PPR through a *serial* single-group `run_multi` is byte-identical to
/// serial `run_dyn` (same deterministic op sequence); mixed or parallel runs
/// hold its epsilon/mass approximation contract instead.
#[test]
fn ppr_single_group_serial_is_byte_identical() {
    let pg = partitioned(6, 139);
    let config = PprConfig { epsilon: 1e-4, ..Default::default() };
    let ppr = erase(PprKernel::new(config));
    let seeds: Vec<VertexId> = vec![3, 42, 200];
    let engine =
        ForkGraphEngine::new(&pg, engine_config(ExecutorMode::Serial, SchedulingPolicy::Priority));
    let multi = engine.run_multi(&[(&*ppr, &seeds[..])]);
    let solo = engine.run_dyn(&*ppr, &seeds);
    for (a, b) in multi.per_group[0].iter().zip(&solo.per_query) {
        let a = a.downcast_ref::<PprState>().unwrap();
        let b = b.downcast_ref::<PprState>().unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.residual, b.residual);
    }
}

/// PPR mixed with other kernels (and run under every executor mode) keeps
/// the approximation contract: unit total mass and bounded L1 distance to
/// the sequential forward-push reference.
#[test]
fn mixed_ppr_keeps_its_approximation_contract() {
    let pg = partitioned(6, 149);
    let g = pg.graph();
    let config = PprConfig { epsilon: 1e-4, ..Default::default() };
    let ppr = erase(PprKernel::new(config));
    let sssp = erase(SsspKernel);
    let seeds: Vec<VertexId> = vec![3, 42];
    let sssp_sources: Vec<VertexId> = vec![0, 17, 99];

    for mode in [ExecutorMode::Serial, ExecutorMode::Spawn, ExecutorMode::Pool] {
        let engine = ForkGraphEngine::new(&pg, engine_config(mode, SchedulingPolicy::Priority));
        let mixed = engine.run_multi(&[(&*ppr, &seeds[..]), (&*sssp, &sssp_sources[..])]);

        for (state, &seed) in mixed.per_group[0].iter().zip(seeds.iter()) {
            let state = state.downcast_ref::<PprState>().unwrap();
            assert!((state.total_mass() - 1.0).abs() < 1e-9, "{mode:?} seed {seed}");
            let reference = fg_seq::ppr::ppr_push(g, seed, &config).dense(g.num_vertices());
            let l1: f64 =
                state.estimate.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).sum();
            assert!(l1 < 0.08, "{mode:?} seed {seed}: l1 {l1}");
        }
        // The monotone co-tenant is still exact.
        let solo = engine.run_dyn(&*sssp, &sssp_sources);
        for (a, b) in mixed.per_group[1].iter().zip(&solo.per_query) {
            assert_eq!(
                a.downcast_ref::<Vec<Dist>>().unwrap(),
                b.downcast_ref::<Vec<Dist>>().unwrap(),
                "{mode:?}"
            );
        }
    }
}
