//! Trace-correctness tests: the event stream must agree with the
//! scheduler's and the metrics layer's ground truth, not merely exist.
//!
//! Executor modes are pinned per test (never the `FORKGRAPH_EXECUTOR` env
//! default) so each assertion holds on every leg of the CI matrix.

use std::sync::Arc;

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_trace::{EventKind, TraceEvent, TraceSink};
use forkgraph_core::{EngineConfig, ExecutorMode, ForkGraphEngine};

fn partitioned(parts: usize) -> PartitionedGraph {
    let g = fg_graph::gen::rmat(10, 6, 2024).with_random_weights(9, 2024);
    PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, parts),
    )
}

/// The partition-visit order a serial run's event stream reconstructs.
fn visit_order(events: &[TraceEvent]) -> Vec<u32> {
    events.iter().filter(|e| e.kind == EventKind::PartitionVisitBegin).map(|e| e.a).collect()
}

#[test]
fn serial_event_stream_reconstructs_the_exact_visit_order() {
    let pg = partitioned(8);
    let sources: Vec<u32> = vec![0, 13, 200, 777];
    let config = EngineConfig::default().with_threads(1).with_executor(ExecutorMode::Serial);

    let run = |sink: &Arc<TraceSink>| {
        let engine = ForkGraphEngine::new(&pg, config).with_trace_sink(Arc::clone(sink));
        engine.run_sssp(&sources)
    };
    let sink_a = TraceSink::new();
    let result_a = run(&sink_a);
    let sink_b = TraceSink::new();
    let result_b = run(&sink_b);

    // Serial scheduling is deterministic: two identical runs visit the same
    // partitions in the same order, and the event stream captures exactly
    // that order — one Begin per counted visit, same sequence both times.
    let events_a: Vec<TraceEvent> = sink_a.merged_events().into_iter().map(|(_, e)| e).collect();
    let events_b: Vec<TraceEvent> = sink_b.merged_events().into_iter().map(|(_, e)| e).collect();
    let order_a = visit_order(&events_a);
    assert_eq!(order_a, visit_order(&events_b), "serial visit order is deterministic");
    assert_eq!(
        order_a.len() as u64,
        result_a.work().partition_visits,
        "one PartitionVisitBegin per counted partition visit"
    );
    assert_eq!(result_a.per_query, result_b.per_query);

    // Begin/End bracket correctly: serial visits never nest, and each End
    // names the partition its Begin opened.
    let mut open: Option<u32> = None;
    let mut run_open = false;
    for e in &events_a {
        match e.kind {
            EventKind::RunBegin => run_open = true,
            EventKind::RunEnd => run_open = false,
            EventKind::PartitionVisitBegin => {
                assert!(run_open, "visit outside the run span");
                assert_eq!(open, None, "serial visits must not nest");
                open = Some(e.a);
            }
            EventKind::PartitionVisitEnd => {
                assert_eq!(open, Some(e.a), "End names the partition its Begin opened");
                open = None;
            }
            _ => {}
        }
    }
    assert_eq!(open, None, "every visit span is closed");

    // Yield events agree with the yield counter.
    let yields = events_a.iter().filter(|e| e.kind == EventKind::Yield).count() as u64;
    assert_eq!(yields, result_a.work().yields);
}

#[test]
fn pool_run_events_pair_claims_with_drains_and_match_steal_counts() {
    let pg = partitioned(8);
    let sources: Vec<u32> = vec![0, 5, 9, 100, 321, 700];
    let sink = TraceSink::new();
    let config = EngineConfig::default().with_threads(3).with_executor(ExecutorMode::Pool);
    let engine = ForkGraphEngine::new(&pg, config).with_trace_sink(Arc::clone(&sink));
    let result = engine.run_bfs(&sources);
    let work = result.work();

    // Per worker lane: a claimed partition's mailbox is drained before the
    // worker claims anything else (claim → drain pairing, in lane order).
    let lanes = sink.events();
    let mut claims = 0u64;
    let mut drains = 0u64;
    let mut steals = 0u64;
    for lane in &lanes {
        let mut pending_claim: Option<u32> = None;
        for e in &lane.events {
            match e.kind {
                EventKind::Claim | EventKind::Steal => {
                    assert_eq!(
                        pending_claim, None,
                        "worker claimed {} before draining its previous claim",
                        e.a
                    );
                    pending_claim = Some(e.a);
                    claims += 1;
                    if e.kind == EventKind::Steal {
                        steals += 1;
                    }
                }
                EventKind::MailboxDrain => {
                    assert_eq!(
                        pending_claim,
                        Some(e.a),
                        "drain of a partition the worker did not claim"
                    );
                    pending_claim = None;
                    drains += 1;
                }
                _ => {}
            }
        }
        assert_eq!(pending_claim, None, "every claim on a lane is drained");
    }
    assert_eq!(claims, drains, "every claim drains exactly once");
    assert_eq!(steals, work.steals, "Steal events match the steal counter");

    // Visits that drained operations are the counted partition visits, and
    // the drained totals cover every buffered operation exactly once.
    let all: Vec<TraceEvent> = sink.merged_events().into_iter().map(|(_, e)| e).collect();
    let nonempty_drains =
        all.iter().filter(|e| e.kind == EventKind::MailboxDrain && e.b > 0).count() as u64;
    assert_eq!(nonempty_drains, work.partition_visits);
    let drained_ops: u64 =
        all.iter().filter(|e| e.kind == EventKind::MailboxDrain).map(|e| e.b as u64).sum();
    assert_eq!(drained_ops, work.operations_buffered);

    // The run span and the pool dispatch are both on the stream.
    assert!(all.iter().any(|e| e.kind == EventKind::RunBegin && e.b == 3));
    assert!(all.iter().any(|e| e.kind == EventKind::RunEnd));
    assert!(all.iter().any(|e| e.kind == EventKind::PoolDispatch && e.b == 3));
}

#[test]
fn profile_is_attached_iff_requested_and_matches_the_counters() {
    let pg = partitioned(6);
    let sources: Vec<u32> = vec![0, 42, 999];

    for mode in [ExecutorMode::Serial, ExecutorMode::Pool] {
        let threads = if mode == ExecutorMode::Serial { 1 } else { 3 };
        let base = EngineConfig::default().with_threads(threads).with_executor(mode);

        let off = ForkGraphEngine::new(&pg, base).run_sssp(&sources);
        assert!(off.profile.is_none(), "{mode:?}: no profile unless requested");

        // No sink attached: profiles come from counters alone.
        let on = ForkGraphEngine::new(&pg, base.with_profile(true)).run_sssp(&sources);
        let profile = on.profile.as_ref().expect("profile requested");
        let work = on.work();
        assert_eq!(profile.partition_visits, work.partition_visits, "{mode:?}");
        assert_eq!(profile.visit_ops.count(), work.partition_visits, "{mode:?}");
        assert_eq!(profile.steals, work.steals, "{mode:?}");
        assert_eq!(profile.yields, work.yields, "{mode:?}");
        assert_eq!(profile.workers as usize, if threads == 1 { 1 } else { threads }, "{mode:?}");
        assert!(
            profile.phases.total() <= on.measurement.wall_time,
            "{mode:?}: phases partition the measured wall time"
        );
        if mode == ExecutorMode::Pool {
            assert_eq!(
                profile.steals_per_worker.count(),
                work.workers.len() as u64,
                "one steal sample per worker"
            );
            assert_eq!(profile.steals_per_worker.sum(), work.steals);
        }
        // Profiles must not change results.
        assert_eq!(off.per_query, on.per_query, "{mode:?}");
    }
}

#[test]
fn multi_kernel_runs_carry_profiles_and_group_visit_events() {
    let pg = partitioned(6);
    let sink = TraceSink::new();
    let config = EngineConfig::default()
        .with_threads(1)
        .with_executor(ExecutorMode::Serial)
        .with_profile(true);
    let engine = ForkGraphEngine::new(&pg, config).with_trace_sink(Arc::clone(&sink));

    let sssp = forkgraph_core::erase(forkgraph_core::kernels::SsspKernel);
    let bfs = forkgraph_core::erase(forkgraph_core::kernels::BfsKernel);
    let sssp_sources: Vec<u32> = vec![0, 7];
    let bfs_sources: Vec<u32> = vec![3, 11, 200];
    let result = engine.run_multi(&[(&*sssp, &sssp_sources[..]), (&*bfs, &bfs_sources[..])]);

    assert!(result.profile.is_some(), "multi runs propagate the profile");
    let events: Vec<TraceEvent> = sink.merged_events().into_iter().map(|(_, e)| e).collect();
    let group_visits: Vec<&TraceEvent> =
        events.iter().filter(|e| e.kind == EventKind::QueryGroupVisit).collect();
    assert!(!group_visits.is_empty(), "multi visits emit QueryGroupVisit");
    // Both kernel groups appear, and group indices stay in range.
    assert!(group_visits.iter().any(|e| e.b == 0));
    assert!(group_visits.iter().any(|e| e.b == 1));
    assert!(group_visits.iter().all(|e| e.b < 2));
    // RunBegin advertises the union query count.
    let begin = events.iter().find(|e| e.kind == EventKind::RunBegin).expect("run began");
    assert_eq!(begin.a as usize, sssp_sources.len() + bfs_sources.len());
}
