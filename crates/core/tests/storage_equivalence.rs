//! Equivalence properties for compressed partition storage.
//!
//! The contract under test (ISSUE 10 acceptance): kernel results are
//! **byte-identical** whether a partition's adjacency is stored raw (CSR
//! slices), compressed (delta/varint payloads decoded on visit), or chosen
//! adaptively per partition — for SSSP, BFS, and heterogeneous `run_multi`
//! batches, across executor modes, and across dynamic-graph mutation batches
//! with epoch advances (dirty-partition re-encodes included). The storage
//! policy itself must survive epoch re-materialisation: a store built
//! compressed stays compressed after a fold.
//!
//! All stores in one comparison share a single [`PartitionPlan`]: the
//! Multilevel partitioner's internal tie-breaking is not deterministic across
//! separate `build` calls within one process, so comparing separately built
//! stores would compare different partition memberships, not different
//! storage formats.
//!
//! Hand-rolled seeded harness (no proptest in the build environment); a
//! failure prints the case number, which reproduces the trial exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use fg_graph::mutation::VersionedGraph;
use fg_graph::partition::{PartitionConfig, PartitionMethod, PartitionPlan};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, Dist, GraphBuilder, StorageConfig, VertexId};
use fg_seq::random_walk::RandomWalkConfig;
use forkgraph_core::kernels::{BfsKernel, RandomWalkKernel, RwState, SsspKernel};
use forkgraph_core::{erase, EngineConfig, ErasedState, ExecutorMode, ForkGraphEngine};

const CASES: u64 = 5;

/// `(mode, workers)` pairs: the serial loop plus the persistent pool.
const EXECUTORS: [(ExecutorMode, usize); 2] = [(ExecutorMode::Serial, 1), (ExecutorMode::Pool, 4)];

/// Adaptive threshold giving a raw/compressed mix on the generated graphs.
const ADAPTIVE_MIN_BYTES: usize = 800;

fn arb_graph(rng: &mut SmallRng) -> CsrGraph {
    let n = rng.gen_range(60usize..200);
    let num_edges = rng.gen_range(2 * n..5 * n);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        let w = rng.gen_range(1u32..16);
        b.add_edge(u, v, w);
    }
    b.build()
}

fn arb_sources(rng: &mut SmallRng, n: usize, max: usize) -> Vec<VertexId> {
    (0..rng.gen_range(2usize..=max)).map(|_| rng.gen_range(0..n as u32)).collect()
}

/// One graph, one plan, three stores differing only in storage policy.
fn storage_triple(rng: &mut SmallRng, graph: CsrGraph) -> [Arc<PartitionedGraph>; 3] {
    let parts = rng.gen_range(4usize..13);
    let method = [PartitionMethod::Multilevel, PartitionMethod::Chunked, PartitionMethod::BfsGrow]
        [rng.gen_range(0usize..3)];
    let base = PartitionConfig::with_partitions(method, parts);
    let arc = Arc::new(graph);
    let plan = PartitionPlan::compute(&arc, &base);
    [
        StorageConfig::Raw,
        StorageConfig::Compressed,
        StorageConfig::Adaptive { min_bytes: ADAPTIVE_MIN_BYTES },
    ]
    .map(|storage| {
        Arc::new(PartitionedGraph::from_plan(
            Arc::clone(&arc),
            plan.clone(),
            base.with_storage(storage),
        ))
    })
}

/// A mixed batch: insertions, weight changes, and one deletion (results are
/// compared from scratch per store, so monotonicity is irrelevant here).
fn log_mixed_batch(rng: &mut SmallRng, vg: &VersionedGraph) {
    let n = vg.current().graph().num_vertices() as u32;
    for _ in 0..6 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            vg.insert_edge(u, v, rng.gen_range(1u32..16)).unwrap();
        }
    }
    if let Some((u, v, _)) = vg.current().graph().edges().nth(3) {
        let _ = vg.delete_edge(u, v);
    }
}

#[test]
fn sssp_and_bfs_are_byte_identical_across_storage_modes_and_executors() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x570A + case);
        let graph = arb_graph(&mut rng);
        let sources = arb_sources(&mut rng, graph.num_vertices(), 5);
        let [raw, compressed, adaptive] = storage_triple(&mut rng, graph);
        assert_eq!(compressed.compressed_partitions(), compressed.num_partitions());
        assert_eq!(raw.compressed_partitions(), 0);

        for (mode, workers) in EXECUTORS {
            let config = EngineConfig::default().with_executor(mode).with_threads(workers);
            let baseline_sssp = ForkGraphEngine::new(&raw, config).run_sssp(&sources).per_query;
            let baseline_bfs = ForkGraphEngine::new(&raw, config).run_bfs(&sources).per_query;
            for (label, pg) in [("compressed", &compressed), ("adaptive", &adaptive)] {
                let engine = ForkGraphEngine::new(pg, config);
                assert_eq!(
                    engine.run_sssp(&sources).per_query,
                    baseline_sssp,
                    "case {case} {label} sssp {mode:?}×{workers}"
                );
                assert_eq!(
                    engine.run_bfs(&sources).per_query,
                    baseline_bfs,
                    "case {case} {label} bfs {mode:?}×{workers}"
                );
            }
            // The shared fixpoint is the true one.
            assert_eq!(
                baseline_sssp[0],
                fg_seq::dijkstra::dijkstra(raw.graph(), sources[0]).dist,
                "case {case}: raw-store run disagrees with Dijkstra"
            );
        }
    }
}

#[test]
fn run_multi_mixed_batches_are_byte_identical_across_storage_modes() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x570B + case);
        let graph = arb_graph(&mut rng);
        let n = graph.num_vertices();
        let sssp_sources = arb_sources(&mut rng, n, 4);
        let bfs_sources = arb_sources(&mut rng, n, 4);
        let rw_sources = arb_sources(&mut rng, n, 3);
        let [raw, compressed, adaptive] = storage_triple(&mut rng, graph);

        let sssp = erase(SsspKernel);
        let bfs = erase(BfsKernel);
        let rw = erase(RandomWalkKernel::new(RandomWalkConfig {
            num_walks: 3,
            walk_length: 6,
            restart_prob: 0.0,
            seed: 11,
        }));
        let run = |pg: &Arc<PartitionedGraph>| -> Vec<Vec<ErasedState>> {
            ForkGraphEngine::new(pg, EngineConfig::default())
                .run_multi(&[
                    (sssp.as_ref(), sssp_sources.as_slice()),
                    (bfs.as_ref(), bfs_sources.as_slice()),
                    (rw.as_ref(), rw_sources.as_slice()),
                ])
                .per_group
        };
        let baseline = run(&raw);
        for (label, pg) in [("compressed", &compressed), ("adaptive", &adaptive)] {
            let got = run(pg);
            for (group, (mixed, solo)) in got.iter().zip(baseline.iter()).enumerate() {
                for (q, (a, b)) in mixed.iter().zip(solo.iter()).enumerate() {
                    let context = format!("case {case} {label} group {group} query {q}");
                    match group {
                        0 => assert_eq!(
                            a.downcast_ref::<Vec<Dist>>().unwrap(),
                            b.downcast_ref::<Vec<Dist>>().unwrap(),
                            "{context}"
                        ),
                        1 => assert_eq!(
                            a.downcast_ref::<Vec<u32>>().unwrap(),
                            b.downcast_ref::<Vec<u32>>().unwrap(),
                            "{context}"
                        ),
                        _ => assert_eq!(
                            a.downcast_ref::<RwState>().unwrap(),
                            b.downcast_ref::<RwState>().unwrap(),
                            "{context}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn storage_modes_agree_after_mutation_batches_and_epoch_advances() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x570C + case);
        let graph = arb_graph(&mut rng);
        let sources = arb_sources(&mut rng, graph.num_vertices(), 4);
        let [raw, compressed, adaptive] = storage_triple(&mut rng, graph);

        let versioned: Vec<VersionedGraph> = [&raw, &compressed, &adaptive]
            .into_iter()
            .map(|pg| VersionedGraph::new(Arc::clone(pg)))
            .collect();

        for round in 0..3 {
            // The identical batch against each store: fork one RNG per store
            // so all three log the same mutations.
            let batch_seed = rng.gen::<u64>();
            let snapshots: Vec<Arc<PartitionedGraph>> = versioned
                .iter()
                .map(|vg| {
                    let mut batch_rng = SmallRng::seed_from_u64(batch_seed);
                    log_mixed_batch(&mut batch_rng, vg);
                    vg.quiesce().expect("batch logged").graph
                })
                .collect();

            // The storage policy survived the epoch's dirty-partition
            // re-materialisation.
            assert_eq!(
                snapshots[1].compressed_partitions(),
                snapshots[1].num_partitions(),
                "case {case} round {round}: compressed store lost its policy in the fold"
            );
            assert_eq!(snapshots[0].compressed_partitions(), 0);

            let baseline =
                ForkGraphEngine::new(&snapshots[0], EngineConfig::default()).run_sssp(&sources);
            for (label, pg) in [("compressed", &snapshots[1]), ("adaptive", &snapshots[2])] {
                let got = ForkGraphEngine::new(pg, EngineConfig::default()).run_sssp(&sources);
                assert_eq!(
                    got.per_query, baseline.per_query,
                    "case {case} round {round} {label}: post-mutation results diverged"
                );
            }
            assert_eq!(
                baseline.per_query[0],
                fg_seq::dijkstra::dijkstra(snapshots[0].graph(), sources[0]).dist,
                "case {case} round {round}: post-mutation raw run disagrees with Dijkstra"
            );
        }
    }
}

/// The adaptive sweep actually exercises both payload kinds somewhere in the
/// deterministic case set — otherwise the "adaptive" rows above would be
/// silently testing a single mode.
#[test]
fn adaptive_sweep_covers_both_payload_kinds() {
    let mut compressed_seen = 0usize;
    let mut raw_seen = 0usize;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x570A + case);
        let graph = arb_graph(&mut rng);
        let _ = arb_sources(&mut rng, graph.num_vertices(), 5);
        let [_, _, adaptive] = storage_triple(&mut rng, graph);
        compressed_seen += adaptive.compressed_partitions();
        raw_seen += adaptive.num_partitions() - adaptive.compressed_partitions();
    }
    assert!(compressed_seen > 0, "adaptive threshold never compressed a partition");
    assert!(raw_seen > 0, "adaptive threshold compressed everything");
}
