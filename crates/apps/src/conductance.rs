//! Conductance and sweep cuts, the aggregation primitive of the NCP
//! application (Leskovec et al.'s network community profile).

use fg_graph::{CsrGraph, VertexId};

/// Conductance of a vertex set `S`: `cut(S, V\S) / min(vol(S), vol(V\S))`,
/// where `vol` is the sum of out-degrees. Returns 1.0 for empty or full sets.
pub fn conductance(graph: &CsrGraph, set: &[VertexId]) -> f64 {
    let total_volume: usize = graph.num_edges();
    if set.is_empty() || total_volume == 0 {
        return 1.0;
    }
    let mut member = vec![false; graph.num_vertices()];
    for &v in set {
        member[v as usize] = true;
    }
    let mut volume = 0usize;
    let mut cut = 0usize;
    for &v in set {
        volume += graph.out_degree(v);
        for &t in graph.out_neighbors(v) {
            if !member[t as usize] {
                cut += 1;
            }
        }
    }
    let denom = volume.min(total_volume - volume);
    if denom == 0 {
        1.0
    } else {
        cut as f64 / denom as f64
    }
}

/// Sweep cut over a PPR vector: order vertices by `estimate / degree`
/// (descending) and return, for every prefix size, the prefix conductance.
/// The best prefix is the approximate local cluster around the PPR seed.
pub fn sweep_cut(graph: &CsrGraph, estimates: &[(VertexId, f64)]) -> Vec<(usize, f64)> {
    if estimates.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<(VertexId, f64)> =
        estimates.iter().map(|&(v, p)| (v, p / graph.out_degree(v).max(1) as f64)).collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1));

    let total_volume = graph.num_edges();
    let mut member = vec![false; graph.num_vertices()];
    let mut volume = 0usize;
    let mut cut = 0isize;
    let mut profile = Vec::with_capacity(order.len());
    for (i, &(v, _)) in order.iter().enumerate() {
        member[v as usize] = true;
        volume += graph.out_degree(v);
        // New out-edges from v that leave the (enlarged) set start crossing;
        // out-edges into existing members never were part of the cut.
        for &t in graph.out_neighbors(v) {
            if !member[t as usize] {
                cut += 1;
            }
        }
        // Out-edges of existing members that pointed at v stop crossing.
        for &s in graph.in_neighbors(v) {
            if member[s as usize] && s != v {
                cut -= 1;
            }
        }
        let denom = volume.min(total_volume.saturating_sub(volume));
        let phi = if denom == 0 { 1.0 } else { (cut.max(0)) as f64 / denom as f64 };
        profile.push((i + 1, phi));
    }
    profile
}

/// Minimum conductance over all sweep prefixes; `(best_size, best_phi)`.
pub fn best_sweep(graph: &CsrGraph, estimates: &[(VertexId, f64)]) -> Option<(usize, f64)> {
    sweep_cut(graph, estimates).into_iter().min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{gen, GraphBuilder};

    /// Two dense clusters joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut b = GraphBuilder::new(10);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    b.add_unweighted_edge(u, v);
                }
            }
        }
        for u in 5..10u32 {
            for v in 5..10u32 {
                if u != v {
                    b.add_unweighted_edge(u, v);
                }
            }
        }
        b.add_undirected_edge(0, 5, 1);
        b.build()
    }

    #[test]
    fn clique_has_low_conductance_random_set_has_high() {
        let g = two_cliques();
        let clique: Vec<u32> = (0..5).collect();
        let scattered: Vec<u32> = vec![0, 2, 6, 8];
        assert!(conductance(&g, &clique) < 0.1);
        assert!(conductance(&g, &scattered) > 0.3);
    }

    #[test]
    fn conductance_edge_cases() {
        let g = two_cliques();
        assert_eq!(conductance(&g, &[]), 1.0);
        let all: Vec<u32> = (0..10).collect();
        assert_eq!(conductance(&g, &all), 1.0); // complement empty
    }

    #[test]
    fn sweep_cut_conductances_match_direct_computation() {
        let g = two_cliques();
        let estimates: Vec<(u32, f64)> =
            vec![(0, 0.5), (1, 0.3), (2, 0.2), (3, 0.15), (4, 0.1), (6, 0.01)];
        let profile = sweep_cut(&g, &estimates);
        assert_eq!(profile.len(), estimates.len());
        // Recompute each prefix directly and compare.
        let mut order: Vec<(u32, f64)> =
            estimates.iter().map(|&(v, p)| (v, p / g.out_degree(v).max(1) as f64)).collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, &(size, phi)) in profile.iter().enumerate() {
            assert_eq!(size, i + 1);
            let prefix: Vec<u32> = order[..=i].iter().map(|&(v, _)| v).collect();
            let direct = conductance(&g, &prefix);
            assert!((phi - direct).abs() < 1e-9, "prefix {i}: sweep {phi} vs direct {direct}");
        }
    }

    #[test]
    fn best_sweep_recovers_the_planted_cluster() {
        let g = two_cliques();
        // PPR-like estimates concentrated on the first clique.
        let estimates: Vec<(u32, f64)> =
            vec![(0, 0.4), (1, 0.2), (2, 0.15), (3, 0.1), (4, 0.08), (5, 0.02), (6, 0.01)];
        let (size, phi) = best_sweep(&g, &estimates).unwrap();
        assert_eq!(size, 5, "the best cluster is the 5-vertex clique");
        assert!(phi < 0.1);
    }

    #[test]
    fn empty_estimates_produce_empty_profile() {
        let g = gen::path(4);
        assert!(sweep_cut(&g, &[]).is_empty());
        assert!(best_sweep(&g, &[]).is_none());
    }
}
