//! # fg-apps
//!
//! The FPP-based graph applications evaluated in the paper:
//!
//! * [`bc`] — **Betweenness centrality** (approximate, Brandes with sampled
//!   sources): launches a batch of SSSP/BFS queries and accumulates
//!   shortest-path dependencies.
//! * [`ncp`] — **Network community profile**: launches a batch of personalized
//!   PageRank queries from random seeds and sweeps each PPR vector for the
//!   best-conductance cluster per size.
//! * [`ll`] — **Landmark labeling**: launches a batch of SSSPs from landmark
//!   vertices and builds a distance-label index answering point-to-point
//!   distance queries.
//!
//! Each application separates the *fork-processing* part (the query batch,
//! which dominates execution time and is what ForkGraph accelerates) from the
//! *aggregation* part, so the same application can run on top of the ForkGraph
//! engine or any baseline GPS driver.

pub mod bc;
pub mod conductance;
pub mod ll;
pub mod ncp;

pub use bc::BetweennessCentrality;
pub use ll::LandmarkLabeling;
pub use ncp::NetworkCommunityProfile;

use fg_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample `count` distinct source vertices uniformly at random (used by all
/// three applications to pick query sources, as in the paper's setup).
pub fn sample_sources(num_vertices: usize, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let count = count.min(num_vertices);
    let mut picked = std::collections::HashSet::with_capacity(count);
    let mut sources = Vec::with_capacity(count);
    while sources.len() < count {
        let v = rng.gen_range(0..num_vertices) as VertexId;
        if picked.insert(v) {
            sources.push(v);
        }
    }
    sources
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_distinct_and_deterministic() {
        let a = sample_sources(100, 20, 7);
        let b = sample_sources(100, 20, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
    }

    #[test]
    fn sampling_caps_at_population() {
        assert_eq!(sample_sources(5, 50, 1).len(), 5);
    }
}
