//! Betweenness centrality (BC) with sampled sources.
//!
//! The exact Brandes algorithm runs one SSSP/BFS from *every* vertex; the paper
//! (following Eppstein & Wang / Geisberger et al.) samples a batch of source
//! vertices instead. The batch of SSSPs is the fork-processing pattern; the
//! dependency accumulation is a cheap per-source post-pass implemented here.

use fg_baselines::fpp::{ExecutionScheme, FppDriver, QueryKind};
use fg_baselines::GpsEngine;
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};
use fg_metrics::Measurement;
use forkgraph_core::{EngineConfig, ForkGraphEngine};

use crate::sample_sources;

/// Result of a betweenness-centrality computation.
#[derive(Clone, Debug)]
pub struct BcResult {
    /// Approximate centrality score per vertex.
    pub centrality: Vec<f64>,
    /// Sampled source vertices.
    pub sources: Vec<VertexId>,
    /// Measurement of the FPP (query batch) part.
    pub measurement: Measurement,
}

/// Approximate betweenness centrality via sampled SSSP sources.
#[derive(Clone, Copy, Debug)]
pub struct BetweennessCentrality {
    /// Number of sampled source vertices (the paper uses 100).
    pub num_samples: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl BetweennessCentrality {
    /// Create the application with `num_samples` sampled sources.
    pub fn new(num_samples: usize, seed: u64) -> Self {
        BetweennessCentrality { num_samples, seed }
    }

    /// The sampled source vertices for `graph`.
    pub fn sources(&self, graph: &CsrGraph) -> Vec<VertexId> {
        sample_sources(graph.num_vertices(), self.num_samples, self.seed)
    }

    /// Brandes dependency accumulation for one source given its distance
    /// array; adds this source's contribution into `centrality`.
    pub fn accumulate(graph: &CsrGraph, source: VertexId, dist: &[Dist], centrality: &mut [f64]) {
        let n = graph.num_vertices();
        debug_assert_eq!(dist.len(), n);
        // Vertices reachable from the source, ordered by distance.
        let mut order: Vec<VertexId> =
            (0..n as VertexId).filter(|&v| dist[v as usize] != INF_DIST).collect();
        order.sort_by_key(|&v| dist[v as usize]);

        // Count shortest paths.
        let mut sigma = vec![0.0f64; n];
        sigma[source as usize] = 1.0;
        for &v in &order {
            let dv = dist[v as usize];
            if sigma[v as usize] == 0.0 {
                continue;
            }
            for (t, w) in graph.out_edges(v) {
                if dist[t as usize] == dv + w as Dist {
                    sigma[t as usize] += sigma[v as usize];
                }
            }
        }

        // Accumulate dependencies in reverse distance order.
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            let dv = dist[v as usize];
            for (t, w) in graph.out_edges(v) {
                if dist[t as usize] == dv + w as Dist && sigma[t as usize] > 0.0 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[t as usize] * (1.0 + delta[t as usize]);
                }
            }
            if v != source {
                centrality[v as usize] += delta[v as usize];
            }
        }
    }

    /// Aggregate per-source distance arrays into centrality scores.
    pub fn aggregate(
        &self,
        graph: &CsrGraph,
        sources: &[VertexId],
        dists: &[Vec<Dist>],
    ) -> Vec<f64> {
        let mut centrality = vec![0.0f64; graph.num_vertices()];
        for (source, dist) in sources.iter().zip(dists.iter()) {
            Self::accumulate(graph, *source, dist, &mut centrality);
        }
        centrality
    }

    /// Run the application on the ForkGraph engine.
    pub fn run_forkgraph(&self, pg: &PartitionedGraph, config: EngineConfig) -> BcResult {
        let sources = self.sources(pg.graph());
        let engine = ForkGraphEngine::new(pg, config);
        let result = engine.run_sssp(&sources);
        let centrality = self.aggregate(pg.graph(), &sources, &result.per_query);
        BcResult { centrality, sources, measurement: result.measurement }
    }

    /// Run the application on a baseline GPS driver.
    pub fn run_baseline<E: GpsEngine>(
        &self,
        driver: &FppDriver<E>,
        scheme: ExecutionScheme,
        graph: &CsrGraph,
    ) -> BcResult {
        let sources = self.sources(graph);
        let result = driver.run(&QueryKind::Sssp, &sources, scheme);
        let dists: Vec<Vec<Dist>> =
            result.outputs.iter().map(|o| o.as_sssp().expect("SSSP output").to_vec()).collect();
        let centrality = self.aggregate(graph, &sources, &dists);
        BcResult { centrality, sources, measurement: result.measurement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_baselines::LigraEngine;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::{gen, GraphBuilder};
    use std::sync::Arc;

    /// Exact Brandes on a path: the middle vertex lies on the most paths.
    #[test]
    fn path_graph_centrality_peaks_in_the_middle() {
        let g = gen::path(7).with_random_weights(1, 0);
        let bc = BetweennessCentrality::new(7, 1);
        // Use all vertices as sources = exact BC.
        let sources: Vec<VertexId> = (0..7).collect();
        let dists: Vec<Vec<Dist>> =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).dist).collect();
        let c = bc.aggregate(&g, &sources, &dists);
        let max = c.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(c[3], max, "centrality {c:?}");
        assert_eq!(c[0], 0.0);
        assert_eq!(c[6], 0.0);
    }

    /// A star graph: the hub has all the betweenness.
    #[test]
    fn star_graph_hub_dominates() {
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6u32 {
            b.add_undirected_edge(0, leaf, 1);
        }
        let g = b.build();
        let bc = BetweennessCentrality::new(6, 1);
        let sources: Vec<VertexId> = (0..6).collect();
        let dists: Vec<Vec<Dist>> =
            sources.iter().map(|&s| fg_seq::dijkstra::dijkstra(&g, s).dist).collect();
        let c = bc.aggregate(&g, &sources, &dists);
        assert!(c[0] > 0.0);
        for (leaf, &centrality) in c.iter().enumerate().take(6).skip(1) {
            assert_eq!(centrality, 0.0, "leaf {leaf}");
        }
    }

    #[test]
    fn forkgraph_and_baseline_agree() {
        let g = gen::rmat(8, 6, 3).with_random_weights(6, 3);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
        );
        let bc = BetweennessCentrality::new(8, 42);
        let fork = bc.run_forkgraph(&pg, EngineConfig::default());
        let driver = FppDriver::new(LigraEngine::new(), Arc::new(g.clone()));
        let base = bc.run_baseline(&driver, ExecutionScheme::InterQuery, &g);
        assert_eq!(fork.sources, base.sources);
        for (a, b) in fork.centrality.iter().zip(base.centrality.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!(fork.measurement.work.edges_processed > 0);
    }
}
