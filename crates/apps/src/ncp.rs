//! Network community profile (NCP).
//!
//! The NCP plots, for every cluster size, the best (lowest) conductance of any
//! cluster of that size. Following Shun et al. and the paper's setup, it is
//! approximated by seeding personalized PageRank at a random sample of vertices
//! (0.01%–0.1% of `|V|`), sweeping each PPR vector, and keeping the minimum
//! conductance per size. The PPR batch is the fork-processing pattern.

use fg_baselines::fpp::{ExecutionScheme, FppDriver, QueryKind};
use fg_baselines::GpsEngine;
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, VertexId};
use fg_metrics::Measurement;
use fg_seq::ppr::PprConfig;
use forkgraph_core::{EngineConfig, ForkGraphEngine};

use crate::conductance::sweep_cut;
use crate::sample_sources;

/// One point of the profile: the best conductance observed for clusters whose
/// size falls in the bucket `[2^i, 2^(i+1))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NcpPoint {
    /// Representative cluster size (lower bound of the bucket).
    pub size: usize,
    /// Best conductance found for this size bucket.
    pub conductance: f64,
}

/// Result of an NCP computation.
#[derive(Clone, Debug)]
pub struct NcpResult {
    /// The profile: best conductance per (log-bucketed) cluster size.
    pub profile: Vec<NcpPoint>,
    /// The PPR seed vertices used.
    pub seeds: Vec<VertexId>,
    /// Measurement of the FPP (PPR batch) part.
    pub measurement: Measurement,
}

impl NcpResult {
    /// Overall best conductance across all sizes.
    pub fn best_conductance(&self) -> f64 {
        self.profile.iter().map(|p| p.conductance).fold(1.0, f64::min)
    }
}

/// The NCP application.
#[derive(Clone, Copy, Debug)]
pub struct NetworkCommunityProfile {
    /// Fraction of the vertices used as PPR seeds (the paper uses 0.01%; the
    /// scaled datasets use a larger fraction to keep the seed count > 1).
    pub seed_fraction: f64,
    /// Minimum number of seeds regardless of the fraction.
    pub min_seeds: usize,
    /// Sampling seed.
    pub seed: u64,
    /// PPR parameters.
    pub ppr: PprConfig,
}

impl NetworkCommunityProfile {
    /// Create the application with the given seeding fraction.
    pub fn new(seed_fraction: f64, seed: u64) -> Self {
        NetworkCommunityProfile {
            seed_fraction,
            min_seeds: 4,
            seed,
            ppr: PprConfig { epsilon: 1e-4, ..Default::default() },
        }
    }

    /// Override the PPR parameters.
    pub fn with_ppr(mut self, ppr: PprConfig) -> Self {
        self.ppr = ppr;
        self
    }

    /// The engine configuration the paper uses for NCP: yielding heuristic 1
    /// with a large threshold (100 µ, Section 6.4) because PPR operations are
    /// cheap and numerous, plus priority-based scheduling on residuals.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig::default()
            .with_yield_policy(forkgraph_core::YieldPolicy::EdgeBudgetAuto { factor: 100.0 })
    }

    /// The PPR seed vertices for `graph`.
    pub fn seeds(&self, graph: &CsrGraph) -> Vec<VertexId> {
        let count = ((graph.num_vertices() as f64 * self.seed_fraction).ceil() as usize)
            .max(self.min_seeds)
            .min(graph.num_vertices());
        sample_sources(graph.num_vertices(), count, self.seed)
    }

    /// Aggregate per-seed PPR vectors into the profile.
    pub fn aggregate(&self, graph: &CsrGraph, estimates: &[Vec<(VertexId, f64)>]) -> Vec<NcpPoint> {
        let mut best_per_bucket: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for est in estimates {
            for (size, phi) in sweep_cut(graph, est) {
                let bucket = size.next_power_of_two().trailing_zeros() as usize;
                best_per_bucket.entry(bucket).and_modify(|b| *b = b.min(phi)).or_insert(phi);
            }
        }
        best_per_bucket
            .into_iter()
            .map(|(bucket, phi)| NcpPoint {
                size: 1usize << bucket.saturating_sub(1),
                conductance: phi,
            })
            .collect()
    }

    /// Run on the ForkGraph engine.
    pub fn run_forkgraph(&self, pg: &PartitionedGraph, config: EngineConfig) -> NcpResult {
        let seeds = self.seeds(pg.graph());
        let engine = ForkGraphEngine::new(pg, config);
        let result = engine.run_ppr(&seeds, &self.ppr);
        let estimates: Vec<Vec<(VertexId, f64)>> =
            result.per_query.iter().map(|s| s.sparse_estimates()).collect();
        let profile = self.aggregate(pg.graph(), &estimates);
        NcpResult { profile, seeds, measurement: result.measurement }
    }

    /// Run on a baseline GPS driver.
    pub fn run_baseline<E: GpsEngine>(
        &self,
        driver: &FppDriver<E>,
        scheme: ExecutionScheme,
        graph: &CsrGraph,
    ) -> NcpResult {
        let seeds = self.seeds(graph);
        let result = driver.run(&QueryKind::Ppr(self.ppr), &seeds, scheme);
        let estimates: Vec<Vec<(VertexId, f64)>> =
            result.outputs.iter().map(|o| o.as_ppr().expect("PPR output").to_vec()).collect();
        let profile = self.aggregate(graph, &estimates);
        NcpResult { profile, seeds, measurement: result.measurement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_baselines::GraphItEngine;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use fg_graph::{gen, GraphBuilder};
    use std::sync::Arc;

    fn clustered_graph() -> CsrGraph {
        // Four 8-vertex cliques connected in a ring by single edges.
        let mut b = GraphBuilder::new(32);
        for c in 0..4u32 {
            let base = c * 8;
            for u in 0..8u32 {
                for v in 0..8u32 {
                    if u != v {
                        b.add_unweighted_edge(base + u, base + v);
                    }
                }
            }
            let next = ((c + 1) % 4) * 8;
            b.add_undirected_edge(base, next, 1);
        }
        b.build()
    }

    #[test]
    fn profile_finds_the_planted_communities() {
        let g = clustered_graph();
        let ncp = NetworkCommunityProfile::new(0.2, 3);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
        );
        let result = ncp.run_forkgraph(&pg, ncp.engine_config());
        assert!(!result.profile.is_empty());
        // The 8-vertex cliques are excellent communities.
        assert!(result.best_conductance() < 0.1, "best {}", result.best_conductance());
    }

    #[test]
    fn forkgraph_and_baseline_profiles_are_similar() {
        let g = clustered_graph();
        let ncp = NetworkCommunityProfile::new(0.15, 9);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
        );
        let fork = ncp.run_forkgraph(&pg, ncp.engine_config());
        let driver = FppDriver::new(GraphItEngine::new(), Arc::new(g.clone()));
        let base = ncp.run_baseline(&driver, ExecutionScheme::IntraQuery, &g);
        assert_eq!(fork.seeds, base.seeds);
        assert!((fork.best_conductance() - base.best_conductance()).abs() < 0.1);
    }

    #[test]
    fn seed_count_respects_fraction_and_minimum() {
        let g = gen::rmat(10, 4, 1);
        let few = NetworkCommunityProfile::new(0.0001, 1);
        assert_eq!(few.seeds(&g).len(), few.min_seeds);
        let more = NetworkCommunityProfile::new(0.01, 1);
        assert_eq!(more.seeds(&g).len(), (g.num_vertices() as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn aggregate_on_empty_estimates_is_empty() {
        let g = gen::path(10);
        let ncp = NetworkCommunityProfile::new(0.1, 1);
        assert!(ncp.aggregate(&g, &[]).is_empty());
    }
}
