//! Landmark labeling (LL).
//!
//! Pre-computes shortest-path distances from a set of landmark vertices by
//! running a batch of SSSPs (the fork-processing pattern, 16–1024 queries in
//! the paper following Akiba et al.), then answers point-to-point distance
//! queries with the landmark upper bound
//! `d(u, v) <= min_l d(l, u) + d(l, v)` (exact when a landmark lies on a
//! shortest path; the graphs used here are symmetric, so `d(l, u) = d(u, l)`).

use fg_baselines::fpp::{ExecutionScheme, FppDriver, QueryKind};
use fg_baselines::GpsEngine;
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};
use fg_metrics::Measurement;
use forkgraph_core::{EngineConfig, ForkGraphEngine};

use crate::sample_sources;

/// The landmark-label index produced by the application.
#[derive(Clone, Debug)]
pub struct LandmarkIndex {
    /// The landmark vertices.
    pub landmarks: Vec<VertexId>,
    /// `distances[i][v]` = distance from landmark `i` to vertex `v`.
    pub distances: Vec<Vec<Dist>>,
}

impl LandmarkIndex {
    /// Upper-bound estimate of `d(u, v)` via the landmarks; [`INF_DIST`] if no
    /// landmark reaches both endpoints.
    pub fn estimate(&self, u: VertexId, v: VertexId) -> Dist {
        let mut best = INF_DIST;
        for dist in &self.distances {
            let du = dist[u as usize];
            let dv = dist[v as usize];
            if du != INF_DIST && dv != INF_DIST {
                best = best.min(du + dv);
            }
        }
        best
    }

    /// Number of labels stored (landmarks × vertices).
    pub fn num_labels(&self) -> usize {
        self.distances.iter().map(|d| d.len()).sum()
    }
}

/// Result of building a landmark-label index.
#[derive(Clone, Debug)]
pub struct LlResult {
    /// The index.
    pub index: LandmarkIndex,
    /// Measurement of the FPP (SSSP batch) part.
    pub measurement: Measurement,
}

/// The landmark-labeling application.
#[derive(Clone, Copy, Debug)]
pub struct LandmarkLabeling {
    /// Number of landmark vertices (16–1024 in the paper).
    pub num_landmarks: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl LandmarkLabeling {
    /// Create the application with `num_landmarks` randomly sampled landmarks.
    pub fn new(num_landmarks: usize, seed: u64) -> Self {
        LandmarkLabeling { num_landmarks, seed }
    }

    /// The landmark vertices for `graph`.
    pub fn landmarks(&self, graph: &CsrGraph) -> Vec<VertexId> {
        sample_sources(graph.num_vertices(), self.num_landmarks, self.seed)
    }

    /// Run on the ForkGraph engine.
    pub fn run_forkgraph(&self, pg: &PartitionedGraph, config: EngineConfig) -> LlResult {
        let landmarks = self.landmarks(pg.graph());
        let engine = ForkGraphEngine::new(pg, config);
        let result = engine.run_sssp(&landmarks);
        LlResult {
            index: LandmarkIndex { landmarks, distances: result.per_query },
            measurement: result.measurement,
        }
    }

    /// Run on a baseline GPS driver.
    pub fn run_baseline<E: GpsEngine>(
        &self,
        driver: &FppDriver<E>,
        scheme: ExecutionScheme,
        graph: &CsrGraph,
    ) -> LlResult {
        let landmarks = self.landmarks(graph);
        let result = driver.run(&QueryKind::Sssp, &landmarks, scheme);
        let distances: Vec<Vec<Dist>> =
            result.outputs.iter().map(|o| o.as_sssp().expect("SSSP output").to_vec()).collect();
        LlResult { index: LandmarkIndex { landmarks, distances }, measurement: result.measurement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_baselines::GeminiEngine;
    use fg_graph::gen;
    use fg_graph::partition::{PartitionConfig, PartitionMethod};
    use std::sync::Arc;

    fn weighted_graph() -> CsrGraph {
        gen::grid2d(14, 14, 0.03, 5).with_random_weights(7, 5)
    }

    #[test]
    fn estimates_upper_bound_true_distances() {
        let g = weighted_graph();
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 5),
        );
        let ll = LandmarkLabeling::new(12, 3);
        let result = ll.run_forkgraph(&pg, EngineConfig::default());
        let truth = fg_seq::dijkstra::dijkstra(&g, 0).dist;
        for v in (0..g.num_vertices() as VertexId).step_by(17) {
            let est = result.index.estimate(0, v);
            if truth[v as usize] == INF_DIST {
                continue;
            }
            assert!(est >= truth[v as usize], "estimate {est} below true {}", truth[v as usize]);
        }
    }

    #[test]
    fn estimate_is_exact_when_endpoint_is_a_landmark() {
        let g = weighted_graph();
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 5),
        );
        let ll = LandmarkLabeling::new(8, 11);
        let result = ll.run_forkgraph(&pg, EngineConfig::default());
        let landmark = result.index.landmarks[0];
        let truth = fg_seq::dijkstra::dijkstra(&g, landmark).dist;
        for v in (0..g.num_vertices() as VertexId).step_by(23) {
            if truth[v as usize] != INF_DIST {
                assert_eq!(result.index.estimate(landmark, v), truth[v as usize]);
            }
        }
    }

    #[test]
    fn forkgraph_and_baseline_build_identical_indices() {
        let g = weighted_graph();
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
        );
        let ll = LandmarkLabeling::new(6, 21);
        let fork = ll.run_forkgraph(&pg, EngineConfig::default());
        let driver = FppDriver::new(GeminiEngine::new(), Arc::new(g.clone()));
        let base = ll.run_baseline(&driver, ExecutionScheme::InterQuery, &g);
        assert_eq!(fork.index.landmarks, base.index.landmarks);
        assert_eq!(fork.index.distances, base.index.distances);
        assert_eq!(fork.index.num_labels(), 6 * g.num_vertices());
    }

    #[test]
    fn more_landmarks_never_worsen_estimates() {
        let g = weighted_graph();
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
        );
        let small = LandmarkLabeling::new(4, 7).run_forkgraph(&pg, EngineConfig::default());
        let mut large_index = small.index.clone();
        let extra = LandmarkLabeling::new(8, 77).run_forkgraph(&pg, EngineConfig::default());
        large_index.landmarks.extend(extra.index.landmarks);
        large_index.distances.extend(extra.index.distances);
        for (u, v) in [(0u32, 50u32), (3, 120), (10, 99)] {
            assert!(large_index.estimate(u, v) <= small.index.estimate(u, v));
        }
    }
}
