//! Measurements bundling time, work, cache behaviour, and memory.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::counters::WorkSnapshot;

/// Cache counters copied from `fg-cachesim` (duplicated here to avoid a
/// circular dependency; conversion helpers live in the engines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheNumbers {
    /// Total simulated LLC accesses.
    pub accesses: u64,
    /// Simulated LLC loads (reads).
    pub loads: u64,
    /// Simulated LLC misses.
    pub misses: u64,
}

impl CacheNumbers {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Approximate memory consumption of an engine run, reproducing Table 3B.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Bytes of graph storage (CSR, including the transpose if built).
    pub graph_bytes: u64,
    /// Bytes of per-query result/state arrays.
    pub query_state_bytes: u64,
    /// Bytes of auxiliary structures (buffers, frontiers, schedulers).
    pub auxiliary_bytes: u64,
}

impl MemoryEstimate {
    /// Total estimated bytes.
    pub fn total_bytes(&self) -> u64 {
        self.graph_bytes + self.query_state_bytes + self.auxiliary_bytes
    }

    /// Total in GiB, convenient for Table 3B style reporting.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

/// Partition-storage numbers of one run: how many partitions hold compressed
/// (delta/varint) adjacency payloads and what the stored bytes amount to,
/// relative to the raw CSR-equivalent encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageNumbers {
    /// Partitions stored as compressed delta/varint payloads.
    pub compressed_partitions: u64,
    /// Total partitions in the store.
    pub total_partitions: u64,
    /// Adjacency bytes of raw-stored partitions (CSR-equivalent form).
    pub payload_bytes_raw: u64,
    /// Encoded adjacency bytes of compressed partitions.
    pub payload_bytes_compressed: u64,
    /// Mean stored adjacency bytes per edge across all partitions.
    pub bytes_per_edge: f64,
}

impl StorageNumbers {
    /// Fraction of partitions stored compressed, in `[0, 1]`.
    pub fn compressed_fraction(&self) -> f64 {
        if self.total_partitions == 0 {
            0.0
        } else {
            self.compressed_partitions as f64 / self.total_partitions as f64
        }
    }
}

/// One engine run's results.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Label, e.g. `"ForkGraph"` or `"Ligra (t=1)"`.
    pub label: String,
    /// Wall-clock execution time.
    pub wall_time: Duration,
    /// Work counters.
    pub work: WorkSnapshot,
    /// Simulated cache counters (if the run was instrumented).
    pub cache: Option<CacheNumbers>,
    /// Approximate memory consumption.
    pub memory: Option<MemoryEstimate>,
    /// Partition-storage numbers (engines with a partition store only).
    #[serde(default)]
    pub storage: Option<StorageNumbers>,
}

impl Measurement {
    /// Create a measurement with just a label and a wall time.
    pub fn new(label: impl Into<String>, wall_time: Duration) -> Self {
        Measurement { label: label.into(), wall_time, ..Default::default() }
    }

    /// Wall time in seconds as a float.
    pub fn seconds(&self) -> f64 {
        self.wall_time.as_secs_f64()
    }

    /// Speedup of this measurement over `baseline` (baseline time / this time).
    pub fn speedup_over(&self, baseline: &Measurement) -> f64 {
        if self.wall_time.as_nanos() == 0 {
            f64::INFINITY
        } else {
            baseline.wall_time.as_secs_f64() / self.wall_time.as_secs_f64()
        }
    }
}

/// Convenience timer that produces a [`Duration`].
#[derive(Debug)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch { start: std::time::Instant::now() }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_numbers_miss_ratio() {
        let c = CacheNumbers { accesses: 10, loads: 8, misses: 4 };
        assert!((c.miss_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(CacheNumbers::default().miss_ratio(), 0.0);
    }

    #[test]
    fn memory_estimate_totals() {
        let m = MemoryEstimate {
            graph_bytes: 1 << 30,
            query_state_bytes: 1 << 29,
            auxiliary_bytes: 1 << 29,
        };
        assert_eq!(m.total_bytes(), 2 << 30);
        assert!((m.total_gib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn storage_numbers_compressed_fraction() {
        let s = StorageNumbers {
            compressed_partitions: 3,
            total_partitions: 4,
            payload_bytes_raw: 1000,
            payload_bytes_compressed: 300,
            bytes_per_edge: 2.5,
        };
        assert!((s.compressed_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(StorageNumbers::default().compressed_fraction(), 0.0);
    }

    #[test]
    fn speedup_computation() {
        let slow = Measurement::new("slow", Duration::from_secs(10));
        let fast = Measurement::new("fast", Duration::from_secs(2));
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn measurement_round_trips_by_value() {
        // The offline serde shim (vendor/serde) has no real serializer, so the
        // JSON round-trip of the original test is not checkable here; clone
        // equality keeps the PartialEq/Clone contract covered instead.
        let m = Measurement::new("x", Duration::from_millis(5));
        let back = m.clone();
        assert_eq!(m, back);
    }
}
