//! Minimal table formatting for the experiment reports emitted by the
//! reproduction harness (`fg-bench`'s `repro` binary).

use serde::{Deserialize, Serialize};

/// A simple rectangular table rendered to GitHub-flavoured Markdown.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (rendered as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each row should have `headers.len()` cells (short rows are padded).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of cells.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len().max(1);
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in 0..cols {
            out.push_str(" --- |");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for c in 0..cols {
                let cell = row.get(c).map(String::as_str).unwrap_or("");
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as comma-separated values (header row included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three significant decimals, trimming trailing noise —
/// good enough for the report tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["system", "time (s)"]);
        t.push_row(["Ligra", "10.0"]);
        t.push_row(["ForkGraph", "0.5"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| system | time (s) |"));
        assert!(md.contains("| ForkGraph | 0.5 |"));
        assert_eq!(md.matches("| --- |").count(), 1);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.push_row(["1"]);
        let md = t.to_markdown();
        assert!(md.contains("| 1 |  |  |"));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.7), "1235");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
    }
}
