//! Lifetime counters for a persistent executor worker pool.
//!
//! [`crate::WorkCounters`] measure *one* engine run; a persistent worker
//! pool (`forkgraph_core::WorkerPool`) lives across many runs, so its
//! health is described by cross-run counters instead: how many OS threads
//! were ever spawned (steady state must stop growing), how many runs were
//! dispatched, how often workers parked/woke between runs, and how often the
//! per-run allocations (partition mailboxes, per-worker scratch buffers) were
//! recycled from the pool's arena versus rebuilt from scratch.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Live counters of a persistent worker pool. All relaxed atomics: they are
/// statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct PoolCounters {
    threads_spawned: AtomicU64,
    dispatches: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    mailboxes_reused: AtomicU64,
    mailboxes_rebuilt: AtomicU64,
    scratch_reused: AtomicU64,
    scratch_rebuilt: AtomicU64,
}

impl PoolCounters {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` OS worker threads spawned (pool creation or growth).
    #[inline]
    pub fn add_threads_spawned(&self, n: u64) {
        self.threads_spawned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one run dispatched onto the pool.
    #[inline]
    pub fn add_dispatch(&self) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one worker parking between runs.
    #[inline]
    pub fn add_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one worker waking up for a dispatched run.
    #[inline]
    pub fn add_unpark(&self) {
        self.unparks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` partition mailboxes recycled from the pool arena.
    #[inline]
    pub fn add_mailboxes_reused(&self, n: u64) {
        self.mailboxes_reused.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` partition mailboxes built fresh for a run.
    #[inline]
    pub fn add_mailboxes_rebuilt(&self, n: u64) {
        self.mailboxes_rebuilt.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one per-worker scratch buffer reused across runs.
    #[inline]
    pub fn add_scratch_reused(&self) {
        self.scratch_reused.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one per-worker scratch buffer (re)built for a run.
    #[inline]
    pub fn add_scratch_rebuilt(&self) {
        self.scratch_rebuilt.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            mailboxes_reused: self.mailboxes_reused.load(Ordering::Relaxed),
            mailboxes_rebuilt: self.mailboxes_rebuilt.load(Ordering::Relaxed),
            scratch_reused: self.scratch_reused.load(Ordering::Relaxed),
            scratch_rebuilt: self.scratch_rebuilt.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of [`PoolCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// OS worker threads ever spawned by the pool. Flat in steady state:
    /// repeated runs at or below the pool's capacity must not move this.
    pub threads_spawned: u64,
    /// Engine runs dispatched onto the pool.
    pub dispatches: u64,
    /// Worker park events between runs (waiting for the next dispatch).
    pub parks: u64,
    /// Worker wake events for a dispatched run.
    pub unparks: u64,
    /// Partition mailboxes recycled from the pool arena.
    pub mailboxes_reused: u64,
    /// Partition mailboxes built fresh (first run, value-type change, or
    /// partition-count growth).
    pub mailboxes_rebuilt: u64,
    /// Per-worker scratch buffers reused across runs.
    pub scratch_reused: u64,
    /// Per-worker scratch buffers (re)built for a run.
    pub scratch_rebuilt: u64,
}

impl PoolSnapshot {
    /// Fraction of per-run mailbox allocations served from the recycle arena,
    /// in `[0, 1]` (0 for an unused pool).
    pub fn mailbox_reuse_rate(&self) -> f64 {
        let total = self.mailboxes_reused + self.mailboxes_rebuilt;
        if total == 0 {
            0.0
        } else {
            self.mailboxes_reused as f64 / total as f64
        }
    }

    /// Fraction of per-worker scratch buffers reused across runs, in
    /// `[0, 1]` (0 for an unused pool).
    pub fn scratch_reuse_rate(&self) -> f64 {
        let total = self.scratch_reused + self.scratch_rebuilt;
        if total == 0 {
            0.0
        } else {
            self.scratch_reused as f64 / total as f64
        }
    }
}

impl fmt::Display for PoolSnapshot {
    /// A compact, human-readable pool health summary (what `examples/serve`
    /// prints). Zero-denominator-safe for an unused pool.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool: {} threads spawned, {} dispatches, {} parks / {} unparks",
            self.threads_spawned, self.dispatches, self.parks, self.unparks
        )?;
        write!(
            f,
            "  reuse: mailboxes {}/{} ({:.1}%), scratch {}/{} ({:.1}%)",
            self.mailboxes_reused,
            self.mailboxes_reused + self.mailboxes_rebuilt,
            100.0 * self.mailbox_reuse_rate(),
            self.scratch_reused,
            self.scratch_reused + self.scratch_rebuilt,
            100.0 * self.scratch_reuse_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = PoolCounters::new();
        c.add_threads_spawned(4);
        c.add_dispatch();
        c.add_dispatch();
        c.add_park();
        c.add_unpark();
        c.add_mailboxes_reused(10);
        c.add_mailboxes_rebuilt(2);
        c.add_scratch_reused();
        c.add_scratch_rebuilt();
        let s = c.snapshot();
        assert_eq!(s.threads_spawned, 4);
        assert_eq!(s.dispatches, 2);
        assert_eq!(s.parks, 1);
        assert_eq!(s.unparks, 1);
        assert_eq!(s.mailboxes_reused, 10);
        assert_eq!(s.mailboxes_rebuilt, 2);
        assert_eq!(s.scratch_reused, 1);
        assert_eq!(s.scratch_rebuilt, 1);
        assert!((s.mailbox_reuse_rate() - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_reuse_rate_is_zero() {
        let s = PoolCounters::new().snapshot();
        assert_eq!(s.mailbox_reuse_rate(), 0.0);
        assert_eq!(s.scratch_reuse_rate(), 0.0);
        assert!(!s.mailbox_reuse_rate().is_nan());
        assert!(!s.scratch_reuse_rate().is_nan());
    }

    #[test]
    fn display_is_compact_and_nan_free_when_empty() {
        let text = format!("{}", PoolSnapshot::default());
        assert!(!text.contains("NaN"), "{text}");
        assert!(text.lines().count() <= 2, "{text}");

        let populated = PoolSnapshot {
            threads_spawned: 4,
            dispatches: 9,
            mailboxes_reused: 10,
            mailboxes_rebuilt: 2,
            ..Default::default()
        };
        let text = format!("{populated}");
        assert!(text.contains("4 threads spawned"), "{text}");
        assert!(text.contains("mailboxes 10/12 (83.3%)"), "{text}");
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = PoolCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        c.add_dispatch();
                    }
                });
            }
        });
        assert_eq!(c.snapshot().dispatches, 2000);
    }
}
