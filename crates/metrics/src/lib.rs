//! # fg-metrics
//!
//! Work counters, timers, and report formatting shared by every engine in the
//! workspace. The paper's evaluation compares systems along three axes —
//! wall-clock time, number of LLC misses, and amount of work (edges/operations
//! processed) — so each engine run produces a [`Measurement`] bundling those
//! quantities.

pub mod counters;
pub mod measurement;
pub mod pool;
pub mod report;
pub mod service;

pub use counters::{WorkCounters, WorkSnapshot, WorkerSnapshot};
pub use measurement::{CacheNumbers, Measurement, MemoryEstimate, Stopwatch, StorageNumbers};
pub use pool::{PoolCounters, PoolSnapshot};
pub use report::Table;
pub use service::{BatchRecord, ServiceCounters, ServiceSnapshot};
