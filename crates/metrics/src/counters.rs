//! Thread-safe work counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Counters updated concurrently by engine worker threads.
///
/// All counters use relaxed atomics: they are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct WorkCounters {
    edges_processed: AtomicU64,
    operations_processed: AtomicU64,
    operations_buffered: AtomicU64,
    operations_pruned: AtomicU64,
    partition_visits: AtomicU64,
    yields: AtomicU64,
    iterations: AtomicU64,
    queries_completed: AtomicU64,
    steals: AtomicU64,
    idle_waits: AtomicU64,
}

impl WorkCounters {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` relaxed/processed edges.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        self.edges_processed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` executed operations (the ⟨q, v, val⟩ triples of the paper).
    #[inline]
    pub fn add_operations(&self, n: u64) {
        self.operations_processed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` operations appended to partition buffers.
    #[inline]
    pub fn add_buffered(&self, n: u64) {
        self.operations_buffered.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` operations discarded by consolidation or priority pruning.
    #[inline]
    pub fn add_pruned(&self, n: u64) {
        self.operations_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one scheduled partition visit.
    #[inline]
    pub fn add_partition_visit(&self) {
        self.partition_visits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one yield (early termination of a query inside a partition).
    #[inline]
    pub fn add_yield(&self) {
        self.yields.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one engine iteration (frontier step or partition drain).
    #[inline]
    pub fn add_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` completed queries.
    #[inline]
    pub fn add_queries_completed(&self, n: u64) {
        self.queries_completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one partition stolen from another worker's runnable set.
    #[inline]
    pub fn add_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one idle wait (a worker parked with no runnable partition).
    #[inline]
    pub fn add_idle_wait(&self) {
        self.idle_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> WorkSnapshot {
        WorkSnapshot {
            edges_processed: self.edges_processed.load(Ordering::Relaxed),
            operations_processed: self.operations_processed.load(Ordering::Relaxed),
            operations_buffered: self.operations_buffered.load(Ordering::Relaxed),
            operations_pruned: self.operations_pruned.load(Ordering::Relaxed),
            partition_visits: self.partition_visits.load(Ordering::Relaxed),
            yields: self.yields.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            queries_completed: self.queries_completed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            idle_waits: self.idle_waits.load(Ordering::Relaxed),
            workers: Vec::new(),
        }
    }
}

/// Per-worker statistics of one parallel engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerSnapshot {
    /// Worker index within the pool.
    pub worker: u32,
    /// Partition visits this worker performed.
    pub visits: u64,
    /// Partitions this worker stole from another worker's runnable set.
    pub steals: u64,
    /// Times this worker parked because no partition was runnable.
    pub idle_waits: u64,
    /// Operations this worker processed.
    pub operations: u64,
}

/// A point-in-time copy of [`WorkCounters`].
///
/// `workers` is populated only by the parallel executor (one entry per pool
/// worker); serial runs leave it empty.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkSnapshot {
    /// Edges relaxed/traversed.
    pub edges_processed: u64,
    /// Operations (⟨q, v, val⟩ triples) executed.
    pub operations_processed: u64,
    /// Operations appended to partition buffers.
    pub operations_buffered: u64,
    /// Operations discarded before execution (consolidation / priority pruning).
    pub operations_pruned: u64,
    /// Partition visits scheduled by the inter-partition scheduler.
    pub partition_visits: u64,
    /// Yields taken by the yielding optimisation.
    pub yields: u64,
    /// Engine iterations (frontier steps for the baselines).
    pub iterations: u64,
    /// Queries completed.
    pub queries_completed: u64,
    /// Partitions claimed from another worker's runnable set (parallel mode).
    pub steals: u64,
    /// Worker park events with no runnable partition (parallel mode).
    pub idle_waits: u64,
    /// Per-worker breakdown (parallel mode; empty for serial runs).
    pub workers: Vec<WorkerSnapshot>,
}

impl WorkSnapshot {
    /// Element-wise sum of two snapshots (per-worker breakdowns concatenate).
    pub fn merge(&self, other: &WorkSnapshot) -> WorkSnapshot {
        let mut workers = self.workers.clone();
        workers.extend(other.workers.iter().copied());
        WorkSnapshot {
            edges_processed: self.edges_processed + other.edges_processed,
            operations_processed: self.operations_processed + other.operations_processed,
            operations_buffered: self.operations_buffered + other.operations_buffered,
            operations_pruned: self.operations_pruned + other.operations_pruned,
            partition_visits: self.partition_visits + other.partition_visits,
            yields: self.yields + other.yields,
            iterations: self.iterations + other.iterations,
            queries_completed: self.queries_completed + other.queries_completed,
            steals: self.steals + other.steals,
            idle_waits: self.idle_waits + other.idle_waits,
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = WorkCounters::new();
        c.add_edges(10);
        c.add_edges(5);
        c.add_operations(3);
        c.add_partition_visit();
        c.add_yield();
        c.add_iteration();
        c.add_queries_completed(2);
        c.add_buffered(7);
        c.add_pruned(1);
        let s = c.snapshot();
        assert_eq!(s.edges_processed, 15);
        assert_eq!(s.operations_processed, 3);
        assert_eq!(s.partition_visits, 1);
        assert_eq!(s.yields, 1);
        assert_eq!(s.iterations, 1);
        assert_eq!(s.queries_completed, 2);
        assert_eq!(s.operations_buffered, 7);
        assert_eq!(s.operations_pruned, 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = WorkCounters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add_edges(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().edges_processed, 8000);
    }

    #[test]
    fn snapshots_merge() {
        let a = WorkSnapshot { edges_processed: 1, partition_visits: 2, ..Default::default() };
        let b = WorkSnapshot { edges_processed: 3, yields: 4, ..Default::default() };
        let m = a.merge(&b);
        assert_eq!(m.edges_processed, 4);
        assert_eq!(m.partition_visits, 2);
        assert_eq!(m.yields, 4);
    }
}
