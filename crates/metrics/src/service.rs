//! Service-level metrics for the `fg-service` query-serving layer.
//!
//! The engine-side [`crate::WorkCounters`] measure one batch run; the serving
//! layer needs cross-batch operational metrics instead: queue depth,
//! admission/shed counts, batch occupancy (how many queries each consolidated
//! engine run carried — the quantity the paper's batching thesis is about),
//! result-cache hit rate, and end-to-end submit→result latency percentiles.
//!
//! All counters are lock-free atomics so the submit path stays cheap; the
//! latency recorder keeps a bounded reservoir behind a mutex taken once per
//! completed query.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Maximum number of latency samples retained; beyond this the recorder
/// overwrites pseudo-randomly (bounded-memory reservoir).
const LATENCY_RESERVOIR: usize = 4096;

/// Maximum number of per-batch sizing records retained (bounded ring).
const BATCH_RECORD_RING: usize = 1024;

/// One dispatched batch's sizing decision: how many queries the batch
/// carried and how many engine workers the adaptive policy chose for it.
/// Retained in a bounded ring so tests (and operators) can audit that the
/// sizing policy was actually applied per batch, not just on average.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Queries consolidated into the batch.
    pub batch_size: u32,
    /// Engine worker threads chosen for the batch's run.
    pub workers: u32,
    /// Identity of the kernel registration the batch ran — for a
    /// multi-kernel run, the *first* (oldest) cohort's registration (`0`
    /// when the serving layer predates kernel ids or did not report one).
    pub kernel_id: u64,
    /// Number of distinct kernel cohorts the run carried. `1` is a classic
    /// single-kernel batch; `>= 2` means heterogeneous cohorts shared one
    /// partition pass (`run_multi`) — the cross-kernel consolidation win.
    pub kernels_in_run: u32,
}

/// Live counters of a running service. Shared between the submit path, the
/// batcher thread, and observers via `Arc`.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Queries offered to `submit` (admitted + rejected).
    pub submitted: AtomicU64,
    /// Queries accepted into the pending queue.
    pub admitted: AtomicU64,
    /// Queries refused with a backpressure error (queue saturated).
    pub rejected: AtomicU64,
    /// Queries answered straight from the result cache.
    pub cache_hits: AtomicU64,
    /// Queries that missed the result cache (went to the engine).
    pub cache_misses: AtomicU64,
    /// Consolidated engine runs dispatched.
    pub batches_dispatched: AtomicU64,
    /// Total queries carried by dispatched batches.
    pub queries_batched: AtomicU64,
    /// Largest single-batch occupancy observed.
    pub max_batch_occupancy: AtomicU64,
    /// Current pending-queue depth.
    pub queue_depth: AtomicU64,
    /// High-water mark of the pending queue.
    pub max_queue_depth: AtomicU64,
    /// Largest worker count any dispatched batch ran with.
    pub max_batch_workers: AtomicU64,
    /// Dispatched runs that consolidated ≥ 2 distinct kernel cohorts.
    pub mixed_runs: AtomicU64,
    /// Edge mutations merged into the served graph at quiesce points.
    pub mutations_applied: AtomicU64,
    /// Cached results evicted because an applied mutation batch could reach
    /// them (mutation-aware invalidation, not capacity pressure).
    pub cache_invalidations: AtomicU64,
    /// Engine runs that resumed from a delta frontier instead of running the
    /// kernel from scratch.
    pub incremental_runs: AtomicU64,
    /// Snapshot epochs published (one per non-empty mutation fold).
    pub epochs_advanced: AtomicU64,
    /// Dirty partitions re-materialized across all epoch advances.
    pub partitions_rematerialized: AtomicU64,
    /// Clean partitions `Arc`-shared with the previous epoch across all
    /// advances (the partial-rebuild win).
    pub partitions_shared: AtomicU64,
    /// Retired epoch snapshots whose storage has been reclaimed.
    pub snapshots_reclaimed: AtomicU64,
    /// Current epoch minus the oldest epoch still pinned by an in-flight run
    /// (a gauge: 0 when every reader is on the newest snapshot).
    pub oldest_pinned_epoch_lag: AtomicU64,
    latencies: Mutex<Vec<Duration>>,
    latency_count: AtomicU64,
    /// Ring of recent per-batch sizing decisions (bounded).
    batch_records: Mutex<Vec<BatchRecord>>,
    batch_record_count: AtomicU64,
}

impl ServiceCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one admitted submission and the resulting queue depth.
    pub fn on_admit(&self, depth_after: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(depth_after as u64, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth_after as u64, Ordering::Relaxed);
    }

    /// Record one submission shed by admission control.
    pub fn on_reject(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache hit (the query never enters the queue).
    pub fn on_cache_hit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss for an admitted query.
    pub fn on_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a dispatched batch of `occupancy` queries, and the queue depth
    /// left behind.
    pub fn on_batch(&self, occupancy: usize, depth_after: usize) {
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.queries_batched.fetch_add(occupancy as u64, Ordering::Relaxed);
        self.max_batch_occupancy.fetch_max(occupancy as u64, Ordering::Relaxed);
        self.queue_depth.store(depth_after as u64, Ordering::Relaxed);
    }

    /// Record the worker count the adaptive sizing policy chose for one
    /// dispatched run of `batch_size` queries across `kernels_in_run`
    /// cohorts, led by kernel `kernel_id`.
    pub fn on_batch_workers(
        &self,
        batch_size: usize,
        workers: usize,
        kernel_id: u64,
        kernels_in_run: usize,
    ) {
        self.max_batch_workers.fetch_max(workers as u64, Ordering::Relaxed);
        if kernels_in_run >= 2 {
            self.mixed_runs.fetch_add(1, Ordering::Relaxed);
        }
        let record = BatchRecord {
            batch_size: batch_size as u32,
            workers: workers as u32,
            kernel_id,
            kernels_in_run: kernels_in_run as u32,
        };
        let n = self.batch_record_count.fetch_add(1, Ordering::Relaxed) as usize;
        let mut ring = self.batch_records.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() < BATCH_RECORD_RING {
            ring.push(record);
        } else {
            ring[n % BATCH_RECORD_RING] = record;
        }
    }

    /// The retained per-batch sizing records (bounded ring; oldest entries
    /// are overwritten once `BATCH_RECORD_RING` batches have been seen).
    pub fn batch_records(&self) -> Vec<BatchRecord> {
        self.batch_records.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Record a quiesce point that merged `count` edge mutations into the
    /// served graph.
    pub fn on_mutations_applied(&self, count: usize) {
        self.mutations_applied.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// Record `count` cached results evicted by mutation-aware invalidation.
    pub fn on_cache_invalidations(&self, count: usize) {
        self.cache_invalidations.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// Record one engine run that restarted from a delta frontier instead of
    /// recomputing from scratch.
    pub fn on_incremental_run(&self) {
        self.incremental_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Sync the epoch counters from the epoch table's own statistics (the
    /// table is the source of truth; the service mirrors it so one snapshot
    /// carries everything). All five values are cumulative totals except
    /// `lag`, which is a point-in-time gauge.
    pub fn sync_epoch_stats(
        &self,
        advanced: u64,
        rematerialized: u64,
        shared: u64,
        reclaimed: u64,
        lag: u64,
    ) {
        self.epochs_advanced.store(advanced, Ordering::Relaxed);
        self.partitions_rematerialized.store(rematerialized, Ordering::Relaxed);
        self.partitions_shared.store(shared, Ordering::Relaxed);
        self.snapshots_reclaimed.store(reclaimed, Ordering::Relaxed);
        self.oldest_pinned_epoch_lag.store(lag, Ordering::Relaxed);
    }

    /// Record one query's end-to-end (submit → result available) latency.
    pub fn record_latency(&self, latency: Duration) {
        let n = self.latency_count.fetch_add(1, Ordering::Relaxed) as usize;
        let mut samples = self.latencies.lock().unwrap_or_else(|p| p.into_inner());
        if samples.len() < LATENCY_RESERVOIR {
            samples.push(latency);
        } else {
            // Cheap deterministic "random" slot: low bits of a Weyl sequence
            // over the sample index keep the reservoir representative enough
            // for p50/p99 without an RNG dependency.
            let slot = (n.wrapping_mul(0x9E37_79B9)) % LATENCY_RESERVOIR;
            samples[slot] = latency;
        }
    }

    /// Consistent point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let samples = {
            let guard = self.latencies.lock().unwrap_or_else(|p| p.into_inner());
            let mut s: Vec<Duration> = guard.clone();
            s.sort_unstable();
            s
        };
        let percentile = |p: f64| -> Duration {
            if samples.is_empty() {
                Duration::ZERO
            } else {
                let idx = ((samples.len() - 1) as f64 * p).round() as usize;
                samples[idx]
            }
        };
        ServiceSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            queries_batched: self.queries_batched.load(Ordering::Relaxed),
            max_batch_occupancy: self.max_batch_occupancy.load(Ordering::Relaxed),
            max_batch_workers: self.max_batch_workers.load(Ordering::Relaxed),
            mixed_runs: self.mixed_runs.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            incremental_runs: self.incremental_runs.load(Ordering::Relaxed),
            epochs_advanced: self.epochs_advanced.load(Ordering::Relaxed),
            partitions_rematerialized: self.partitions_rematerialized.load(Ordering::Relaxed),
            partitions_shared: self.partitions_shared.load(Ordering::Relaxed),
            snapshots_reclaimed: self.snapshots_reclaimed.load(Ordering::Relaxed),
            oldest_pinned_epoch_lag: self.oldest_pinned_epoch_lag.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            latency_p50: percentile(0.50),
            latency_p99: percentile(0.99),
            latency_samples: samples.len() as u64,
        }
    }
}

/// Immutable snapshot of [`ServiceCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub batches_dispatched: u64,
    pub queries_batched: u64,
    pub max_batch_occupancy: u64,
    /// Largest engine worker count any batch ran with (adaptive sizing).
    pub max_batch_workers: u64,
    /// Dispatched runs that carried ≥ 2 distinct kernel cohorts
    /// (heterogeneous `run_multi` consolidation).
    pub mixed_runs: u64,
    /// Edge mutations merged into the served graph at quiesce points.
    pub mutations_applied: u64,
    /// Cached results evicted by mutation-aware invalidation.
    pub cache_invalidations: u64,
    /// Engine runs resumed from a delta frontier instead of from scratch.
    pub incremental_runs: u64,
    /// Snapshot epochs published (one per non-empty mutation fold).
    pub epochs_advanced: u64,
    /// Dirty partitions re-materialized across all epoch advances.
    pub partitions_rematerialized: u64,
    /// Clean partitions `Arc`-shared with the previous epoch across all
    /// advances.
    pub partitions_shared: u64,
    /// Retired epoch snapshots whose storage has been reclaimed.
    pub snapshots_reclaimed: u64,
    /// Current epoch minus the oldest epoch still pinned (gauge).
    pub oldest_pinned_epoch_lag: u64,
    pub queue_depth: u64,
    pub max_queue_depth: u64,
    /// Median submit→result latency over the retained reservoir.
    pub latency_p50: Duration,
    /// 99th-percentile submit→result latency over the retained reservoir.
    pub latency_p99: Duration,
    /// Number of latency samples the percentiles are computed from.
    pub latency_samples: u64,
}

impl ServiceSnapshot {
    /// Mean queries per dispatched batch (the consolidation win).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_dispatched == 0 {
            0.0
        } else {
            self.queries_batched as f64 / self.batches_dispatched as f64
        }
    }

    /// Fraction of dispatched runs that consolidated ≥ 2 distinct kernel
    /// cohorts into one shared partition pass, in `[0, 1]`. The
    /// cross-kernel amortisation rate: `0.0` means every run was a classic
    /// single-kernel batch.
    pub fn mixed_run_rate(&self) -> f64 {
        if self.batches_dispatched == 0 {
            0.0
        } else {
            self.mixed_runs as f64 / self.batches_dispatched as f64
        }
    }

    /// Cache hit rate in `[0, 1]` over queries that consulted the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of partition slots re-materialized (vs `Arc`-shared) across
    /// all epoch advances, in `[0, 1]`. `1.0` would mean every advance
    /// rebuilt every partition — the old full-quiesce behaviour; localized
    /// mutation workloads should sit well below it. Zero-denominator-safe.
    pub fn dirty_rematerialize_frac(&self) -> f64 {
        let total = self.partitions_rematerialized + self.partitions_shared;
        if total == 0 {
            0.0
        } else {
            self.partitions_rematerialized as f64 / total as f64
        }
    }
}

impl fmt::Display for ServiceSnapshot {
    /// A compact, human-readable operational summary (what `examples/serve`
    /// prints). One screen; every rate is zero-denominator-safe.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service: {} submitted ({} admitted, {} rejected), queue {} (max {})",
            self.submitted, self.admitted, self.rejected, self.queue_depth, self.max_queue_depth
        )?;
        writeln!(
            f,
            "  cache  : {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate()
        )?;
        writeln!(
            f,
            "  batches: {} runs, {} queries (mean {:.1}/batch, max {}, workers <= {})",
            self.batches_dispatched,
            self.queries_batched,
            self.mean_batch_occupancy(),
            self.max_batch_occupancy,
            self.max_batch_workers
        )?;
        writeln!(
            f,
            "  mixed  : {} multi-kernel runs ({:.1}% of runs)",
            self.mixed_runs,
            100.0 * self.mixed_run_rate()
        )?;
        writeln!(
            f,
            "  dynamic: {} mutations applied, {} invalidations, {} incremental runs",
            self.mutations_applied, self.cache_invalidations, self.incremental_runs
        )?;
        writeln!(
            f,
            "  epochs : {} advanced ({} rematerialized / {} shared, {:.1}% dirty), \
             {} reclaimed, pin lag {}",
            self.epochs_advanced,
            self.partitions_rematerialized,
            self.partitions_shared,
            100.0 * self.dirty_rematerialize_frac(),
            self.snapshots_reclaimed,
            self.oldest_pinned_epoch_lag
        )?;
        write!(
            f,
            "  latency: p50 {:.3?}, p99 {:.3?} ({} samples)",
            self.latency_p50, self.latency_p99, self.latency_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ServiceCounters::new();
        c.on_cache_hit();
        c.on_admit(1);
        c.on_cache_miss();
        c.on_admit(2);
        c.on_cache_miss();
        c.on_reject();
        c.on_batch(2, 0);
        let s = c.snapshot();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.batches_dispatched, 1);
        assert_eq!(s.queries_batched, 2);
        assert_eq!(s.max_batch_occupancy, 2);
        assert_eq!(s.max_queue_depth, 2);
        assert_eq!(s.queue_depth, 0);
        assert!((s.mean_batch_occupancy() - 2.0).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mutation_counters_accumulate() {
        let c = ServiceCounters::new();
        c.on_mutations_applied(3);
        c.on_mutations_applied(2);
        c.on_cache_invalidations(7);
        c.on_incremental_run();
        let s = c.snapshot();
        assert_eq!(s.mutations_applied, 5);
        assert_eq!(s.cache_invalidations, 7);
        assert_eq!(s.incremental_runs, 1);
        let text = format!("{s}");
        assert!(text.contains("5 mutations applied"), "{text}");
    }

    #[test]
    fn epoch_stats_sync_and_rate() {
        let c = ServiceCounters::new();
        c.sync_epoch_stats(4, 6, 10, 3, 1);
        let s = c.snapshot();
        assert_eq!(s.epochs_advanced, 4);
        assert_eq!(s.partitions_rematerialized, 6);
        assert_eq!(s.partitions_shared, 10);
        assert_eq!(s.snapshots_reclaimed, 3);
        assert_eq!(s.oldest_pinned_epoch_lag, 1);
        assert!((s.dirty_rematerialize_frac() - 6.0 / 16.0).abs() < 1e-12);
        let text = format!("{s}");
        assert!(text.contains("4 advanced"), "{text}");
        assert!(text.contains("37.5% dirty"), "{text}");
        // Sync is a mirror, not an accumulator: re-syncing overwrites.
        c.sync_epoch_stats(5, 7, 13, 3, 0);
        assert_eq!(c.snapshot().epochs_advanced, 5);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let c = ServiceCounters::new();
        for ms in 1..=100u64 {
            c.record_latency(Duration::from_millis(ms));
        }
        let s = c.snapshot();
        assert_eq!(s.latency_samples, 100);
        assert!(s.latency_p50 >= Duration::from_millis(45));
        assert!(s.latency_p50 <= Duration::from_millis(55));
        assert!(s.latency_p99 >= s.latency_p50);
        assert!(s.latency_p99 >= Duration::from_millis(95));
    }

    #[test]
    fn latency_reservoir_is_bounded() {
        let c = ServiceCounters::new();
        for i in 0..10_000u64 {
            c.record_latency(Duration::from_micros(i));
        }
        let s = c.snapshot();
        assert!(s.latency_samples <= LATENCY_RESERVOIR as u64);
        assert!(s.latency_p99 >= s.latency_p50);
    }

    #[test]
    fn batch_records_are_retained_and_bounded() {
        let c = ServiceCounters::new();
        c.on_batch_workers(2, 1, 1, 1);
        c.on_batch_workers(64, 8, 17, 3);
        let records = c.batch_records();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            BatchRecord { batch_size: 2, workers: 1, kernel_id: 1, kernels_in_run: 1 }
        );
        assert_eq!(
            records[1],
            BatchRecord { batch_size: 64, workers: 8, kernel_id: 17, kernels_in_run: 3 }
        );
        assert_eq!(c.snapshot().max_batch_workers, 8);
        for _ in 0..2 * BATCH_RECORD_RING {
            c.on_batch_workers(4, 2, 1, 1);
        }
        assert_eq!(c.batch_records().len(), BATCH_RECORD_RING);
    }

    #[test]
    fn mixed_run_rate_counts_multi_cohort_runs() {
        let c = ServiceCounters::new();
        assert_eq!(c.snapshot().mixed_run_rate(), 0.0, "no runs yet");
        c.on_batch(3, 0);
        c.on_batch_workers(3, 2, 1, 1);
        c.on_batch(5, 0);
        c.on_batch_workers(5, 2, 1, 2);
        c.on_batch(6, 0);
        c.on_batch_workers(6, 4, 9, 3);
        let s = c.snapshot();
        assert_eq!(s.mixed_runs, 2);
        assert_eq!(s.batches_dispatched, 3);
        assert!((s.mixed_run_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = ServiceCounters::new().snapshot();
        assert_eq!(s.latency_p50, Duration::ZERO);
        assert_eq!(s.mean_batch_occupancy(), 0.0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    /// Pins the zero-denominator contract of every rate accessor: a
    /// fresh/idle service must report clean zeros, never NaN (NaN poisons
    /// comparisons, JSON serialisation, and the Prometheus exposition).
    #[test]
    fn rate_accessors_return_zero_not_nan_on_zero_denominators() {
        let s = ServiceSnapshot::default();
        for rate in [
            s.mean_batch_occupancy(),
            s.mixed_run_rate(),
            s.cache_hit_rate(),
            s.dirty_rematerialize_frac(),
        ] {
            assert!(!rate.is_nan());
            assert_eq!(rate, 0.0);
        }
        // Partially-populated snapshots with a zero denominator stay safe:
        // mixed_runs without dispatches (impossible live, possible in
        // hand-built snapshots) must not divide by zero.
        let s = ServiceSnapshot { mixed_runs: 3, cache_hits: 5, ..Default::default() };
        assert_eq!(s.mixed_run_rate(), 0.0);
        assert_eq!(s.mean_batch_occupancy(), 0.0);
        assert!((s.cache_hit_rate() - 1.0).abs() < 1e-12, "hits with no misses is a 100% rate");
    }

    #[test]
    fn display_is_compact_and_nan_free_when_empty() {
        let text = format!("{}", ServiceSnapshot::default());
        assert!(!text.contains("NaN"), "{text}");
        assert!(text.lines().count() <= 7, "{text}");
        assert!(text.contains("0 submitted"), "{text}");
        assert!(text.contains("pin lag 0"), "{text}");

        let populated = ServiceSnapshot {
            submitted: 10,
            admitted: 8,
            rejected: 2,
            cache_hits: 4,
            cache_misses: 4,
            batches_dispatched: 2,
            queries_batched: 8,
            mixed_runs: 1,
            ..Default::default()
        };
        let text = format!("{populated}");
        assert!(text.contains("10 submitted (8 admitted, 2 rejected)"), "{text}");
        assert!(text.contains("50.0% hit rate"), "{text}");
        assert!(text.contains("mean 4.0/batch"), "{text}");
    }
}
