//! Per-partition adjacency payload storage: raw CSR slices or delta/varint
//! compressed bytes, behind one enum.
//!
//! The paper sizes partitions to the LLC so a fork-processing pass stays
//! cache-resident; the same discipline extends one level down — fewer **bytes
//! per edge** means more of each partition fits per cache line and more
//! partitions fit in the LLC at once. This module gives every
//! [`crate::partitioned::PartitionStore`] a choice of on-heap representation:
//!
//! * [`PartitionPayload::Raw`] — the edge triples exactly as before
//!   (12 bytes/edge), zero decode cost.
//! * [`PartitionPayload::Compressed`] — per-vertex adjacency encoded as
//!   LEB128 varints: a degree prefix, then the sorted targets as deltas
//!   (first target absolute, subsequent targets as strictly positive gaps),
//!   with weights varint-interleaved when the graph is weighted. On the
//!   power-law and lattice graphs in this workspace that lands at 2–4
//!   bytes/edge.
//!
//! Which representation a partition gets is policy-driven ([`StorageConfig`]
//! on [`crate::partition::PartitionConfig`]), decided at store build time and
//! preserved across epoch re-materialisation: a dirty-partition rebuild
//! re-encodes only the dirty stores, clean compressed stores stay
//! `Arc`-shared.
//!
//! Kernels never materialise a compressed partition: they read adjacency
//! through [`AdjacencyView`], whose iterators either borrow the monolithic
//! CSR slices (raw partitions — identical code path to before this module
//! existed) or stream-decode the varint bytes in place (compressed
//! partitions).

use serde::{Deserialize, Serialize};

use crate::{CsrGraph, Edge, VertexId, Weight};

/// Per-partition storage policy, carried by
/// [`crate::partition::PartitionConfig`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageConfig {
    /// Keep every partition's edges as raw triples (the pre-compression
    /// representation; zero decode cost).
    #[default]
    Raw,
    /// Delta/varint-encode every partition.
    Compressed,
    /// Compress a partition only when its raw adjacency footprint is at
    /// least `min_bytes`; tiny partitions stay raw so their visits pay no
    /// decode cost for a handful of cache lines saved.
    Adaptive {
        /// Raw-footprint threshold (bytes) at which a partition is encoded.
        min_bytes: usize,
    },
}

impl StorageConfig {
    /// Whether a partition whose raw adjacency occupies `raw_bytes` should be
    /// stored compressed under this policy.
    pub fn wants_compression(&self, raw_bytes: usize) -> bool {
        match *self {
            StorageConfig::Raw => false,
            StorageConfig::Compressed => true,
            StorageConfig::Adaptive { min_bytes } => raw_bytes >= min_bytes,
        }
    }
}

/// Append `value` to `buf` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        buf.push((value as u8 & 0x7f) | 0x80);
        value >>= 7;
    }
    buf.push(value as u8);
}

/// Read one LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    // Single-byte fast path: the overwhelmingly common case for gap-encoded
    // adjacency (gaps within an LLC-sized partition are small).
    let b = bytes[*pos];
    *pos += 1;
    if b < 0x80 {
        return b as u64;
    }
    let mut value = (b & 0x7f) as u64;
    let mut shift = 7u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        value |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return value;
        }
        shift += 7;
    }
}

/// One partition's adjacency, delta/varint-encoded.
///
/// Layout: `offsets[i]..offsets[i+1]` delimits the byte run of the
/// partition's `i`-th vertex (ascending order of its global vertex ids).
/// Each run is `varint(degree)`, then per edge `varint(target delta)`
/// (+ `varint(weight)` when weighted). The first delta is the absolute
/// target id; subsequent deltas are gaps between consecutive sorted targets,
/// strictly positive under the CSR contract (per-vertex targets strictly
/// increasing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedEdges {
    /// Byte offsets into `bytes`, one per local vertex plus a final sentinel.
    offsets: Vec<u32>,
    /// The varint payload.
    bytes: Vec<u8>,
    /// Total edges encoded (sum of all degree prefixes).
    num_edges: usize,
    /// Whether weights are interleaved after each target delta.
    weighted: bool,
}

impl CompressedEdges {
    /// Encode a partition's edge segment. `vertices` are the partition's
    /// global vertex ids (ascending) and `edges` their out-edges grouped by
    /// source in that order with targets sorted per source — the
    /// [`CsrGraph::from_edge_segments`] contract every
    /// [`crate::partitioned::PartitionStore`] already satisfies.
    pub fn encode(vertices: &[VertexId], edges: &[Edge], weighted: bool) -> Self {
        let mut offsets = Vec::with_capacity(vertices.len() + 1);
        let mut bytes = Vec::new();
        offsets.push(0u32);
        let mut i = 0usize;
        for &v in vertices {
            let start = i;
            while i < edges.len() && edges[i].0 == v {
                i += 1;
            }
            let segment = &edges[start..i];
            write_varint(&mut bytes, segment.len() as u64);
            let mut prev: VertexId = 0;
            for &(_, t, w) in segment {
                debug_assert!(prev <= t, "targets must be sorted per source");
                write_varint(&mut bytes, (t - prev) as u64);
                if weighted {
                    write_varint(&mut bytes, w as u64);
                }
                prev = t;
            }
            offsets.push(u32::try_from(bytes.len()).expect("partition payload exceeds 4 GiB"));
        }
        debug_assert_eq!(i, edges.len(), "edges not grouped by the vertex list");
        bytes.shrink_to_fit();
        CompressedEdges { offsets, bytes, num_edges: edges.len(), weighted }
    }

    /// Number of edges encoded.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether weights are interleaved.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Actual on-heap payload size: varint bytes plus the offsets array.
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Decoded out-degree of the partition's `local`-th vertex.
    #[inline]
    pub fn degree(&self, local: usize) -> usize {
        let mut pos = self.offsets[local] as usize;
        read_varint(&self.bytes, &mut pos) as usize
    }

    /// Byte range (within this payload) occupied by the `local`-th vertex's
    /// run — what a decode-on-visit actually touches, used by the cache
    /// simulator to model compressed adjacency scans.
    #[inline]
    pub fn byte_range(&self, local: usize) -> (u64, u64) {
        (self.offsets[local] as u64, self.offsets[local + 1] as u64)
    }

    /// Stream-decode the `local`-th vertex's `(target, weight)` pairs.
    /// Unweighted payloads yield weight 1, mirroring [`CsrGraph::out_edges`].
    #[inline]
    pub fn out_edges(&self, local: usize) -> CompressedOutEdges<'_> {
        let mut pos = self.offsets[local] as usize;
        let degree = read_varint(&self.bytes, &mut pos) as usize;
        CompressedOutEdges {
            bytes: &self.bytes,
            pos,
            remaining: degree,
            prev: 0,
            weighted: self.weighted,
        }
    }

    /// Decode the whole partition back to `(source, target, weight)` triples
    /// in segment order. `vertices` must be the same list the payload was
    /// encoded with. Used for epoch folds and monolithic CSR assembly; the
    /// result is transient — visits stream-decode instead.
    pub fn decode_edges(&self, vertices: &[VertexId]) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (local, &v) in vertices.iter().enumerate() {
            for (t, w) in self.out_edges(local) {
                out.push((v, t, w));
            }
        }
        out
    }
}

/// Streaming decoder over one vertex's compressed adjacency run.
#[derive(Clone, Debug)]
pub struct CompressedOutEdges<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: VertexId,
    weighted: bool,
}

impl Iterator for CompressedOutEdges<'_> {
    type Item = (VertexId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, Weight)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let delta = read_varint(self.bytes, &mut self.pos) as VertexId;
        let target = self.prev + delta;
        self.prev = target;
        let weight =
            if self.weighted { read_varint(self.bytes, &mut self.pos) as Weight } else { 1 };
        Some((target, weight))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for CompressedOutEdges<'_> {}

/// One partition's edge storage: the representation an individual
/// [`crate::partitioned::PartitionStore`] actually holds on the heap.
#[derive(Clone, Debug)]
pub enum PartitionPayload {
    /// Edge triples exactly as collected (source-grouped, target-sorted).
    Raw(Vec<Edge>),
    /// Delta/varint-encoded adjacency; sources are implied by the store's
    /// vertex list.
    Compressed(CompressedEdges),
}

impl PartitionPayload {
    /// Whether this payload is compressed.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        matches!(self, PartitionPayload::Compressed(_))
    }

    /// Actual on-heap bytes of the payload (what the footprint accounting
    /// reports).
    pub fn payload_bytes(&self) -> usize {
        match self {
            PartitionPayload::Raw(edges) => edges.len() * std::mem::size_of::<Edge>(),
            PartitionPayload::Compressed(c) => c.payload_bytes(),
        }
    }
}

/// Read access to one partition's adjacency — the first argument of every
/// [`fg-core` kernel's] `process` hook.
///
/// [`fg-core` kernel's]: https://docs.rs/fg-core
///
/// For raw partitions (and for unpartitioned unit-test graphs via
/// [`AdjacencyView::from_csr`]) every accessor forwards to the monolithic
/// [`CsrGraph`] slices, so the pre-compression code path is unchanged. For
/// compressed partitions the accessors stream-decode the varint payload in
/// place; vertices outside the view's partition fall back to the CSR, so a
/// view is always total over the graph.
#[derive(Clone, Copy, Debug)]
pub struct AdjacencyView<'a> {
    graph: &'a CsrGraph,
    compressed: Option<(&'a [VertexId], &'a CompressedEdges)>,
}

impl<'a> AdjacencyView<'a> {
    /// A raw view over the whole graph (every accessor forwards to the CSR).
    #[inline]
    pub fn from_csr(graph: &'a CsrGraph) -> Self {
        AdjacencyView { graph, compressed: None }
    }

    /// A view that decodes `payload` for the partition whose (ascending)
    /// global vertex ids are `vertices`, falling back to `graph` elsewhere.
    #[inline]
    pub fn compressed(
        graph: &'a CsrGraph,
        vertices: &'a [VertexId],
        payload: &'a CompressedEdges,
    ) -> Self {
        AdjacencyView { graph, compressed: Some((vertices, payload)) }
    }

    /// Whether visits through this view decode compressed bytes.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        self.compressed.is_some()
    }

    /// The monolithic CSR behind this view (for state sizing; adjacency reads
    /// should go through the view's own accessors).
    #[inline]
    pub fn csr(&self) -> &'a CsrGraph {
        self.graph
    }

    /// Local index of `v` within the compressed partition, if this view is
    /// compressed and `v` belongs to it.
    #[inline]
    fn local_of(&self, v: VertexId) -> Option<(usize, &'a CompressedEdges)> {
        let (vertices, payload) = self.compressed?;
        vertices.binary_search(&v).ok().map(|local| (local, payload))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        match self.local_of(v) {
            Some((local, payload)) => payload.degree(local),
            None => self.graph.out_degree(v),
        }
    }

    /// Iterate `(target, weight)` pairs of `v`'s out-edges; unweighted graphs
    /// yield weight 1 (the [`CsrGraph::out_edges`] contract).
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> OutEdges<'a> {
        match self.local_of(v) {
            Some((local, payload)) => OutEdges::Compressed(payload.out_edges(local)),
            None => OutEdges::Raw {
                targets: self.graph.out_neighbors(v),
                weights: self.graph.out_weights(v),
                i: 0,
            },
        }
    }

    /// Iterate `v`'s out-neighbours by value.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> OutNeighbors<'a> {
        OutNeighbors(self.out_edges(v))
    }

    /// The `i`-th out-neighbour of `v` (panics if `i >= out_degree(v)`,
    /// matching slice indexing). O(1) on raw views, O(i) decode on compressed
    /// ones — used by random-walk kernels that sample a neighbour by index.
    #[inline]
    pub fn neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        match self.local_of(v) {
            Some((local, payload)) => payload
                .out_edges(local)
                .nth(i)
                .map(|(t, _)| t)
                .expect("neighbor index out of bounds"),
            None => self.graph.out_neighbors(v)[i],
        }
    }

    /// For compressed views: the payload byte range `v`'s decode touches,
    /// plus `v`'s local index (cache-simulator instrumentation). `None` on
    /// raw views or for vertices outside the partition.
    #[inline]
    pub fn decode_byte_range(&self, v: VertexId) -> Option<(u64, u64)> {
        self.local_of(v).map(|(local, payload)| payload.byte_range(local))
    }
}

/// Iterator over `(target, weight)` pairs of one vertex's out-edges through
/// an [`AdjacencyView`].
#[derive(Clone, Debug)]
pub enum OutEdges<'a> {
    /// Borrowed CSR slices (raw partitions / whole-graph views).
    Raw {
        /// Targets slice of the vertex.
        targets: &'a [VertexId],
        /// Parallel weights, absent on unweighted graphs.
        weights: Option<&'a [Weight]>,
        /// Cursor.
        i: usize,
    },
    /// Streaming varint decode (compressed partitions).
    Compressed(CompressedOutEdges<'a>),
}

impl Iterator for OutEdges<'_> {
    type Item = (VertexId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, Weight)> {
        match self {
            OutEdges::Raw { targets, weights, i } => {
                let t = *targets.get(*i)?;
                let w = weights.map_or(1, |w| w[*i]);
                *i += 1;
                Some((t, w))
            }
            OutEdges::Compressed(inner) => inner.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            OutEdges::Raw { targets, i, .. } => {
                let n = targets.len() - *i;
                (n, Some(n))
            }
            OutEdges::Compressed(inner) => inner.size_hint(),
        }
    }
}

impl ExactSizeIterator for OutEdges<'_> {}

/// Iterator over one vertex's out-neighbours (by value) through an
/// [`AdjacencyView`].
#[derive(Clone, Debug)]
pub struct OutNeighbors<'a>(OutEdges<'a>);

impl Iterator for OutNeighbors<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        self.0.next().map(|(t, _)| t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for OutNeighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn varint_round_trips_edge_values() {
        let mut buf = Vec::new();
        let values =
            [0u64, 1, 5, 127, 128, 129, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX >> 1];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    fn partition_fixture(weighted: bool) -> (Vec<VertexId>, Vec<Edge>) {
        let g = if weighted { gen::rmat(8, 6, 5).into_weighted(8) } else { gen::rmat(8, 6, 5) };
        // "Partition" = every third vertex, exercising non-contiguous ids.
        let vertices: Vec<VertexId> =
            (0..g.num_vertices() as VertexId).filter(|v| v % 3 == 1).collect();
        let mut edges = Vec::new();
        for &v in &vertices {
            edges.extend(g.out_edges(v).map(|(t, w)| (v, t, w)));
        }
        (vertices, edges)
    }

    #[test]
    fn encode_decode_round_trips() {
        for weighted in [false, true] {
            let (vertices, edges) = partition_fixture(weighted);
            let c = CompressedEdges::encode(&vertices, &edges, weighted);
            assert_eq!(c.num_edges(), edges.len());
            assert_eq!(c.decode_edges(&vertices), edges, "weighted={weighted}");
        }
    }

    #[test]
    fn streaming_iterator_matches_segment() {
        let (vertices, edges) = partition_fixture(true);
        let c = CompressedEdges::encode(&vertices, &edges, true);
        let mut cursor = 0usize;
        for (local, &v) in vertices.iter().enumerate() {
            let decoded: Vec<(VertexId, Weight)> = c.out_edges(local).collect();
            assert_eq!(decoded.len(), c.degree(local));
            for (t, w) in decoded {
                assert_eq!(edges[cursor], (v, t, w));
                cursor += 1;
            }
        }
        assert_eq!(cursor, edges.len());
    }

    #[test]
    fn compression_beats_raw_bytes_on_real_graphs() {
        let (vertices, edges) = partition_fixture(true);
        let c = CompressedEdges::encode(&vertices, &edges, true);
        let raw_bytes = edges.len() * std::mem::size_of::<Edge>();
        assert!(
            c.payload_bytes() * 2 < raw_bytes,
            "compressed {} vs raw {raw_bytes}",
            c.payload_bytes()
        );
    }

    #[test]
    fn empty_and_isolated_vertices_encode() {
        let c = CompressedEdges::encode(&[], &[], false);
        assert_eq!(c.num_edges(), 0);
        assert!(c.decode_edges(&[]).is_empty());
        // Vertices with no out-edges get a lone zero-degree prefix.
        let vertices = vec![3u32, 7, 9];
        let edges: Vec<Edge> = vec![(7, 1, 2), (7, 4, 1)];
        let c = CompressedEdges::encode(&vertices, &edges, true);
        assert_eq!(c.degree(0), 0);
        assert_eq!(c.degree(1), 2);
        assert_eq!(c.degree(2), 0);
        assert_eq!(c.decode_edges(&vertices), edges);
    }

    #[test]
    fn view_raw_and_compressed_agree() {
        let g = gen::rmat(8, 6, 5).into_weighted(8);
        let vertices: Vec<VertexId> =
            (0..g.num_vertices() as VertexId).filter(|v| v % 2 == 0).collect();
        let mut edges = Vec::new();
        for &v in &vertices {
            edges.extend(g.out_edges(v).map(|(t, w)| (v, t, w)));
        }
        let c = CompressedEdges::encode(&vertices, &edges, true);
        let raw = AdjacencyView::from_csr(&g);
        let comp = AdjacencyView::compressed(&g, &vertices, &c);
        assert!(!raw.is_compressed() && comp.is_compressed());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(raw.out_degree(v), comp.out_degree(v), "degree of {v}");
            let a: Vec<_> = raw.out_edges(v).collect();
            let b: Vec<_> = comp.out_edges(v).collect();
            assert_eq!(a, b, "edges of {v}");
            let na: Vec<_> = raw.out_neighbors(v).collect();
            let nb: Vec<_> = comp.out_neighbors(v).collect();
            assert_eq!(na, nb, "neighbors of {v}");
            for i in 0..raw.out_degree(v) {
                assert_eq!(raw.neighbor_at(v, i), comp.neighbor_at(v, i));
            }
            // In-partition vertices expose a decode byte range, others don't.
            assert_eq!(comp.decode_byte_range(v).is_some(), v % 2 == 0);
            assert!(raw.decode_byte_range(v).is_none());
        }
    }

    #[test]
    fn storage_config_policy() {
        assert!(!StorageConfig::Raw.wants_compression(usize::MAX));
        assert!(StorageConfig::Compressed.wants_compression(0));
        let adaptive = StorageConfig::Adaptive { min_bytes: 1024 };
        assert!(!adaptive.wants_compression(1023));
        assert!(adaptive.wants_compression(1024));
        assert_eq!(StorageConfig::default(), StorageConfig::Raw);
    }
}
