//! Graph partitioning.
//!
//! ForkGraph divides the graph into LLC-sized partitions (`|P| =
//! graph.size / LLC.size`, Section 6.1 of the paper). The paper pre-processes
//! graphs with METIS for road/citation/web graphs and falls back to random
//! partitioning for large social networks. This module provides:
//!
//! * [`PartitionMethod::Random`] — uniform random vertex assignment,
//! * [`PartitionMethod::Hash`] — deterministic hash assignment (stands in for
//!   GridGraph-style partitioning in the partition-method comparison),
//! * [`PartitionMethod::Chunked`] — contiguous vertex ranges balanced by edge
//!   count (Gemini's lightweight partitioning),
//! * [`PartitionMethod::BfsGrow`] — region growing from seeds, a cheap
//!   locality-aware partitioner,
//! * [`PartitionMethod::Multilevel`] — a METIS-like multilevel edge-cut
//!   partitioner (heavy-edge-matching coarsening, region-growing initial
//!   partitioning, greedy boundary refinement).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::payload::StorageConfig;
use crate::{CsrGraph, VertexId};

/// Identifier of a partition within a [`PartitionPlan`].
pub type PartitionId = u32;

/// The partitioning algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionMethod {
    /// Uniform random assignment (used by the paper for large social graphs).
    Random,
    /// Deterministic hash of the vertex id.
    Hash,
    /// Contiguous vertex ranges balanced by out-degree sum (Gemini-style).
    Chunked,
    /// BFS region growing from evenly spaced seeds.
    BfsGrow,
    /// METIS-like multilevel edge-cut partitioning (default).
    Multilevel,
}

impl PartitionMethod {
    /// All methods, for sweeps in the evaluation harness.
    pub fn all() -> [PartitionMethod; 5] {
        [
            PartitionMethod::Random,
            PartitionMethod::Hash,
            PartitionMethod::Chunked,
            PartitionMethod::BfsGrow,
            PartitionMethod::Multilevel,
        ]
    }

    /// Short human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionMethod::Random => "random",
            PartitionMethod::Hash => "hash",
            PartitionMethod::Chunked => "chunked",
            PartitionMethod::BfsGrow => "bfs-grow",
            PartitionMethod::Multilevel => "multilevel",
        }
    }
}

/// How many partitions to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionTarget {
    /// Produce exactly this many partitions.
    NumPartitions(usize),
    /// Produce `ceil(graph.size_bytes() / bytes)` partitions, i.e. partitions
    /// sized to a (simulated) last-level cache of `bytes` bytes.
    LlcBytes(usize),
}

/// Configuration handed to [`PartitionPlan::compute`] /
/// [`crate::partitioned::PartitionedGraph::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Partitioning algorithm.
    pub method: PartitionMethod,
    /// Partition-count target.
    pub target: PartitionTarget,
    /// Seed for the randomised methods.
    pub seed: u64,
    /// Per-partition payload storage policy (raw, compressed, or adaptive by
    /// footprint). Defaults to [`StorageConfig::Raw`].
    #[serde(default)]
    pub storage: StorageConfig,
}

impl PartitionConfig {
    /// LLC-sized multilevel partitioning — the paper's default configuration.
    pub fn llc_sized(llc_bytes: usize) -> Self {
        PartitionConfig {
            method: PartitionMethod::Multilevel,
            target: PartitionTarget::LlcBytes(llc_bytes),
            seed: 42,
            storage: StorageConfig::Raw,
        }
    }

    /// Exactly `k` partitions with the given method.
    pub fn with_partitions(method: PartitionMethod, k: usize) -> Self {
        PartitionConfig {
            method,
            target: PartitionTarget::NumPartitions(k),
            seed: 42,
            storage: StorageConfig::Raw,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the payload storage policy.
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Resolve the number of partitions for a concrete graph.
    pub fn resolve_num_partitions(&self, graph: &CsrGraph) -> usize {
        match self.target {
            PartitionTarget::NumPartitions(k) => k.max(1),
            PartitionTarget::LlcBytes(bytes) => {
                let bytes = bytes.max(1);
                graph.size_bytes().div_ceil(bytes).max(1)
            }
        }
    }
}

impl Default for PartitionConfig {
    fn default() -> Self {
        // 2 MiB simulated LLC: scaled from the paper's 13.75 MiB to match the
        // scaled-down synthetic datasets.
        PartitionConfig::llc_sized(2 * 1024 * 1024)
    }
}

/// Result of partitioning: a partition id per vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `assignment[v]` is the partition of vertex `v`.
    pub assignment: Vec<PartitionId>,
    /// Number of partitions (some may be empty).
    pub num_partitions: usize,
}

impl PartitionPlan {
    /// Compute a plan for `graph` under `config`.
    pub fn compute(graph: &CsrGraph, config: &PartitionConfig) -> PartitionPlan {
        let k = config.resolve_num_partitions(graph).min(graph.num_vertices().max(1));
        let assignment = match config.method {
            PartitionMethod::Random => random_partition(graph, k, config.seed),
            PartitionMethod::Hash => hash_partition(graph, k),
            PartitionMethod::Chunked => chunked_partition(graph, k),
            PartitionMethod::BfsGrow => bfs_grow_partition(graph, k),
            PartitionMethod::Multilevel => multilevel_partition(graph, k, config.seed),
        };
        PartitionPlan { assignment, num_partitions: k }
    }

    /// Partition of vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.assignment[v as usize]
    }

    /// Number of vertices in each partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_partitions];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints lie in different partitions.
    pub fn edge_cut(&self, graph: &CsrGraph) -> usize {
        let mut cut = 0usize;
        for u in 0..graph.num_vertices() as VertexId {
            let pu = self.assignment[u as usize];
            for &v in graph.out_neighbors(u) {
                if self.assignment[v as usize] != pu {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Load imbalance: max partition size / average partition size.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.partition_sizes();
        let non_empty = sizes.iter().filter(|&&s| s > 0).count().max(1);
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let avg = self.assignment.len() as f64 / non_empty as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Check that every vertex is assigned to a valid partition.
    pub fn validate(&self, graph: &CsrGraph) -> bool {
        self.assignment.len() == graph.num_vertices()
            && self.assignment.iter().all(|&p| (p as usize) < self.num_partitions)
    }
}

fn random_partition(graph: &CsrGraph, k: usize, seed: u64) -> Vec<PartitionId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..graph.num_vertices()).map(|_| rng.gen_range(0..k) as PartitionId).collect()
}

fn hash_partition(graph: &CsrGraph, k: usize) -> Vec<PartitionId> {
    (0..graph.num_vertices() as u64)
        .map(|v| {
            let mut x = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (x % k as u64) as PartitionId
        })
        .collect()
}

/// Contiguous ranges balanced by out-degree: every partition receives roughly
/// `|E| / k` edges, mirroring Gemini's lightweight chunking.
fn chunked_partition(graph: &CsrGraph, k: usize) -> Vec<PartitionId> {
    let n = graph.num_vertices();
    let total_edges = graph.num_edges().max(1);
    let per_part = (total_edges as f64 / k as f64).max(1.0);
    let mut assignment = vec![0 as PartitionId; n];
    let mut current = 0usize;
    let mut acc = 0usize;
    for (v, slot) in assignment.iter_mut().enumerate() {
        *slot = current as PartitionId;
        acc += graph.out_degree(v as VertexId).max(1);
        if acc as f64 >= per_part && current + 1 < k {
            current += 1;
            acc = 0;
        }
    }
    assignment
}

/// Grow regions from `k` evenly spaced seeds with a shared BFS frontier.
fn bfs_grow_partition(graph: &CsrGraph, k: usize) -> Vec<PartitionId> {
    let n = graph.num_vertices();
    let mut assignment = vec![PartitionId::MAX; n];
    if n == 0 {
        return assignment;
    }
    let cap = n.div_ceil(k);
    let mut sizes = vec![0usize; k];
    let mut queue = std::collections::VecDeque::new();
    for (p, size) in sizes.iter_mut().enumerate() {
        let seed = (p * n / k) as VertexId;
        if assignment[seed as usize] == PartitionId::MAX {
            assignment[seed as usize] = p as PartitionId;
            *size += 1;
            queue.push_back(seed);
        }
    }
    while let Some(u) = queue.pop_front() {
        let p = assignment[u as usize];
        for &v in graph.out_neighbors(u) {
            if assignment[v as usize] == PartitionId::MAX && sizes[p as usize] < cap {
                assignment[v as usize] = p;
                sizes[p as usize] += 1;
                queue.push_back(v);
            }
        }
    }
    // Unreached vertices (other components or full regions): round-robin to the
    // least-loaded partitions.
    for slot in assignment.iter_mut() {
        if *slot == PartitionId::MAX {
            let p = sizes.iter().enumerate().min_by_key(|&(_, s)| *s).map(|(i, _)| i).unwrap_or(0);
            *slot = p as PartitionId;
            sizes[p] += 1;
        }
    }
    assignment
}

// ---------------------------------------------------------------------------
// Multilevel (METIS-like) partitioning
// ---------------------------------------------------------------------------

struct CoarseGraph {
    /// adjacency as (neighbor, edge_weight)
    adj: Vec<Vec<(u32, u64)>>,
    /// number of original vertices collapsed into each coarse vertex
    vertex_weight: Vec<u64>,
    /// map from finer-level vertex to this level's vertex
    fine_to_coarse: Vec<u32>,
}

/// METIS-like multilevel edge-cut partitioner.
///
/// 1. *Coarsening*: repeated heavy-edge matching until the graph is small.
/// 2. *Initial partitioning*: weighted region growing on the coarsest graph.
/// 3. *Uncoarsening*: project the assignment back and run a greedy boundary
///    refinement pass at every level.
fn multilevel_partition(graph: &CsrGraph, k: usize, seed: u64) -> Vec<PartitionId> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if k <= 1 {
        return vec![0; n];
    }

    // Level 0 adjacency (collapse parallel edges, weight = multiplicity).
    let mut base_adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for u in 0..n as VertexId {
        for &v in graph.out_neighbors(u) {
            if u != v {
                base_adj[u as usize].push((v, 1));
            }
        }
    }
    let mut levels: Vec<CoarseGraph> = vec![CoarseGraph {
        adj: base_adj,
        vertex_weight: vec![1; n],
        fine_to_coarse: Vec::new(), // unused for level 0
    }];

    // Coarsen.
    let coarsen_stop = (4 * k).max(128);
    let mut rng = SmallRng::seed_from_u64(seed);
    while levels.last().unwrap().adj.len() > coarsen_stop {
        let current = levels.last().unwrap();
        let coarse = coarsen(current, &mut rng);
        let shrunk = coarse.adj.len() < current.adj.len() * 95 / 100;
        levels.push(coarse);
        if !shrunk {
            break; // matching no longer makes progress (e.g. star graphs)
        }
    }

    // Initial partitioning on the coarsest level.
    let coarsest = levels.last().unwrap();
    let mut assignment = initial_partition(coarsest, k, &mut rng);
    refine(coarsest, &mut assignment, k);

    // Uncoarsen and refine at each level.
    for level in (1..levels.len()).rev() {
        let fine = &levels[level - 1];
        let coarse = &levels[level];
        let mut fine_assignment = vec![0 as PartitionId; fine.adj.len()];
        for (v, fa) in fine_assignment.iter_mut().enumerate() {
            *fa = assignment[coarse.fine_to_coarse[v] as usize];
        }
        assignment = fine_assignment;
        refine(fine, &mut assignment, k);
    }
    assignment
}

/// Heavy-edge matching coarsening step.
fn coarsen(g: &CoarseGraph, rng: &mut SmallRng) -> CoarseGraph {
    let n = g.adj.len();
    let mut matched = vec![u32::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Visit vertices in random order for better matchings.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for &u in &order {
        if matched[u as usize] != u32::MAX {
            continue;
        }
        // Pick the heaviest unmatched neighbour.
        let mut best: Option<(u32, u64)> = None;
        for &(v, w) in &g.adj[u as usize] {
            if matched[v as usize] == u32::MAX && v != u && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((v, w));
            }
        }
        match best {
            Some((v, _)) => {
                matched[u as usize] = v;
                matched[v as usize] = u;
            }
            None => matched[u as usize] = u,
        }
    }

    // Assign coarse ids.
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n as u32 {
        if fine_to_coarse[u as usize] != u32::MAX {
            continue;
        }
        let m = matched[u as usize];
        fine_to_coarse[u as usize] = next;
        if m != u && m != u32::MAX {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let cn = next as usize;

    let mut vertex_weight = vec![0u64; cn];
    for u in 0..n {
        vertex_weight[fine_to_coarse[u] as usize] += g.vertex_weight[u];
    }

    // Aggregate edges between coarse vertices.
    let mut edge_maps: Vec<std::collections::HashMap<u32, u64>> =
        vec![std::collections::HashMap::new(); cn];
    for u in 0..n {
        let cu = fine_to_coarse[u];
        for &(v, w) in &g.adj[u] {
            let cv = fine_to_coarse[v as usize];
            if cu != cv {
                *edge_maps[cu as usize].entry(cv).or_insert(0) += w;
            }
        }
    }
    let adj: Vec<Vec<(u32, u64)>> =
        edge_maps.into_iter().map(|m| m.into_iter().collect()).collect();
    CoarseGraph { adj, vertex_weight, fine_to_coarse }
}

/// Weighted region growing to produce an initial balanced partition.
fn initial_partition(g: &CoarseGraph, k: usize, rng: &mut SmallRng) -> Vec<PartitionId> {
    let n = g.adj.len();
    let total_weight: u64 = g.vertex_weight.iter().sum();
    let cap = (total_weight as f64 / k as f64 * 1.1).ceil() as u64 + 1;
    let mut assignment = vec![PartitionId::MAX; n];
    let mut loads = vec![0u64; k];
    let mut unvisited: Vec<u32> = (0..n as u32).collect();
    for i in (1..unvisited.len()).rev() {
        let j = rng.gen_range(0..=i);
        unvisited.swap(i, j);
    }
    let mut cursor = 0usize;
    for (p, load) in loads.iter_mut().enumerate() {
        // Find a seed.
        while cursor < unvisited.len() && assignment[unvisited[cursor] as usize] != PartitionId::MAX
        {
            cursor += 1;
        }
        if cursor >= unvisited.len() {
            break;
        }
        let seed = unvisited[cursor];
        let mut queue = std::collections::VecDeque::new();
        assignment[seed as usize] = p as PartitionId;
        *load += g.vertex_weight[seed as usize];
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            if *load >= cap {
                break;
            }
            for &(v, _) in &g.adj[u as usize] {
                if assignment[v as usize] == PartitionId::MAX && *load < cap {
                    assignment[v as usize] = p as PartitionId;
                    *load += g.vertex_weight[v as usize];
                    queue.push_back(v);
                }
            }
        }
    }
    // Any stragglers go to the least loaded partition.
    for (v, slot) in assignment.iter_mut().enumerate() {
        if *slot == PartitionId::MAX {
            let p = loads.iter().enumerate().min_by_key(|&(_, l)| *l).map(|(i, _)| i).unwrap_or(0);
            *slot = p as PartitionId;
            loads[p] += g.vertex_weight[v];
        }
    }
    assignment
}

/// One greedy boundary-refinement pass: move a vertex to the neighbouring
/// partition with the largest cut gain, if balance allows.
fn refine(g: &CoarseGraph, assignment: &mut [PartitionId], k: usize) {
    let n = g.adj.len();
    let total_weight: u64 = g.vertex_weight.iter().sum();
    let cap = (total_weight as f64 / k as f64 * 1.15).ceil() as u64 + 1;
    let mut loads = vec![0u64; k];
    for v in 0..n {
        loads[assignment[v] as usize] += g.vertex_weight[v];
    }
    for _pass in 0..2 {
        let mut moved = 0usize;
        for u in 0..n {
            let pu = assignment[u];
            if g.adj[u].is_empty() {
                continue;
            }
            // Edge weight towards each neighbouring partition.
            let mut towards: std::collections::HashMap<PartitionId, u64> =
                std::collections::HashMap::new();
            for &(v, w) in &g.adj[u] {
                *towards.entry(assignment[v as usize]).or_insert(0) += w;
            }
            let internal = towards.get(&pu).copied().unwrap_or(0);
            if let Some((&best_p, &best_w)) =
                towards.iter().filter(|&(&p, _)| p != pu).max_by_key(|&(_, &w)| w)
            {
                let vw = g.vertex_weight[u];
                if best_w > internal && loads[best_p as usize] + vw <= cap {
                    loads[pu as usize] -= vw;
                    loads[best_p as usize] += vw;
                    assignment[u] = best_p;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_plan(graph: &CsrGraph, plan: &PartitionPlan) {
        assert!(plan.validate(graph));
        assert_eq!(plan.partition_sizes().iter().sum::<usize>(), graph.num_vertices());
    }

    #[test]
    fn every_method_produces_a_valid_cover() {
        let g = gen::rmat(9, 6, 1);
        for method in PartitionMethod::all() {
            let plan = PartitionPlan::compute(&g, &PartitionConfig::with_partitions(method, 8));
            check_plan(&g, &plan);
            assert_eq!(plan.num_partitions, 8, "{method:?}");
        }
    }

    #[test]
    fn llc_target_resolves_partition_count() {
        let g = gen::grid2d(100, 100, 0.0, 1);
        let config = PartitionConfig::llc_sized(16 * 1024);
        let k = config.resolve_num_partitions(&g);
        assert_eq!(k, g.size_bytes().div_ceil(16 * 1024));
        let plan = PartitionPlan::compute(&g, &config);
        check_plan(&g, &plan);
        assert_eq!(plan.num_partitions, k.min(g.num_vertices()));
    }

    #[test]
    fn single_partition_when_graph_fits() {
        let g = gen::path(10);
        let config = PartitionConfig::llc_sized(1024 * 1024 * 1024);
        let plan = PartitionPlan::compute(&g, &config);
        assert_eq!(plan.num_partitions, 1);
        assert!(plan.assignment.iter().all(|&p| p == 0));
    }

    #[test]
    fn chunked_is_contiguous() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let plan = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Chunked, 7),
        );
        // Assignment must be non-decreasing for contiguous ranges.
        assert!(plan.assignment.windows(2).all(|w| w[0] <= w[1]));
        check_plan(&g, &plan);
    }

    #[test]
    fn multilevel_beats_random_on_grid_cut() {
        let g = gen::grid2d(60, 60, 0.0, 1);
        let k = 9;
        let random = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Random, k),
        );
        let multi = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Multilevel, k),
        );
        check_plan(&g, &multi);
        let rc = random.edge_cut(&g);
        let mc = multi.edge_cut(&g);
        assert!(
            (mc as f64) < rc as f64 * 0.5,
            "multilevel cut {mc} should be far below random cut {rc}"
        );
    }

    #[test]
    fn bfs_grow_beats_random_on_grid_cut() {
        let g = gen::grid2d(50, 50, 0.0, 1);
        let k = 10;
        let random = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Random, k),
        );
        let grow = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::BfsGrow, k),
        );
        assert!(grow.edge_cut(&g) < random.edge_cut(&g));
    }

    #[test]
    fn multilevel_balance_is_reasonable() {
        let g = gen::rmat(10, 8, 2);
        let plan = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Multilevel, 10),
        );
        check_plan(&g, &plan);
        assert!(plan.imbalance() < 3.0, "imbalance {}", plan.imbalance());
    }

    #[test]
    fn hash_and_random_are_deterministic_given_seed() {
        let g = gen::erdos_renyi(200, 1000, 3);
        let c = PartitionConfig::with_partitions(PartitionMethod::Random, 4).with_seed(7);
        assert_eq!(PartitionPlan::compute(&g, &c), PartitionPlan::compute(&g, &c));
        let h = PartitionConfig::with_partitions(PartitionMethod::Hash, 4);
        assert_eq!(PartitionPlan::compute(&g, &h), PartitionPlan::compute(&g, &h));
    }

    #[test]
    fn more_partitions_than_vertices_is_clamped() {
        let g = gen::path(4);
        let plan = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Multilevel, 100),
        );
        assert!(plan.num_partitions <= 4);
        check_plan(&g, &plan);
    }

    #[test]
    fn edge_cut_zero_for_single_partition() {
        let g = gen::rmat(7, 4, 1);
        let plan = PartitionPlan::compute(
            &g,
            &PartitionConfig::with_partitions(PartitionMethod::Random, 1),
        );
        assert_eq!(plan.edge_cut(&g), 0);
    }

    #[test]
    fn disconnected_graph_is_fully_assigned() {
        // Two disjoint paths plus isolated vertices.
        let mut b = crate::GraphBuilder::new(20);
        for i in 0..5u32 {
            b.add_undirected_edge(i, i + 1, 1);
        }
        for i in 10..14u32 {
            b.add_undirected_edge(i, i + 1, 1);
        }
        let g = b.build();
        for method in PartitionMethod::all() {
            let plan = PartitionPlan::compute(&g, &PartitionConfig::with_partitions(method, 3));
            check_plan(&g, &plan);
        }
    }
}
