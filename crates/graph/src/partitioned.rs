//! LLC-sized partitioned graph representation.
//!
//! [`PartitionedGraph`] combines a [`CsrGraph`] with a [`PartitionPlan`] and the
//! per-partition metadata the ForkGraph engine needs: the vertex membership of
//! every partition, internal/cut edge counts, and byte footprints used to check
//! that partitions actually fit the (simulated) last-level cache.

use std::sync::Arc;

use crate::partition::{PartitionConfig, PartitionId, PartitionPlan};
use crate::{CsrGraph, VertexId, Weight};

/// Per-partition metadata.
#[derive(Clone, Debug)]
pub struct PartitionInfo {
    /// Partition id (index into [`PartitionedGraph::partitions`]).
    pub id: PartitionId,
    /// Global ids of the vertices in this partition, ascending.
    pub vertices: Vec<VertexId>,
    /// Edges whose source and target both lie in this partition.
    pub num_internal_edges: usize,
    /// Edges leaving this partition.
    pub num_cut_edges: usize,
    /// Approximate bytes of CSR adjacency + vertex state touched when
    /// processing this partition.
    pub footprint_bytes: usize,
}

impl PartitionInfo {
    /// Number of vertices in the partition.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Total out-edges of the partition's vertices (internal + cut).
    pub fn num_edges(&self) -> usize {
        self.num_internal_edges + self.num_cut_edges
    }
}

/// A graph divided into LLC-sized partitions.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    graph: Arc<CsrGraph>,
    plan: PartitionPlan,
    partitions: Vec<PartitionInfo>,
    config: PartitionConfig,
}

impl PartitionedGraph {
    /// Partition `graph` according to `config` (clones the graph into an
    /// [`Arc`]; use [`Self::build_arc`] to avoid the copy).
    pub fn build(graph: &CsrGraph, config: PartitionConfig) -> PartitionedGraph {
        Self::build_arc(Arc::new(graph.clone()), config)
    }

    /// Partition an already shared graph.
    pub fn build_arc(graph: Arc<CsrGraph>, config: PartitionConfig) -> PartitionedGraph {
        let plan = PartitionPlan::compute(&graph, &config);
        let partitions = Self::collect_partitions(&graph, &plan);
        PartitionedGraph { graph, plan, partitions, config }
    }

    /// Build from a precomputed plan (used by the partition-method sweeps).
    pub fn from_plan(graph: Arc<CsrGraph>, plan: PartitionPlan, config: PartitionConfig) -> Self {
        assert!(plan.validate(&graph), "partition plan does not cover the graph");
        let partitions = Self::collect_partitions(&graph, &plan);
        PartitionedGraph { graph, plan, partitions, config }
    }

    fn collect_partitions(graph: &CsrGraph, plan: &PartitionPlan) -> Vec<PartitionInfo> {
        let k = plan.num_partitions;
        let mut vertices: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in 0..graph.num_vertices() as VertexId {
            vertices[plan.partition_of(v) as usize].push(v);
        }
        let mut infos = Vec::with_capacity(k);
        for (id, verts) in vertices.into_iter().enumerate() {
            let mut internal = 0usize;
            let mut cut = 0usize;
            let mut adjacency_bytes = 0usize;
            for &v in &verts {
                adjacency_bytes += graph.out_degree(v) * std::mem::size_of::<VertexId>()
                    + std::mem::size_of::<u64>();
                if graph.is_weighted() {
                    adjacency_bytes += graph.out_degree(v) * std::mem::size_of::<Weight>();
                }
                for &t in graph.out_neighbors(v) {
                    if plan.partition_of(t) == id as PartitionId {
                        internal += 1;
                    } else {
                        cut += 1;
                    }
                }
            }
            // Vertex state: one distance/residual slot per vertex (8 bytes) as a
            // conservative per-query footprint estimate.
            let footprint_bytes = adjacency_bytes + verts.len() * 8;
            infos.push(PartitionInfo {
                id: id as PartitionId,
                vertices: verts,
                num_internal_edges: internal,
                num_cut_edges: cut,
                footprint_bytes,
            });
        }
        infos
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Shared handle to the underlying graph.
    pub fn graph_arc(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.graph)
    }

    /// The partition plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Configuration this partitioned graph was built with.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Per-partition metadata.
    pub fn partitions(&self) -> &[PartitionInfo] {
        &self.partitions
    }

    /// Metadata of partition `p`.
    pub fn partition(&self, p: PartitionId) -> &PartitionInfo {
        &self.partitions[p as usize]
    }

    /// Partition containing vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.plan.partition_of(v)
    }

    /// Total number of cut edges (counted once per directed edge).
    pub fn total_cut_edges(&self) -> usize {
        self.partitions.iter().map(|p| p.num_cut_edges).sum()
    }

    /// Fraction of directed edges that cross partitions.
    pub fn cut_ratio(&self) -> f64 {
        if self.graph.num_edges() == 0 {
            0.0
        } else {
            self.total_cut_edges() as f64 / self.graph.num_edges() as f64
        }
    }

    /// Largest partition footprint in bytes.
    pub fn max_footprint_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.footprint_bytes).max().unwrap_or(0)
    }

    /// Partition → worker affinity hints for an inter-partition parallel
    /// executor with `num_workers` workers.
    ///
    /// Returns one worker index per partition. Partitions are assigned with
    /// the longest-processing-time greedy heuristic on their byte footprints:
    /// each partition (largest footprint first) goes to the worker whose
    /// assigned footprint is currently smallest. This balances each worker's
    /// resident bytes so every worker's *home* partitions together stay close
    /// to its share of the LLC, which is what makes inter-partition
    /// parallelism compose with the paper's cache-sized partitioning.
    pub fn worker_affinity(&self, num_workers: usize) -> Vec<usize> {
        let num_workers = num_workers.max(1);
        let mut order: Vec<usize> = (0..self.partitions.len()).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(self.partitions[p].footprint_bytes));
        let mut load = vec![0usize; num_workers];
        let mut affinity = vec![0usize; self.partitions.len()];
        for p in order {
            let w = (0..num_workers).min_by_key(|&w| (load[w], w)).expect("num_workers >= 1");
            affinity[p] = w;
            load[w] += self.partitions[p].footprint_bytes.max(1);
        }
        affinity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::PartitionMethod;

    #[test]
    fn partitions_cover_all_vertices_exactly_once() {
        let g = gen::rmat(9, 5, 1);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
        );
        let mut seen = vec![false; g.num_vertices()];
        for p in pg.partitions() {
            for &v in &p.vertices {
                assert!(!seen[v as usize], "vertex {v} in two partitions");
                seen[v as usize] = true;
                assert_eq!(pg.partition_of(v), p.id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn edge_counts_are_consistent() {
        let g = gen::grid2d(30, 30, 0.05, 2);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 5),
        );
        let total: usize = pg.partitions().iter().map(|p| p.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(pg.total_cut_edges(), pg.plan().edge_cut(&g));
    }

    #[test]
    fn llc_sized_partitions_respect_footprint() {
        let g = gen::rmat(11, 8, 3);
        let llc = 64 * 1024;
        let pg = PartitionedGraph::build(&g, PartitionConfig::llc_sized(llc));
        assert!(pg.num_partitions() > 1);
        // Footprints should be in the same ballpark as the LLC budget: allow a
        // generous factor because hub vertices cannot be split.
        assert!(pg.max_footprint_bytes() < llc * 4, "footprint {}", pg.max_footprint_bytes());
    }

    #[test]
    fn cut_ratio_bounds() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8),
        );
        let ratio = pg.cut_ratio();
        assert!(ratio > 0.0 && ratio < 0.5, "cut ratio {ratio}");
    }

    #[test]
    fn from_plan_rejects_invalid_plans() {
        let g = gen::path(10);
        let plan = PartitionPlan { assignment: vec![0; 5], num_partitions: 1 };
        let result = std::panic::catch_unwind(|| {
            PartitionedGraph::from_plan(
                Arc::new(g.clone()),
                plan,
                PartitionConfig::with_partitions(PartitionMethod::Random, 1),
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_affinity_covers_all_workers_and_balances_footprint() {
        let g = gen::rmat(10, 6, 9);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 16),
        );
        for workers in [1usize, 2, 4, 8] {
            let affinity = pg.worker_affinity(workers);
            assert_eq!(affinity.len(), pg.num_partitions());
            assert!(affinity.iter().all(|&w| w < workers));
            let mut load = vec![0usize; workers];
            for (p, &w) in affinity.iter().enumerate() {
                load[w] += pg.partition(p as PartitionId).footprint_bytes;
            }
            if workers > 1 {
                let used = load.iter().filter(|&&l| l > 0).count();
                assert_eq!(used, workers, "every worker gets home partitions");
                let max = *load.iter().max().unwrap() as f64;
                let min = *load.iter().min().unwrap() as f64;
                assert!(max / min.max(1.0) < 3.0, "load imbalance {max} vs {min}");
            }
        }
    }

    #[test]
    fn worker_affinity_with_more_workers_than_partitions() {
        let g = gen::path(30);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 3),
        );
        let affinity = pg.worker_affinity(8);
        assert_eq!(affinity.len(), 3);
        // Three partitions spread over three distinct workers.
        let mut workers: Vec<usize> = affinity.clone();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3);
        // Degenerate worker count clamps to one worker.
        assert!(pg.worker_affinity(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn single_partition_graph() {
        let g = gen::path(20);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 1),
        );
        assert_eq!(pg.num_partitions(), 1);
        assert_eq!(pg.total_cut_edges(), 0);
        assert_eq!(pg.partition(0).num_vertices(), 20);
    }
}
