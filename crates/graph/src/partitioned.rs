//! LLC-sized partitioned graph representation.
//!
//! [`PartitionedGraph`] combines a [`CsrGraph`] with a [`PartitionPlan`] and the
//! per-partition metadata the ForkGraph engine needs: the vertex membership of
//! every partition, internal/cut edge counts, and byte footprints used to check
//! that partitions actually fit the (simulated) last-level cache.
//!
//! Since the epoch-snapshot work, each partition's payload — metadata plus its
//! vertices' out-edge segment — lives in an individually [`Arc`]-held
//! [`PartitionStore`]. Two snapshots that differ in a few partitions *share*
//! every untouched store: [`crate::mutation::VersionedGraph`] re-materialises
//! only dirty partitions at an epoch advance and splices the clean stores (and
//! a freshly assembled monolithic CSR, via [`CsrGraph::from_edge_segments`])
//! into the next epoch. The engine's hot path still reads one monolithic CSR;
//! the stores are the storage identity that makes partial rebuilds and
//! per-partition reclamation possible.

use std::borrow::Cow;
use std::sync::Arc;

use crate::partition::{PartitionConfig, PartitionId, PartitionPlan};
use crate::payload::{AdjacencyView, CompressedEdges, PartitionPayload, StorageConfig};
use crate::{CsrGraph, Edge, VertexId, Weight};

/// Per-partition metadata.
#[derive(Clone, Debug)]
pub struct PartitionInfo {
    /// Partition id (index into the store list).
    pub id: PartitionId,
    /// Global ids of the vertices in this partition, ascending.
    pub vertices: Vec<VertexId>,
    /// Edges whose source and target both lie in this partition.
    pub num_internal_edges: usize,
    /// Edges leaving this partition.
    pub num_cut_edges: usize,
    /// Approximate bytes of CSR adjacency + vertex state touched when
    /// processing this partition.
    pub footprint_bytes: usize,
}

impl PartitionInfo {
    /// Number of vertices in the partition.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Total out-edges of the partition's vertices (internal + cut).
    pub fn num_edges(&self) -> usize {
        self.num_internal_edges + self.num_cut_edges
    }
}

/// One partition's independently shareable payload: metadata, the out-edge
/// segment of its vertices (grouped by source, target-sorted — the
/// [`CsrGraph::from_edge_segments`] contract), and its cached quotient-graph
/// adjacency row. Snapshots hold these behind [`Arc`]s; a store untouched by a
/// mutation batch is shared across epochs, and its memory is reclaimed only
/// when the last snapshot referencing it is dropped.
#[derive(Clone, Debug)]
pub struct PartitionStore {
    /// Partition metadata (vertex membership, edge counts, footprint).
    pub info: PartitionInfo,
    /// The partition's vertices' out-edges, source-grouped and target-sorted —
    /// held raw or delta/varint-compressed per the build-time
    /// [`StorageConfig`] policy.
    pub payload: PartitionPayload,
    /// This partition's row of the quotient adjacency bitset (bit `q` set iff
    /// some edge of this partition targets partition `q`), in
    /// `plan.num_partitions.div_ceil(64).max(1)` words. Cached here so
    /// reachability refreshes after a partial rebuild cost `O(dirty edges)`,
    /// not an `O(m)` rescan.
    pub quotient_row: Vec<u64>,
}

impl PartitionStore {
    /// Build one partition's store from its vertex list and edge segment,
    /// computing the metadata and quotient row the plan implies, and choosing
    /// the payload representation `storage` asks for. The policy is applied
    /// per store, so epoch-advance partial rebuilds re-encode exactly the
    /// dirty partitions.
    pub fn build(
        id: PartitionId,
        vertices: Vec<VertexId>,
        edges: Vec<Edge>,
        weighted: bool,
        plan: &PartitionPlan,
        storage: StorageConfig,
    ) -> Self {
        let words = plan.num_partitions.div_ceil(64).max(1);
        let mut internal = 0usize;
        let mut cut = 0usize;
        let mut quotient_row = vec![0u64; words];
        for &(_, t, _) in &edges {
            let pt = plan.partition_of(t);
            quotient_row[pt as usize / 64] |= 1u64 << (pt as usize % 64);
            if pt == id {
                internal += 1;
            } else {
                cut += 1;
            }
        }
        let raw_adjacency_bytes = raw_adjacency_bytes(edges.len(), vertices.len(), weighted);
        let payload = if storage.wants_compression(raw_adjacency_bytes) {
            PartitionPayload::Compressed(CompressedEdges::encode(&vertices, &edges, weighted))
        } else {
            PartitionPayload::Raw(edges)
        };
        let adjacency_bytes = match &payload {
            PartitionPayload::Raw(_) => raw_adjacency_bytes,
            PartitionPayload::Compressed(c) => c.payload_bytes(),
        };
        // Vertex state: one distance/residual slot per vertex (8 bytes) as a
        // conservative per-query footprint estimate.
        let footprint_bytes = adjacency_bytes + vertices.len() * 8;
        PartitionStore {
            info: PartitionInfo {
                id,
                vertices,
                num_internal_edges: internal,
                num_cut_edges: cut,
                footprint_bytes,
            },
            payload,
            quotient_row,
        }
    }

    /// The partition's edge segment as triples — borrowed for raw payloads,
    /// transiently decoded for compressed ones. Epoch folds and monolithic
    /// CSR assembly go through this; visits stream-decode via
    /// [`PartitionedGraph::adjacency_view`] instead.
    pub fn edge_segment(&self) -> Cow<'_, [Edge]> {
        match &self.payload {
            PartitionPayload::Raw(edges) => Cow::Borrowed(edges.as_slice()),
            PartitionPayload::Compressed(c) => Cow::Owned(c.decode_edges(&self.info.vertices)),
        }
    }

    /// Whether this store holds its adjacency compressed.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        self.payload.is_compressed()
    }
}

/// CSR-equivalent adjacency bytes of a raw-stored partition: targets +
/// per-vertex offsets (+ weights) — the representation a raw visit actually
/// streams through the monolithic CSR, and the baseline the compression
/// metrics compare against.
fn raw_adjacency_bytes(num_edges: usize, num_vertices: usize, weighted: bool) -> usize {
    let mut bytes =
        num_edges * std::mem::size_of::<VertexId>() + num_vertices * std::mem::size_of::<u64>();
    if weighted {
        bytes += num_edges * std::mem::size_of::<Weight>();
    }
    bytes
}

/// A graph divided into LLC-sized partitions, each behind its own
/// [`Arc<PartitionStore>`].
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    graph: Arc<CsrGraph>,
    plan: PartitionPlan,
    stores: Vec<Arc<PartitionStore>>,
    config: PartitionConfig,
}

impl PartitionedGraph {
    /// Partition `graph` according to `config` (clones the graph into an
    /// [`Arc`]; use [`Self::build_arc`] to avoid the copy).
    pub fn build(graph: &CsrGraph, config: PartitionConfig) -> PartitionedGraph {
        Self::build_arc(Arc::new(graph.clone()), config)
    }

    /// Partition an already shared graph.
    pub fn build_arc(graph: Arc<CsrGraph>, config: PartitionConfig) -> PartitionedGraph {
        let plan = PartitionPlan::compute(&graph, &config);
        let stores = Self::collect_stores(&graph, &plan, config.storage);
        PartitionedGraph { graph, plan, stores, config }
    }

    /// Build from a precomputed plan (used by the partition-method sweeps).
    pub fn from_plan(graph: Arc<CsrGraph>, plan: PartitionPlan, config: PartitionConfig) -> Self {
        assert!(plan.validate(&graph), "partition plan does not cover the graph");
        let stores = Self::collect_stores(&graph, &plan, config.storage);
        PartitionedGraph { graph, plan, stores, config }
    }

    /// Assemble a snapshot from per-partition stores, reusing the stores'
    /// `Arc`s (clean partitions keep sharing memory with the previous epoch)
    /// and building the monolithic CSR from their edge segments without a
    /// global sort. `stores[p]` must be partition `p`'s store under `plan`.
    pub fn from_stores(
        num_vertices: usize,
        weighted: bool,
        plan: PartitionPlan,
        config: PartitionConfig,
        stores: Vec<Arc<PartitionStore>>,
    ) -> Self {
        debug_assert_eq!(stores.len(), plan.num_partitions);
        debug_assert!(stores.iter().enumerate().all(|(p, s)| s.info.id as usize == p));
        let segments: Vec<Cow<'_, [Edge]>> = stores.iter().map(|s| s.edge_segment()).collect();
        let refs: Vec<&[Edge]> = segments.iter().map(|c| c.as_ref()).collect();
        let graph = Arc::new(CsrGraph::from_edge_segments(num_vertices, &refs, weighted));
        PartitionedGraph { graph, plan, stores, config }
    }

    fn collect_stores(
        graph: &CsrGraph,
        plan: &PartitionPlan,
        storage: StorageConfig,
    ) -> Vec<Arc<PartitionStore>> {
        let k = plan.num_partitions;
        let mut vertices: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in 0..graph.num_vertices() as VertexId {
            vertices[plan.partition_of(v) as usize].push(v);
        }
        vertices
            .into_iter()
            .enumerate()
            .map(|(id, verts)| {
                let mut edges = Vec::new();
                for &v in &verts {
                    edges.extend(graph.out_edges(v).map(|(t, w)| (v, t, w)));
                }
                Arc::new(PartitionStore::build(
                    id as PartitionId,
                    verts,
                    edges,
                    graph.is_weighted(),
                    plan,
                    storage,
                ))
            })
            .collect()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Shared handle to the underlying graph.
    pub fn graph_arc(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.graph)
    }

    /// The partition plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Configuration this partitioned graph was built with.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.stores.len()
    }

    /// Per-partition metadata, in partition order.
    pub fn partitions(&self) -> impl Iterator<Item = &PartitionInfo> {
        self.stores.iter().map(|s| &s.info)
    }

    /// Metadata of partition `p`.
    pub fn partition(&self, p: PartitionId) -> &PartitionInfo {
        &self.stores[p as usize].info
    }

    /// Partition `p`'s shareable store. The `Arc` identity is the partial
    /// rebuild contract: after an epoch advance, `Arc::ptr_eq` holds between
    /// epochs exactly for the partitions the batch left clean.
    pub fn store(&self, p: PartitionId) -> &Arc<PartitionStore> {
        &self.stores[p as usize]
    }

    /// Partition containing vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.plan.partition_of(v)
    }

    /// Total number of cut edges (counted once per directed edge).
    pub fn total_cut_edges(&self) -> usize {
        self.partitions().map(|p| p.num_cut_edges).sum()
    }

    /// Fraction of directed edges that cross partitions.
    pub fn cut_ratio(&self) -> f64 {
        if self.graph.num_edges() == 0 {
            0.0
        } else {
            self.total_cut_edges() as f64 / self.graph.num_edges() as f64
        }
    }

    /// Largest partition footprint in bytes. Reflects the *actual* payload
    /// representation: compressed partitions report their encoded size, so
    /// [`PartitionConfig::llc_sized`] sizing packs more compressed partitions
    /// per LLC target.
    pub fn max_footprint_bytes(&self) -> usize {
        self.partitions().map(|p| p.footprint_bytes).max().unwrap_or(0)
    }

    /// Adjacency read access for visits to partition `p`: raw partitions get
    /// a plain CSR view (the pre-compression code path, byte for byte),
    /// compressed partitions a streaming varint-decode view.
    #[inline]
    pub fn adjacency_view(&self, p: PartitionId) -> AdjacencyView<'_> {
        let store = &self.stores[p as usize];
        match &store.payload {
            PartitionPayload::Raw(_) => AdjacencyView::from_csr(&self.graph),
            PartitionPayload::Compressed(c) => {
                AdjacencyView::compressed(&self.graph, &store.info.vertices, c)
            }
        }
    }

    /// Number of partitions stored compressed.
    pub fn compressed_partitions(&self) -> usize {
        self.stores.iter().filter(|s| s.is_compressed()).count()
    }

    /// Total adjacency payload bytes of raw-stored partitions
    /// (CSR-equivalent: targets + per-vertex offsets + weights).
    pub fn payload_bytes_raw(&self) -> usize {
        self.stores
            .iter()
            .filter(|s| !s.is_compressed())
            .map(|s| self.raw_equivalent_bytes(&s.info))
            .sum()
    }

    /// Total adjacency payload bytes of compressed-stored partitions
    /// (varint bytes + offsets).
    pub fn payload_bytes_compressed(&self) -> usize {
        self.stores
            .iter()
            .filter_map(|s| match &s.payload {
                PartitionPayload::Compressed(c) => Some(c.payload_bytes()),
                PartitionPayload::Raw(_) => None,
            })
            .sum()
    }

    /// Mean adjacency bytes per directed edge across all partitions, under
    /// each partition's actual representation.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.graph.num_edges() == 0 {
            return 0.0;
        }
        (self.payload_bytes_raw() + self.payload_bytes_compressed()) as f64
            / self.graph.num_edges() as f64
    }

    /// Fraction of the raw CSR-equivalent adjacency bytes the chosen payload
    /// representations save: `0.0` when everything is raw, approaching `1.0`
    /// as compression shrinks every partition.
    pub fn footprint_savings_ratio(&self) -> f64 {
        let raw_equiv: usize = self.stores.iter().map(|s| self.raw_equivalent_bytes(&s.info)).sum();
        if raw_equiv == 0 {
            return 0.0;
        }
        let actual = self.payload_bytes_raw() + self.payload_bytes_compressed();
        1.0 - actual as f64 / raw_equiv as f64
    }

    /// What `info`'s partition would occupy stored raw (CSR-equivalent).
    fn raw_equivalent_bytes(&self, info: &PartitionInfo) -> usize {
        raw_adjacency_bytes(info.num_edges(), info.num_vertices(), self.graph.is_weighted())
    }

    /// Partition → worker affinity hints for an inter-partition parallel
    /// executor with `num_workers` workers.
    ///
    /// Returns one worker index per partition. Partitions are assigned with
    /// the longest-processing-time greedy heuristic on their byte footprints:
    /// each partition (largest footprint first) goes to the worker whose
    /// assigned footprint is currently smallest. This balances each worker's
    /// resident bytes so every worker's *home* partitions together stay close
    /// to its share of the LLC, which is what makes inter-partition
    /// parallelism compose with the paper's cache-sized partitioning.
    pub fn worker_affinity(&self, num_workers: usize) -> Vec<usize> {
        let num_workers = num_workers.max(1);
        let mut order: Vec<usize> = (0..self.stores.len()).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(self.stores[p].info.footprint_bytes));
        let mut load = vec![0usize; num_workers];
        let mut affinity = vec![0usize; self.stores.len()];
        for p in order {
            let w = (0..num_workers).min_by_key(|&w| (load[w], w)).expect("num_workers >= 1");
            affinity[p] = w;
            load[w] += self.stores[p].info.footprint_bytes.max(1);
        }
        affinity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::PartitionMethod;

    #[test]
    fn partitions_cover_all_vertices_exactly_once() {
        let g = gen::rmat(9, 5, 1);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
        );
        let mut seen = vec![false; g.num_vertices()];
        for p in pg.partitions() {
            for &v in &p.vertices {
                assert!(!seen[v as usize], "vertex {v} in two partitions");
                seen[v as usize] = true;
                assert_eq!(pg.partition_of(v), p.id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn edge_counts_are_consistent() {
        let g = gen::grid2d(30, 30, 0.05, 2);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 5),
        );
        let total: usize = pg.partitions().map(|p| p.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(pg.total_cut_edges(), pg.plan().edge_cut(&g));
    }

    #[test]
    fn llc_sized_partitions_respect_footprint() {
        let g = gen::rmat(11, 8, 3);
        let llc = 64 * 1024;
        let pg = PartitionedGraph::build(&g, PartitionConfig::llc_sized(llc));
        assert!(pg.num_partitions() > 1);
        // Footprints should be in the same ballpark as the LLC budget: allow a
        // generous factor because hub vertices cannot be split.
        assert!(pg.max_footprint_bytes() < llc * 4, "footprint {}", pg.max_footprint_bytes());
    }

    #[test]
    fn cut_ratio_bounds() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8),
        );
        let ratio = pg.cut_ratio();
        assert!(ratio > 0.0 && ratio < 0.5, "cut ratio {ratio}");
    }

    #[test]
    fn from_plan_rejects_invalid_plans() {
        let g = gen::path(10);
        let plan = PartitionPlan { assignment: vec![0; 5], num_partitions: 1 };
        let result = std::panic::catch_unwind(|| {
            PartitionedGraph::from_plan(
                Arc::new(g.clone()),
                plan,
                PartitionConfig::with_partitions(PartitionMethod::Random, 1),
            )
        });
        assert!(result.is_err());
    }

    /// Rebuilding from the collected stores must reproduce the original CSR
    /// exactly — segment assembly is a reshuffle, never a re-interpretation.
    #[test]
    fn from_stores_round_trips_the_csr() {
        let g = gen::rmat(9, 6, 4).into_weighted(8);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 5),
        );
        let stores: Vec<Arc<PartitionStore>> =
            (0..pg.num_partitions()).map(|p| Arc::clone(pg.store(p as PartitionId))).collect();
        let rebuilt = PartitionedGraph::from_stores(
            g.num_vertices(),
            g.is_weighted(),
            pg.plan().clone(),
            *pg.config(),
            stores,
        );
        assert_eq!(rebuilt.graph(), pg.graph());
        for p in 0..pg.num_partitions() as PartitionId {
            assert!(Arc::ptr_eq(rebuilt.store(p), pg.store(p)));
            assert_eq!(rebuilt.partition(p).num_edges(), pg.partition(p).num_edges());
        }
    }

    /// The cached quotient rows must agree with a from-scratch edge scan.
    #[test]
    fn quotient_rows_match_edge_scan() {
        let g = gen::rmat(8, 5, 11);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 7),
        );
        let words = pg.num_partitions().div_ceil(64).max(1);
        let mut expected = vec![vec![0u64; words]; pg.num_partitions()];
        for (u, v, _) in g.edges() {
            let (pu, pv) = (pg.partition_of(u) as usize, pg.partition_of(v) as usize);
            expected[pu][pv / 64] |= 1u64 << (pv % 64);
        }
        for (p, row) in expected.iter().enumerate() {
            assert_eq!(&pg.store(p as PartitionId).quotient_row, row, "row {p}");
        }
    }

    #[test]
    fn worker_affinity_covers_all_workers_and_balances_footprint() {
        let g = gen::rmat(10, 6, 9);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 16),
        );
        for workers in [1usize, 2, 4, 8] {
            let affinity = pg.worker_affinity(workers);
            assert_eq!(affinity.len(), pg.num_partitions());
            assert!(affinity.iter().all(|&w| w < workers));
            let mut load = vec![0usize; workers];
            for (p, &w) in affinity.iter().enumerate() {
                load[w] += pg.partition(p as PartitionId).footprint_bytes;
            }
            if workers > 1 {
                let used = load.iter().filter(|&&l| l > 0).count();
                assert_eq!(used, workers, "every worker gets home partitions");
                let max = *load.iter().max().unwrap() as f64;
                let min = *load.iter().min().unwrap() as f64;
                assert!(max / min.max(1.0) < 3.0, "load imbalance {max} vs {min}");
            }
        }
    }

    #[test]
    fn worker_affinity_with_more_workers_than_partitions() {
        let g = gen::path(30);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 3),
        );
        let affinity = pg.worker_affinity(8);
        assert_eq!(affinity.len(), 3);
        // Three partitions spread over three distinct workers.
        let mut workers: Vec<usize> = affinity.clone();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3);
        // Degenerate worker count clamps to one worker.
        assert!(pg.worker_affinity(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn single_partition_graph() {
        let g = gen::path(20);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 1),
        );
        assert_eq!(pg.num_partitions(), 1);
        assert_eq!(pg.total_cut_edges(), 0);
        assert_eq!(pg.partition(0).num_vertices(), 20);
    }

    #[test]
    fn compressed_storage_round_trips_and_shrinks() {
        let g = gen::rmat(10, 6, 4).into_weighted(8);
        let base = PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6);
        // Share one plan: multilevel partitioning is not deterministic across
        // separate builds (internal hash-map tie-breaking), and this test
        // compares partitions pairwise.
        let plan = crate::partition::PartitionPlan::compute(&g, &base);
        let arc = Arc::new(g.clone());
        let raw = PartitionedGraph::from_plan(Arc::clone(&arc), plan.clone(), base);
        let comp =
            PartitionedGraph::from_plan(arc, plan, base.with_storage(StorageConfig::Compressed));
        // Same monolithic CSR regardless of payload representation.
        assert_eq!(raw.graph(), comp.graph());
        assert_eq!(raw.compressed_partitions(), 0);
        assert_eq!(comp.compressed_partitions(), comp.num_partitions());
        assert_eq!(raw.payload_bytes_compressed(), 0);
        assert_eq!(comp.payload_bytes_raw(), 0);
        assert_eq!(raw.footprint_savings_ratio(), 0.0);
        assert!(comp.footprint_savings_ratio() > 0.3, "{}", comp.footprint_savings_ratio());
        assert!(
            comp.bytes_per_edge() <= 0.6 * raw.bytes_per_edge(),
            "compressed {} vs raw {} bytes/edge",
            comp.bytes_per_edge(),
            raw.bytes_per_edge()
        );
        assert!(comp.max_footprint_bytes() < raw.max_footprint_bytes());
        // The stores decode back to identical edge segments.
        for p in 0..raw.num_partitions() as PartitionId {
            assert!(comp.store(p).is_compressed());
            assert_eq!(raw.store(p).edge_segment(), comp.store(p).edge_segment(), "part {p}");
            assert_eq!(raw.store(p).quotient_row, comp.store(p).quotient_row, "row {p}");
        }
    }

    #[test]
    fn from_stores_round_trips_compressed_payloads() {
        let g = gen::rmat(9, 6, 4).into_weighted(8);
        let config = PartitionConfig::with_partitions(PartitionMethod::Multilevel, 5)
            .with_storage(StorageConfig::Compressed);
        let pg = PartitionedGraph::build(&g, config);
        let stores: Vec<Arc<PartitionStore>> =
            (0..pg.num_partitions()).map(|p| Arc::clone(pg.store(p as PartitionId))).collect();
        let rebuilt = PartitionedGraph::from_stores(
            g.num_vertices(),
            g.is_weighted(),
            pg.plan().clone(),
            *pg.config(),
            stores,
        );
        assert_eq!(rebuilt.graph(), &g);
    }

    #[test]
    fn adaptive_storage_compresses_only_large_partitions() {
        let g = gen::rmat(10, 6, 9).into_weighted(8);
        let base = PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8);
        let plan = crate::partition::PartitionPlan::compute(&g, &base);
        let arc = Arc::new(g.clone());
        let raw = PartitionedGraph::from_plan(Arc::clone(&arc), plan.clone(), base);
        // Raw adjacency bytes per partition = footprint minus the 8-byte
        // per-vertex state estimate; threshold at the median splits the set.
        let mut adj: Vec<usize> =
            raw.partitions().map(|p| p.footprint_bytes - p.num_vertices() * 8).collect();
        adj.sort_unstable();
        let threshold = adj[adj.len() / 2];
        let adaptive = PartitionedGraph::from_plan(
            arc,
            plan,
            base.with_storage(StorageConfig::Adaptive { min_bytes: threshold }),
        );
        let compressed = adaptive.compressed_partitions();
        assert!(compressed > 0, "some partition clears the median threshold");
        assert!(compressed < adaptive.num_partitions(), "some partition stays raw");
        assert!(adaptive.payload_bytes_raw() > 0 && adaptive.payload_bytes_compressed() > 0);
        for (p, info) in adaptive.partitions().enumerate() {
            let raw_info = raw.partition(p as PartitionId);
            let raw_adj = raw_info.footprint_bytes - raw_info.num_vertices() * 8;
            assert_eq!(
                adaptive.store(p as PartitionId).is_compressed(),
                raw_adj >= threshold,
                "partition {p} ({} raw bytes)",
                raw_adj
            );
            assert_eq!(info.num_edges(), raw_info.num_edges());
        }
    }
}
