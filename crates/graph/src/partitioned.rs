//! LLC-sized partitioned graph representation.
//!
//! [`PartitionedGraph`] combines a [`CsrGraph`] with a [`PartitionPlan`] and the
//! per-partition metadata the ForkGraph engine needs: the vertex membership of
//! every partition, internal/cut edge counts, and byte footprints used to check
//! that partitions actually fit the (simulated) last-level cache.
//!
//! Since the epoch-snapshot work, each partition's payload — metadata plus its
//! vertices' out-edge segment — lives in an individually [`Arc`]-held
//! [`PartitionStore`]. Two snapshots that differ in a few partitions *share*
//! every untouched store: [`crate::mutation::VersionedGraph`] re-materialises
//! only dirty partitions at an epoch advance and splices the clean stores (and
//! a freshly assembled monolithic CSR, via [`CsrGraph::from_edge_segments`])
//! into the next epoch. The engine's hot path still reads one monolithic CSR;
//! the stores are the storage identity that makes partial rebuilds and
//! per-partition reclamation possible.

use std::sync::Arc;

use crate::partition::{PartitionConfig, PartitionId, PartitionPlan};
use crate::{CsrGraph, Edge, VertexId, Weight};

/// Per-partition metadata.
#[derive(Clone, Debug)]
pub struct PartitionInfo {
    /// Partition id (index into the store list).
    pub id: PartitionId,
    /// Global ids of the vertices in this partition, ascending.
    pub vertices: Vec<VertexId>,
    /// Edges whose source and target both lie in this partition.
    pub num_internal_edges: usize,
    /// Edges leaving this partition.
    pub num_cut_edges: usize,
    /// Approximate bytes of CSR adjacency + vertex state touched when
    /// processing this partition.
    pub footprint_bytes: usize,
}

impl PartitionInfo {
    /// Number of vertices in the partition.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Total out-edges of the partition's vertices (internal + cut).
    pub fn num_edges(&self) -> usize {
        self.num_internal_edges + self.num_cut_edges
    }
}

/// One partition's independently shareable payload: metadata, the out-edge
/// segment of its vertices (grouped by source, target-sorted — the
/// [`CsrGraph::from_edge_segments`] contract), and its cached quotient-graph
/// adjacency row. Snapshots hold these behind [`Arc`]s; a store untouched by a
/// mutation batch is shared across epochs, and its memory is reclaimed only
/// when the last snapshot referencing it is dropped.
#[derive(Clone, Debug)]
pub struct PartitionStore {
    /// Partition metadata (vertex membership, edge counts, footprint).
    pub info: PartitionInfo,
    /// The partition's vertices' out-edges, source-grouped and target-sorted.
    pub edges: Vec<Edge>,
    /// This partition's row of the quotient adjacency bitset (bit `q` set iff
    /// some edge of this partition targets partition `q`), in
    /// `plan.num_partitions.div_ceil(64).max(1)` words. Cached here so
    /// reachability refreshes after a partial rebuild cost `O(dirty edges)`,
    /// not an `O(m)` rescan.
    pub quotient_row: Vec<u64>,
}

impl PartitionStore {
    /// Build one partition's store from its vertex list and edge segment,
    /// computing the metadata and quotient row the plan implies.
    pub fn build(
        id: PartitionId,
        vertices: Vec<VertexId>,
        edges: Vec<Edge>,
        weighted: bool,
        plan: &PartitionPlan,
    ) -> Self {
        let words = plan.num_partitions.div_ceil(64).max(1);
        let mut internal = 0usize;
        let mut cut = 0usize;
        let mut quotient_row = vec![0u64; words];
        for &(_, t, _) in &edges {
            let pt = plan.partition_of(t);
            quotient_row[pt as usize / 64] |= 1u64 << (pt as usize % 64);
            if pt == id {
                internal += 1;
            } else {
                cut += 1;
            }
        }
        let mut adjacency_bytes = edges.len() * std::mem::size_of::<VertexId>()
            + vertices.len() * std::mem::size_of::<u64>();
        if weighted {
            adjacency_bytes += edges.len() * std::mem::size_of::<Weight>();
        }
        // Vertex state: one distance/residual slot per vertex (8 bytes) as a
        // conservative per-query footprint estimate.
        let footprint_bytes = adjacency_bytes + vertices.len() * 8;
        PartitionStore {
            info: PartitionInfo {
                id,
                vertices,
                num_internal_edges: internal,
                num_cut_edges: cut,
                footprint_bytes,
            },
            edges,
            quotient_row,
        }
    }
}

/// A graph divided into LLC-sized partitions, each behind its own
/// [`Arc<PartitionStore>`].
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    graph: Arc<CsrGraph>,
    plan: PartitionPlan,
    stores: Vec<Arc<PartitionStore>>,
    config: PartitionConfig,
}

impl PartitionedGraph {
    /// Partition `graph` according to `config` (clones the graph into an
    /// [`Arc`]; use [`Self::build_arc`] to avoid the copy).
    pub fn build(graph: &CsrGraph, config: PartitionConfig) -> PartitionedGraph {
        Self::build_arc(Arc::new(graph.clone()), config)
    }

    /// Partition an already shared graph.
    pub fn build_arc(graph: Arc<CsrGraph>, config: PartitionConfig) -> PartitionedGraph {
        let plan = PartitionPlan::compute(&graph, &config);
        let stores = Self::collect_stores(&graph, &plan);
        PartitionedGraph { graph, plan, stores, config }
    }

    /// Build from a precomputed plan (used by the partition-method sweeps).
    pub fn from_plan(graph: Arc<CsrGraph>, plan: PartitionPlan, config: PartitionConfig) -> Self {
        assert!(plan.validate(&graph), "partition plan does not cover the graph");
        let stores = Self::collect_stores(&graph, &plan);
        PartitionedGraph { graph, plan, stores, config }
    }

    /// Assemble a snapshot from per-partition stores, reusing the stores'
    /// `Arc`s (clean partitions keep sharing memory with the previous epoch)
    /// and building the monolithic CSR from their edge segments without a
    /// global sort. `stores[p]` must be partition `p`'s store under `plan`.
    pub fn from_stores(
        num_vertices: usize,
        weighted: bool,
        plan: PartitionPlan,
        config: PartitionConfig,
        stores: Vec<Arc<PartitionStore>>,
    ) -> Self {
        debug_assert_eq!(stores.len(), plan.num_partitions);
        debug_assert!(stores.iter().enumerate().all(|(p, s)| s.info.id as usize == p));
        let segments: Vec<&[Edge]> = stores.iter().map(|s| s.edges.as_slice()).collect();
        let graph = Arc::new(CsrGraph::from_edge_segments(num_vertices, &segments, weighted));
        PartitionedGraph { graph, plan, stores, config }
    }

    fn collect_stores(graph: &CsrGraph, plan: &PartitionPlan) -> Vec<Arc<PartitionStore>> {
        let k = plan.num_partitions;
        let mut vertices: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in 0..graph.num_vertices() as VertexId {
            vertices[plan.partition_of(v) as usize].push(v);
        }
        vertices
            .into_iter()
            .enumerate()
            .map(|(id, verts)| {
                let mut edges = Vec::new();
                for &v in &verts {
                    edges.extend(graph.out_edges(v).map(|(t, w)| (v, t, w)));
                }
                Arc::new(PartitionStore::build(
                    id as PartitionId,
                    verts,
                    edges,
                    graph.is_weighted(),
                    plan,
                ))
            })
            .collect()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Shared handle to the underlying graph.
    pub fn graph_arc(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.graph)
    }

    /// The partition plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Configuration this partitioned graph was built with.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.stores.len()
    }

    /// Per-partition metadata, in partition order.
    pub fn partitions(&self) -> impl Iterator<Item = &PartitionInfo> {
        self.stores.iter().map(|s| &s.info)
    }

    /// Metadata of partition `p`.
    pub fn partition(&self, p: PartitionId) -> &PartitionInfo {
        &self.stores[p as usize].info
    }

    /// Partition `p`'s shareable store. The `Arc` identity is the partial
    /// rebuild contract: after an epoch advance, `Arc::ptr_eq` holds between
    /// epochs exactly for the partitions the batch left clean.
    pub fn store(&self, p: PartitionId) -> &Arc<PartitionStore> {
        &self.stores[p as usize]
    }

    /// Partition containing vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.plan.partition_of(v)
    }

    /// Total number of cut edges (counted once per directed edge).
    pub fn total_cut_edges(&self) -> usize {
        self.partitions().map(|p| p.num_cut_edges).sum()
    }

    /// Fraction of directed edges that cross partitions.
    pub fn cut_ratio(&self) -> f64 {
        if self.graph.num_edges() == 0 {
            0.0
        } else {
            self.total_cut_edges() as f64 / self.graph.num_edges() as f64
        }
    }

    /// Largest partition footprint in bytes.
    pub fn max_footprint_bytes(&self) -> usize {
        self.partitions().map(|p| p.footprint_bytes).max().unwrap_or(0)
    }

    /// Partition → worker affinity hints for an inter-partition parallel
    /// executor with `num_workers` workers.
    ///
    /// Returns one worker index per partition. Partitions are assigned with
    /// the longest-processing-time greedy heuristic on their byte footprints:
    /// each partition (largest footprint first) goes to the worker whose
    /// assigned footprint is currently smallest. This balances each worker's
    /// resident bytes so every worker's *home* partitions together stay close
    /// to its share of the LLC, which is what makes inter-partition
    /// parallelism compose with the paper's cache-sized partitioning.
    pub fn worker_affinity(&self, num_workers: usize) -> Vec<usize> {
        let num_workers = num_workers.max(1);
        let mut order: Vec<usize> = (0..self.stores.len()).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(self.stores[p].info.footprint_bytes));
        let mut load = vec![0usize; num_workers];
        let mut affinity = vec![0usize; self.stores.len()];
        for p in order {
            let w = (0..num_workers).min_by_key(|&w| (load[w], w)).expect("num_workers >= 1");
            affinity[p] = w;
            load[w] += self.stores[p].info.footprint_bytes.max(1);
        }
        affinity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::PartitionMethod;

    #[test]
    fn partitions_cover_all_vertices_exactly_once() {
        let g = gen::rmat(9, 5, 1);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
        );
        let mut seen = vec![false; g.num_vertices()];
        for p in pg.partitions() {
            for &v in &p.vertices {
                assert!(!seen[v as usize], "vertex {v} in two partitions");
                seen[v as usize] = true;
                assert_eq!(pg.partition_of(v), p.id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn edge_counts_are_consistent() {
        let g = gen::grid2d(30, 30, 0.05, 2);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 5),
        );
        let total: usize = pg.partitions().map(|p| p.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(pg.total_cut_edges(), pg.plan().edge_cut(&g));
    }

    #[test]
    fn llc_sized_partitions_respect_footprint() {
        let g = gen::rmat(11, 8, 3);
        let llc = 64 * 1024;
        let pg = PartitionedGraph::build(&g, PartitionConfig::llc_sized(llc));
        assert!(pg.num_partitions() > 1);
        // Footprints should be in the same ballpark as the LLC budget: allow a
        // generous factor because hub vertices cannot be split.
        assert!(pg.max_footprint_bytes() < llc * 4, "footprint {}", pg.max_footprint_bytes());
    }

    #[test]
    fn cut_ratio_bounds() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 8),
        );
        let ratio = pg.cut_ratio();
        assert!(ratio > 0.0 && ratio < 0.5, "cut ratio {ratio}");
    }

    #[test]
    fn from_plan_rejects_invalid_plans() {
        let g = gen::path(10);
        let plan = PartitionPlan { assignment: vec![0; 5], num_partitions: 1 };
        let result = std::panic::catch_unwind(|| {
            PartitionedGraph::from_plan(
                Arc::new(g.clone()),
                plan,
                PartitionConfig::with_partitions(PartitionMethod::Random, 1),
            )
        });
        assert!(result.is_err());
    }

    /// Rebuilding from the collected stores must reproduce the original CSR
    /// exactly — segment assembly is a reshuffle, never a re-interpretation.
    #[test]
    fn from_stores_round_trips_the_csr() {
        let g = gen::rmat(9, 6, 4).into_weighted(8);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 5),
        );
        let stores: Vec<Arc<PartitionStore>> =
            (0..pg.num_partitions()).map(|p| Arc::clone(pg.store(p as PartitionId))).collect();
        let rebuilt = PartitionedGraph::from_stores(
            g.num_vertices(),
            g.is_weighted(),
            pg.plan().clone(),
            *pg.config(),
            stores,
        );
        assert_eq!(rebuilt.graph(), pg.graph());
        for p in 0..pg.num_partitions() as PartitionId {
            assert!(Arc::ptr_eq(rebuilt.store(p), pg.store(p)));
            assert_eq!(rebuilt.partition(p).num_edges(), pg.partition(p).num_edges());
        }
    }

    /// The cached quotient rows must agree with a from-scratch edge scan.
    #[test]
    fn quotient_rows_match_edge_scan() {
        let g = gen::rmat(8, 5, 11);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 7),
        );
        let words = pg.num_partitions().div_ceil(64).max(1);
        let mut expected = vec![vec![0u64; words]; pg.num_partitions()];
        for (u, v, _) in g.edges() {
            let (pu, pv) = (pg.partition_of(u) as usize, pg.partition_of(v) as usize);
            expected[pu][pv / 64] |= 1u64 << (pv % 64);
        }
        for (p, row) in expected.iter().enumerate() {
            assert_eq!(&pg.store(p as PartitionId).quotient_row, row, "row {p}");
        }
    }

    #[test]
    fn worker_affinity_covers_all_workers_and_balances_footprint() {
        let g = gen::rmat(10, 6, 9);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 16),
        );
        for workers in [1usize, 2, 4, 8] {
            let affinity = pg.worker_affinity(workers);
            assert_eq!(affinity.len(), pg.num_partitions());
            assert!(affinity.iter().all(|&w| w < workers));
            let mut load = vec![0usize; workers];
            for (p, &w) in affinity.iter().enumerate() {
                load[w] += pg.partition(p as PartitionId).footprint_bytes;
            }
            if workers > 1 {
                let used = load.iter().filter(|&&l| l > 0).count();
                assert_eq!(used, workers, "every worker gets home partitions");
                let max = *load.iter().max().unwrap() as f64;
                let min = *load.iter().min().unwrap() as f64;
                assert!(max / min.max(1.0) < 3.0, "load imbalance {max} vs {min}");
            }
        }
    }

    #[test]
    fn worker_affinity_with_more_workers_than_partitions() {
        let g = gen::path(30);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 3),
        );
        let affinity = pg.worker_affinity(8);
        assert_eq!(affinity.len(), 3);
        // Three partitions spread over three distinct workers.
        let mut workers: Vec<usize> = affinity.clone();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3);
        // Degenerate worker count clamps to one worker.
        assert!(pg.worker_affinity(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn single_partition_graph() {
        let g = gen::path(20);
        let pg = PartitionedGraph::build(
            &g,
            PartitionConfig::with_partitions(PartitionMethod::Multilevel, 1),
        );
        assert_eq!(pg.num_partitions(), 1);
        assert_eq!(pg.total_cut_edges(), 0);
        assert_eq!(pg.partition(0).num_vertices(), 20);
    }
}
