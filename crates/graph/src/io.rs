//! Graph readers and writers.
//!
//! Three on-disk formats are supported so the original paper datasets can be
//! used directly if available:
//!
//! * **Edge list** (SNAP style): one `u v [w]` per line, `#` comments.
//! * **DIMACS** shortest-path format (`.gr`): `c` comments, `p sp n m` header,
//!   `a u v w` arcs with 1-based vertex ids (used by the road networks).
//! * **METIS** format: header `n m [fmt]`, then one line per vertex listing its
//!   (1-based) neighbours, optionally interleaved with weights.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{CsrGraph, GraphBuilder, VertexId, Weight};

/// Errors produced by the parsers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input text does not conform to the expected format.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

/// Read a SNAP-style edge list: `u v` or `u v w` per line; lines starting with
/// `#` or `%` are comments. Vertex ids are 0-based.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    let mut weighted = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing source"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad source: {e}")))?;
        let v: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing target"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad target: {e}")))?;
        match it.next() {
            Some(tok) => {
                let w: Weight =
                    tok.parse().map_err(|e| parse_err(idx + 1, format!("bad weight: {e}")))?;
                weighted = true;
                builder.add_edge(u, v, w);
            }
            None => {
                if weighted {
                    return Err(parse_err(idx + 1, "mixed weighted and unweighted lines"));
                }
                builder.add_unweighted_edge(u, v);
            }
        }
    }
    Ok(builder.build())
}

/// Read an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as a SNAP-style edge list.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "# {} vertices, {} edges", graph.num_vertices(), graph.num_edges())?;
    for (u, v, w) in graph.edges() {
        if graph.is_weighted() {
            writeln!(writer, "{u} {v} {w}")?;
        } else {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

/// Read a DIMACS shortest-path `.gr` file (1-based vertex ids, `a u v w` arcs).
pub fn read_dimacs<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    let mut declared: Option<(usize, usize)> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut it = rest.split_whitespace();
            let kind = it.next().ok_or_else(|| parse_err(idx + 1, "missing problem kind"))?;
            if kind != "sp" {
                return Err(parse_err(idx + 1, format!("unsupported problem kind '{kind}'")));
            }
            let n: usize = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing vertex count"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad vertex count: {e}")))?;
            let m: usize = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing edge count"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad edge count: {e}")))?;
            declared = Some((n, m));
            builder = GraphBuilder::new(n);
            continue;
        }
        if let Some(rest) = line.strip_prefix("a ") {
            if declared.is_none() {
                return Err(parse_err(idx + 1, "arc before problem line"));
            }
            let mut it = rest.split_whitespace();
            let u: u64 = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing source"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad source: {e}")))?;
            let v: u64 = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing target"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad target: {e}")))?;
            let w: Weight = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing weight"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad weight: {e}")))?;
            if u == 0 || v == 0 {
                return Err(parse_err(idx + 1, "DIMACS vertex ids are 1-based"));
            }
            builder.add_edge((u - 1) as VertexId, (v - 1) as VertexId, w);
            continue;
        }
        return Err(parse_err(idx + 1, format!("unrecognised line '{line}'")));
    }
    Ok(builder.build())
}

/// Write a graph in DIMACS `.gr` format.
pub fn write_dimacs<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "c generated by fg-graph")?;
    writeln!(writer, "p sp {} {}", graph.num_vertices(), graph.num_edges())?;
    for (u, v, w) in graph.edges() {
        writeln!(writer, "a {} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

/// Read a METIS graph file (unweighted or edge-weighted, 1-based neighbours).
pub fn read_metis<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate().filter_map(|(i, l)| match l {
        Ok(s) => {
            let t = s.trim().to_string();
            if t.is_empty() || t.starts_with('%') {
                None
            } else {
                Some(Ok((i, t)))
            }
        }
        Err(e) => Some(Err(IoError::Io(e))),
    });
    let (hline, header) = lines.next().ok_or_else(|| parse_err(1, "empty METIS file"))??;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .ok_or_else(|| parse_err(hline + 1, "missing vertex count"))?
        .parse()
        .map_err(|e| parse_err(hline + 1, format!("bad vertex count: {e}")))?;
    let _m: usize = it
        .next()
        .ok_or_else(|| parse_err(hline + 1, "missing edge count"))?
        .parse()
        .map_err(|e| parse_err(hline + 1, format!("bad edge count: {e}")))?;
    let fmt = it.next().unwrap_or("0");
    let edge_weighted = fmt.ends_with('1');

    let mut builder = GraphBuilder::new(n);
    for (vertex, item) in lines.enumerate() {
        let (lineno, line) = item?;
        if vertex >= n {
            return Err(parse_err(lineno + 1, "more vertex lines than declared"));
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if edge_weighted {
            if !tokens.len().is_multiple_of(2) {
                return Err(parse_err(lineno + 1, "odd token count for weighted adjacency"));
            }
            for pair in tokens.chunks(2) {
                let v: u64 = pair[0]
                    .parse()
                    .map_err(|e| parse_err(lineno + 1, format!("bad neighbour: {e}")))?;
                let w: Weight = pair[1]
                    .parse()
                    .map_err(|e| parse_err(lineno + 1, format!("bad weight: {e}")))?;
                builder.add_edge(vertex as VertexId, (v - 1) as VertexId, w);
            }
        } else {
            for tok in tokens {
                let v: u64 = tok
                    .parse()
                    .map_err(|e| parse_err(lineno + 1, format!("bad neighbour: {e}")))?;
                builder.add_unweighted_edge(vertex as VertexId, (v - 1) as VertexId);
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip_unweighted() {
        let input = "# comment\n0 1\n1 2\n2 0\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_round_trip_weighted() {
        let input = "0 1 5\n1 2 3\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_edges(0).next(), Some((1, 5)));
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        assert_eq!(g, read_edge_list(out.as_slice()).unwrap());
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("0\n".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_rejects_mixed_weightedness() {
        assert!(read_edge_list("0 1 2\n1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn dimacs_round_trip() {
        let input = "c road\np sp 4 4\na 1 2 7\na 2 3 2\na 3 4 1\na 4 1 9\n";
        let g = read_dimacs(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_edges(0).next(), Some((1, 7)));
        let mut out = Vec::new();
        write_dimacs(&g, &mut out).unwrap();
        assert_eq!(g, read_dimacs(out.as_slice()).unwrap());
    }

    #[test]
    fn dimacs_rejects_zero_based_ids_and_missing_header() {
        assert!(read_dimacs("p sp 2 1\na 0 1 3\n".as_bytes()).is_err());
        assert!(read_dimacs("a 1 2 3\n".as_bytes()).is_err());
        assert!(read_dimacs("p max 2 1\n".as_bytes()).is_err());
    }

    #[test]
    fn metis_unweighted() {
        // Triangle: each vertex lists its two neighbours (1-based).
        let input = "3 3\n2 3\n1 3\n1 2\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn metis_edge_weighted() {
        let input = "% comment\n2 1 001\n2 5\n1 5\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_edges(0).next(), Some((1, 5)));
        assert_eq!(g.out_edges(1).next(), Some((0, 5)));
    }

    #[test]
    fn metis_rejects_extra_lines() {
        let input = "1 0\n\n2\n3\n";
        assert!(read_metis(input.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fg_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        let g = crate::gen::erdos_renyi(50, 200, 9);
        let mut f = std::fs::File::create(&path).unwrap();
        write_edge_list(&g, &mut f).unwrap();
        drop(f);
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g, g2);
    }
}
